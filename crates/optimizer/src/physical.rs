//! The physical planner: logical plan → executable operator tree.
//!
//! Implementation selection happens here: hash vs nested-loop joins,
//! semantic-join strategy by estimated distinct-value cardinalities
//! (Section V's "index-based access for similarity search should be
//! accounted for in the cost-based optimization process").

use crate::cardinality::estimate_rows;
use crate::context::OptimizerContext;
use crate::cost::select_quant_tier;
use cx_exec::logical::LogicalPlan;
use cx_exec::operators::{
    DistinctExec, FilterExec, HashAggregateExec, HashJoinExec, LimitExec, NestedLoopJoinExec,
    ProjectExec, SortExec, SystemTableScanExec, TableScanExec, UnionExec,
};
use cx_exec::PhysicalOperator;
use cx_semantic::{SemanticFilterExec, SemanticGroupByExec, SemanticJoinExec, SemanticJoinStrategy};
use cx_storage::{Error, Result, SystemTableSource, Table};
use cx_vector::lsh::LshParams;
use std::collections::HashMap;
use std::sync::Arc;

/// Pair-count above which an approximate index pays for its build cost.
const INDEX_PAIR_THRESHOLD: f64 = 4e6;
/// Right-side distinct count below which index build is never worthwhile.
const INDEX_MIN_BUILD: f64 = 2000.0;

/// Tables the planner can scan: materialized user tables plus live
/// system-table sources (the reserved `cx.*` schema).
#[derive(Default)]
pub struct PhysicalPlannerEnv {
    tables: HashMap<String, Arc<Table>>,
    system_tables: HashMap<String, Arc<dyn SystemTableSource>>,
}

impl PhysicalPlannerEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `table` under `name`.
    pub fn register_table(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(name).cloned()
    }

    /// Registers a live system-table source under its own name.
    pub fn register_system_table(&mut self, source: Arc<dyn SystemTableSource>) {
        self.system_tables.insert(source.name().to_string(), source);
    }

    /// Looks up a system-table source.
    pub fn system_table(&self, name: &str) -> Option<Arc<dyn SystemTableSource>> {
        self.system_tables.get(name).cloned()
    }
}

/// Lowers `plan` into a physical operator tree.
pub fn create_physical_plan(
    plan: &LogicalPlan,
    ctx: &mut OptimizerContext,
    env: &PhysicalPlannerEnv,
) -> Result<Arc<dyn PhysicalOperator>> {
    Ok(match plan {
        LogicalPlan::Scan { source, .. } => {
            if let Some(sys) = env.system_table(source) {
                Arc::new(SystemTableScanExec::new(sys))
            } else {
                let table = env
                    .table(source)
                    .ok_or_else(|| Error::InvalidArgument(format!("unknown table: {source}")))?;
                Arc::new(TableScanExec::new(table))
            }
        }
        LogicalPlan::Filter { predicate, input } => {
            let child = create_physical_plan(input, ctx, env)?;
            Arc::new(FilterExec::new(child, predicate)?)
        }
        LogicalPlan::Project { exprs, input } => {
            let child = create_physical_plan(input, ctx, env)?;
            Arc::new(ProjectExec::new(child, exprs)?)
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            let l = create_physical_plan(left, ctx, env)?;
            let r = create_physical_plan(right, ctx, env)?;
            if on.is_empty() {
                Arc::new(NestedLoopJoinExec::new(l, r, None)?)
            } else {
                Arc::new(HashJoinExec::new(l, r, on, *join_type)?)
            }
        }
        LogicalPlan::CrossJoin { left, right } => {
            let l = create_physical_plan(left, ctx, env)?;
            let r = create_physical_plan(right, ctx, env)?;
            Arc::new(NestedLoopJoinExec::new(l, r, None)?)
        }
        LogicalPlan::SemanticFilter { input, column, target, model, threshold } => {
            // The filter scores one target against the panel exactly once,
            // so quantizing (a full read + converted write of the panel)
            // can never amortize — the planner always keeps it exact f32.
            // `SemanticFilterExec::with_quant_tier` remains for callers
            // that reuse a panel across probes.
            let child = create_physical_plan(input, ctx, env)?;
            let cache = ctx
                .cache_for(model)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown model: {model}")))?;
            // The input subtree's logical fingerprint makes the scan
            // shareable: concurrent filters whose inputs fingerprint equal
            // sweep the same candidate panel (see `cx_exec::shared`).
            Arc::new(
                SemanticFilterExec::new(child, column, target.clone(), *threshold, cache)?
                    .with_scan_fingerprint(input.fingerprint()),
            )
        }
        LogicalPlan::SemanticJoin { left, right, spec } => {
            // Strategy selection by estimated distinct-value pair count.
            let dl = (estimate_rows(left, ctx) * 0.5).max(1.0);
            let dr = (estimate_rows(right, ctx) * 0.5).max(1.0);
            let strategy = if ctx.config.semantic_index_selection
                && dl * dr > INDEX_PAIR_THRESHOLD
                && dr > INDEX_MIN_BUILD
            {
                SemanticJoinStrategy::Lsh(LshParams::default())
            } else {
                // Exact path: the blocked scan is the fastest exact rung
                // and bit-identical to pairwise prenormalized scoring.
                SemanticJoinStrategy::Blocked
            };
            // Storage tier for the blocked scan: quantized panels when the
            // configured recall tolerance and pair count admit them. Index
            // strategies verify in f32 and ignore the tier, so only the
            // Blocked scan gets one (keeps EXPLAIN honest).
            let tier = if matches!(strategy, SemanticJoinStrategy::Blocked) {
                select_quant_tier(&ctx.config, dl * dr)
            } else {
                cx_embed::QuantTier::F32
            };
            let l = create_physical_plan(left, ctx, env)?;
            let r = create_physical_plan(right, ctx, env)?;
            let cache = ctx
                .cache_for(&spec.model)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown model: {}", spec.model)))?;
            Arc::new(
                SemanticJoinExec::new(
                    l,
                    r,
                    &spec.left_column,
                    &spec.right_column,
                    spec.threshold,
                    &spec.score_column,
                    strategy,
                    cache,
                    ctx.config.parallelism,
                )?
                .with_quant_tier(tier)
                // Build-side fingerprint: joins whose right subtrees
                // fingerprint equal sweep the same build panel. The probe
                // fingerprint additionally lets a group materialize
                // identical left sides once.
                .with_scan_fingerprint(right.fingerprint())
                .with_probe_fingerprint(left.fingerprint()),
            )
        }
        LogicalPlan::SemanticGroupBy { input, column, model, threshold, aggs } => {
            let child = create_physical_plan(input, ctx, env)?;
            let cache = ctx
                .cache_for(model)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown model: {model}")))?;
            Arc::new(SemanticGroupByExec::new(child, column, *threshold, aggs, cache)?)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let child = create_physical_plan(input, ctx, env)?;
            Arc::new(HashAggregateExec::new(child, group_by, aggs)?)
        }
        LogicalPlan::Sort { input, keys } => {
            let child = create_physical_plan(input, ctx, env)?;
            let keys: Vec<(String, bool)> = keys
                .iter()
                .map(|k| (k.column.clone(), k.ascending))
                .collect();
            Arc::new(SortExec::new(child, &keys)?)
        }
        LogicalPlan::Limit { input, n } => {
            let child = create_physical_plan(input, ctx, env)?;
            Arc::new(LimitExec::with_count(child, *n))
        }
        LogicalPlan::Distinct { input } => {
            let child = create_physical_plan(input, ctx, env)?;
            Arc::new(DistinctExec::new(child))
        }
        LogicalPlan::Union { inputs } => {
            let children = inputs
                .iter()
                .map(|i| create_physical_plan(i, ctx, env))
                .collect::<Result<Vec<_>>>()?;
            Arc::new(UnionExec::new(children)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::logical::LimitCount;
    use crate::context::OptimizerConfig;
    use cx_embed::{HashNGramModel, ModelRegistry};
    use cx_exec::collect_table;
    use cx_exec::logical::SemanticJoinSpec;
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Schema, TableStats};

    fn env_and_ctx() -> (PhysicalPlannerEnv, OptimizerContext) {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ]),
            vec![
                Column::from_strings(["boots", "parka", "mug", "boots"]),
                Column::from_i64(vec![1, 2, 3, 4]),
            ],
        )
        .unwrap();
        let mut env = PhysicalPlannerEnv::new();
        let registry = Arc::new(ModelRegistry::new());
        registry.register(Arc::new(HashNGramModel::with_params("m", 16, 1, 3, 4, 1024)));
        let mut ctx = OptimizerContext::new(registry, OptimizerConfig::all());
        ctx.stats
            .insert("t".to_string(), TableStats::compute(&table).unwrap());
        env.register_table("t", Arc::new(table));
        (env, ctx)
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            source: "t".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ])),
        }
    }

    #[test]
    fn lowers_relational_pipeline() {
        let (env, mut ctx) = env_and_ctx();
        let plan = LogicalPlan::Limit {
            n: LimitCount::Fixed(2),
            input: Box::new(LogicalPlan::Filter {
                predicate: col("v").gt(lit(1i64)),
                input: Box::new(scan()),
            }),
        };
        let op = create_physical_plan(&plan, &mut ctx, &env).unwrap();
        let out = collect_table(op.as_ref()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn semantic_join_small_input_uses_blocked_exact_scan() {
        let (env, mut ctx) = env_and_ctx();
        let plan = LogicalPlan::SemanticJoin {
            left: Box::new(scan()),
            right: Box::new(scan()),
            spec: SemanticJoinSpec {
                left_column: "k".into(),
                right_column: "k".into(),
                model: "m".into(),
                threshold: 0.95,
                score_column: "sim".into(),
            },
        };
        let op = create_physical_plan(&plan, &mut ctx, &env).unwrap();
        assert!(op.name().contains("blocked"), "{}", op.name());
        // Executes and matches at least the identical strings.
        let out = collect_table(op.as_ref()).unwrap();
        assert!(out.num_rows() >= 4, "got {}", out.num_rows());
    }

    #[test]
    fn semantic_join_quantizes_when_tolerance_and_scale_admit() {
        // A wide table (100k rows) whose estimated pair count clears the
        // quantization floor, with int8-level recall tolerance configured.
        let rows = 100_000i64;
        let table = Table::from_columns(
            Schema::new(vec![Field::new("k", DataType::Utf8)]),
            vec![Column::from_strings((0..rows).map(|i| format!("k{i}")))],
        )
        .unwrap();
        let mut env = PhysicalPlannerEnv::new();
        let registry = Arc::new(ModelRegistry::new());
        registry.register(Arc::new(HashNGramModel::with_params("m", 16, 1, 3, 4, 1024)));
        let mut ctx = OptimizerContext::new(registry, OptimizerConfig::all());
        ctx.config.recall_tolerance = 5e-2;
        ctx.config.semantic_index_selection = false; // force the blocked scan
        ctx.stats
            .insert("big".to_string(), TableStats::compute(&table).unwrap());
        env.register_table("big", Arc::new(table));
        let scan_big = LogicalPlan::Scan {
            source: "big".into(),
            schema: Arc::new(Schema::new(vec![Field::new("k", DataType::Utf8)])),
        };
        let plan = LogicalPlan::SemanticJoin {
            left: Box::new(scan_big.clone()),
            right: Box::new(scan_big),
            spec: SemanticJoinSpec {
                left_column: "k".into(),
                right_column: "k".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        };
        let op = create_physical_plan(&plan, &mut ctx, &env).unwrap();
        assert!(op.name().contains("quant=int8"), "{}", op.name());

        // Without tolerance the same plan stays exact.
        let mut exact_ctx = OptimizerContext::new(
            Arc::new({
                let r = ModelRegistry::new();
                r.register(Arc::new(HashNGramModel::with_params("m", 16, 1, 3, 4, 1024)));
                r
            }),
            OptimizerConfig::all(),
        );
        exact_ctx.config.semantic_index_selection = false;
        exact_ctx.stats = ctx.stats.clone();
        let op = create_physical_plan(&plan, &mut exact_ctx, &env).unwrap();
        assert!(!op.name().contains("quant="), "{}", op.name());
    }

    #[test]
    fn small_semantic_filter_stays_exact() {
        let (env, mut ctx) = env_and_ctx();
        ctx.config.recall_tolerance = 5e-2;
        let plan = LogicalPlan::SemanticFilter {
            input: Box::new(scan()),
            column: "k".into(),
            target: "boots".into(),
            model: "m".into(),
            threshold: 0.9,
        };
        let op = create_physical_plan(&plan, &mut ctx, &env).unwrap();
        // 4-row input: far below the quantization floor.
        assert!(!op.name().contains("quant="), "{}", op.name());
    }

    #[test]
    fn unknown_table_and_model_error() {
        let (env, mut ctx) = env_and_ctx();
        let bad = LogicalPlan::Scan {
            source: "missing".into(),
            schema: Arc::new(Schema::new(vec![Field::new("k", DataType::Utf8)])),
        };
        assert!(create_physical_plan(&bad, &mut ctx, &env).is_err());
        let bad_model = LogicalPlan::SemanticFilter {
            input: Box::new(scan()),
            column: "k".into(),
            target: "x".into(),
            model: "missing".into(),
            threshold: 0.9,
        };
        assert!(create_physical_plan(&bad_model, &mut ctx, &env).is_err());
    }
}

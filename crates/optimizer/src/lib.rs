//! The holistic optimizer: one framework for relational *and* semantic
//! operators (Sections IV–V).
//!
//! The paper's central systems argument is that model-assisted operators
//! must be exposed to the same logical and physical optimizations as
//! relational ones — "intuitively, performing expensive model inference …
//! benefits equally, if not more, from correct join orders and filter
//! pushdowns". This crate implements that machinery:
//!
//! * [`context`] — the statistics/model context rewrites consult,
//! * [`cardinality`] — row estimates: histograms and NDV for relational
//!   predicates, embedding-sampling for semantic ones,
//! * [`cost`] — an abstract-ns cost model covering scans, joins, model
//!   inference and similarity search,
//! * [`rules`] — rewrite rules: constant folding, filter merge/pushdown
//!   (through projections, joins, *and* semantic operators), predicate
//!   cascades ordered by selectivity, equi-join extraction, and
//!   data-induced predicates — including the semantic variant that derives
//!   a relaxed semantic filter across a semantic join via the angular
//!   triangle inequality,
//! * [`pruning`] — projection (column) pruning,
//! * [`physical`] — the physical planner: operator implementation and
//!   semantic-join strategy selection by cost,
//! * [`optimizer`] — the driver applying rules to fixpoint with a trace.

pub mod cardinality;
pub mod context;
pub mod cost;
pub mod optimizer;
pub mod physical;
pub mod pruning;
pub mod rules;

pub use cardinality::estimate_rows;
pub use context::{OptimizerConfig, OptimizerContext};
pub use cost::{estimate_cost, shared_scan_cost};
pub use optimizer::Optimizer;
pub use physical::{create_physical_plan, PhysicalPlannerEnv};
pub use pruning::prune_columns;

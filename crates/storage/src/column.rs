//! Typed column vectors.

use crate::bitmap::Bitmap;
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::types::DataType;
use serde::{Deserialize, Serialize};

/// A contiguous, typed column of values with an optional validity bitmap.
///
/// `validity == None` means "all rows valid"; this keeps the common non-null
/// path free of bitmap reads. Operators work on whole columns (vectorized);
/// [`Column::get`] exists for plan boundaries, tests, and display.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    Bool { values: Vec<bool>, validity: Option<Bitmap> },
    Int64 { values: Vec<i64>, validity: Option<Bitmap> },
    Float64 { values: Vec<f64>, validity: Option<Bitmap> },
    Utf8 { values: Vec<String>, validity: Option<Bitmap> },
    Timestamp { values: Vec<i64>, validity: Option<Bitmap> },
}

impl Column {
    /// A non-null boolean column.
    pub fn from_bools(values: Vec<bool>) -> Self {
        Column::Bool { values, validity: None }
    }

    /// A non-null Int64 column.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::Int64 { values, validity: None }
    }

    /// A non-null Float64 column.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float64 { values, validity: None }
    }

    /// A non-null UTF8 column.
    pub fn from_strings<S: Into<String>, I: IntoIterator<Item = S>>(values: I) -> Self {
        Column::Utf8 {
            values: values.into_iter().map(Into::into).collect(),
            validity: None,
        }
    }

    /// A non-null timestamp column (microseconds since epoch).
    pub fn from_timestamps(values: Vec<i64>) -> Self {
        Column::Timestamp { values, validity: None }
    }

    /// An all-NULL column of the given type and length.
    pub fn nulls(data_type: DataType, len: usize) -> Self {
        let validity = Some(Bitmap::new(len, false));
        match data_type {
            DataType::Bool => Column::Bool { values: vec![false; len], validity },
            DataType::Int64 => Column::Int64 { values: vec![0; len], validity },
            DataType::Float64 => Column::Float64 { values: vec![0.0; len], validity },
            DataType::Utf8 => Column::Utf8 { values: vec![String::new(); len], validity },
            DataType::Timestamp => Column::Timestamp { values: vec![0; len], validity },
        }
    }

    /// A column of `len` copies of `scalar` (NULL scalars produce all-null
    /// columns of `hint` type).
    pub fn repeat(scalar: &Scalar, len: usize, hint: DataType) -> Self {
        match scalar {
            Scalar::Null => Column::nulls(hint, len),
            Scalar::Bool(v) => Column::from_bools(vec![*v; len]),
            Scalar::Int64(v) => Column::from_i64(vec![*v; len]),
            Scalar::Float64(v) => Column::from_f64(vec![*v; len]),
            Scalar::Utf8(v) => Column::Utf8 {
                values: vec![v.clone(); len],
                validity: None,
            },
            Scalar::Timestamp(v) => Column::from_timestamps(vec![*v; len]),
        }
    }

    /// The logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool { .. } => DataType::Bool,
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Utf8 { .. } => DataType::Utf8,
            Column::Timestamp { .. } => DataType::Timestamp,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool { values, .. } => values.len(),
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Utf8 { values, .. } => values.len(),
            Column::Timestamp { values, .. } => values.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes (values + string payloads +
    /// validity words), used by the query memory-budget accountant.
    pub fn memory_bytes(&self) -> usize {
        let validity_bytes = self.validity().map_or(0, |v| v.len().div_ceil(8));
        let value_bytes = match self {
            Column::Bool { values, .. } => values.len(),
            Column::Int64 { values, .. } | Column::Timestamp { values, .. } => values.len() * 8,
            Column::Float64 { values, .. } => values.len() * 8,
            Column::Utf8 { values, .. } => {
                values.iter().map(|s| s.len() + std::mem::size_of::<String>()).sum()
            }
        };
        value_bytes + validity_bytes
    }

    /// The validity bitmap, if any rows may be null.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Bool { validity, .. }
            | Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Utf8 { validity, .. }
            | Column::Timestamp { validity, .. } => validity.as_ref(),
        }
    }

    /// Whether row `i` holds a valid (non-null) value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity().is_none_or(|v| v.get(i))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity().map_or(0, |v| v.len() - v.count_ones())
    }

    /// Row `i` as a [`Scalar`]. Panics if out of bounds.
    pub fn get(&self, i: usize) -> Scalar {
        if !self.is_valid(i) {
            return Scalar::Null;
        }
        match self {
            Column::Bool { values, .. } => Scalar::Bool(values[i]),
            Column::Int64 { values, .. } => Scalar::Int64(values[i]),
            Column::Float64 { values, .. } => Scalar::Float64(values[i]),
            Column::Utf8 { values, .. } => Scalar::Utf8(values[i].clone()),
            Column::Timestamp { values, .. } => Scalar::Timestamp(values[i]),
        }
    }

    /// Borrowed access to the raw `i64` data (Int64 columns).
    pub fn i64_values(&self) -> Result<&[i64]> {
        match self {
            Column::Int64 { values, .. } => Ok(values),
            other => Err(Error::TypeMismatch {
                expected: "INT64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrowed access to the raw `f64` data (Float64 columns).
    pub fn f64_values(&self) -> Result<&[f64]> {
        match self {
            Column::Float64 { values, .. } => Ok(values),
            other => Err(Error::TypeMismatch {
                expected: "FLOAT64".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrowed access to the raw string data (Utf8 columns).
    pub fn utf8_values(&self) -> Result<&[String]> {
        match self {
            Column::Utf8 { values, .. } => Ok(values),
            other => Err(Error::TypeMismatch {
                expected: "UTF8".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrowed access to the raw bool data (Bool columns).
    pub fn bool_values(&self) -> Result<&[bool]> {
        match self {
            Column::Bool { values, .. } => Ok(values),
            other => Err(Error::TypeMismatch {
                expected: "BOOL".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// Borrowed access to the raw timestamp data (Timestamp columns).
    pub fn timestamp_values(&self) -> Result<&[i64]> {
        match self {
            Column::Timestamp { values, .. } => Ok(values),
            other => Err(Error::TypeMismatch {
                expected: "TIMESTAMP".into(),
                actual: other.data_type().to_string(),
            }),
        }
    }

    /// A new column keeping only rows where `mask` is set.
    ///
    /// The mask must have the same length as the column. NULL handling is
    /// caller-side: a NULL predicate result must already be folded to `false`
    /// in the mask (SQL semantics).
    pub fn filter(&self, mask: &Bitmap) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(Error::LengthMismatch {
                expected: self.len(),
                actual: mask.len(),
            });
        }
        let indices = mask.set_indices();
        Ok(self.take_unchecked(&indices))
    }

    /// A new column gathering rows at `indices` (indices may repeat and be
    /// in any order). Errors if any index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(Error::IndexOutOfBounds { index: bad, len });
        }
        Ok(self.take_unchecked(indices))
    }

    fn take_unchecked(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(values: &[T], indices: &[usize]) -> Vec<T> {
            indices.iter().map(|&i| values[i].clone()).collect()
        }
        let validity = self.validity().map(|v| v.take(indices));
        match self {
            Column::Bool { values, .. } => Column::Bool { values: gather(values, indices), validity },
            Column::Int64 { values, .. } => Column::Int64 { values: gather(values, indices), validity },
            Column::Float64 { values, .. } => Column::Float64 { values: gather(values, indices), validity },
            Column::Utf8 { values, .. } => Column::Utf8 { values: gather(values, indices), validity },
            Column::Timestamp { values, .. } => Column::Timestamp { values: gather(values, indices), validity },
        }
    }

    /// The sub-column `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        if offset + len > self.len() {
            return Err(Error::IndexOutOfBounds {
                index: offset + len,
                len: self.len(),
            });
        }
        let indices: Vec<usize> = (offset..offset + len).collect();
        Ok(self.take_unchecked(&indices))
    }

    /// Concatenates two columns of the same type.
    pub fn concat(&self, other: &Column) -> Result<Column> {
        if self.data_type() != other.data_type() {
            return Err(Error::TypeMismatch {
                expected: self.data_type().to_string(),
                actual: other.data_type().to_string(),
            });
        }
        let validity = match (self.validity(), other.validity()) {
            (None, None) => None,
            (a, b) => {
                let a = a.cloned().unwrap_or_else(|| Bitmap::new(self.len(), true));
                let b = b.cloned().unwrap_or_else(|| Bitmap::new(other.len(), true));
                Some(a.concat(&b))
            }
        };
        fn join<T: Clone>(a: &[T], b: &[T]) -> Vec<T> {
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend_from_slice(a);
            out.extend_from_slice(b);
            out
        }
        Ok(match (self, other) {
            (Column::Bool { values: a, .. }, Column::Bool { values: b, .. }) => {
                Column::Bool { values: join(a, b), validity }
            }
            (Column::Int64 { values: a, .. }, Column::Int64 { values: b, .. }) => {
                Column::Int64 { values: join(a, b), validity }
            }
            (Column::Float64 { values: a, .. }, Column::Float64 { values: b, .. }) => {
                Column::Float64 { values: join(a, b), validity }
            }
            (Column::Utf8 { values: a, .. }, Column::Utf8 { values: b, .. }) => {
                Column::Utf8 { values: join(a, b), validity }
            }
            (Column::Timestamp { values: a, .. }, Column::Timestamp { values: b, .. }) => {
                Column::Timestamp { values: join(a, b), validity }
            }
            _ => unreachable!("type equality checked above"),
        })
    }

    /// Builds a column from scalars, inferring the type from the first
    /// non-null value (errors on mixed types or all-null without hint).
    pub fn from_scalars(scalars: &[Scalar], hint: Option<DataType>) -> Result<Column> {
        let dtype = scalars
            .iter()
            .find_map(|s| s.data_type())
            .or(hint)
            .ok_or_else(|| Error::InvalidArgument("cannot infer type of all-NULL column".into()))?;
        let mut builder = crate::builder::ColumnBuilder::new(dtype);
        for s in scalars {
            builder.push(s.clone())?;
        }
        Ok(builder.finish())
    }

    /// Iterator over rows as scalars.
    pub fn iter(&self) -> impl Iterator<Item = Scalar> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Column {
        Column::from_i64(vec![10, 20, 30, 40, 50])
    }

    #[test]
    fn basic_accessors() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.get(2), Scalar::Int64(30));
        assert_eq!(c.null_count(), 0);
        assert!(c.is_valid(0));
    }

    #[test]
    fn nulls_column() {
        let c = Column::nulls(DataType::Utf8, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 3);
        assert_eq!(c.get(1), Scalar::Null);
    }

    #[test]
    fn filter_by_mask() {
        let c = sample();
        let mask = Bitmap::from_bools([true, false, true, false, true]);
        let f = c.filter(&mask).unwrap();
        assert_eq!(f.i64_values().unwrap(), &[10, 30, 50]);
    }

    #[test]
    fn filter_length_mismatch_errors() {
        let c = sample();
        let mask = Bitmap::from_bools([true, false]);
        assert!(matches!(c.filter(&mask), Err(Error::LengthMismatch { .. })));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = sample();
        let t = c.take(&[4, 0, 0, 2]).unwrap();
        assert_eq!(t.i64_values().unwrap(), &[50, 10, 10, 30]);
        assert!(matches!(
            c.take(&[5]),
            Err(Error::IndexOutOfBounds { index: 5, len: 5 })
        ));
    }

    #[test]
    fn take_preserves_validity() {
        let c = Column::Int64 {
            values: vec![1, 2, 3],
            validity: Some(Bitmap::from_bools([true, false, true])),
        };
        let t = c.take(&[1, 2]).unwrap();
        assert_eq!(t.get(0), Scalar::Null);
        assert_eq!(t.get(1), Scalar::Int64(3));
    }

    #[test]
    fn concat_mixed_validity() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::Int64 {
            values: vec![3, 4],
            validity: Some(Bitmap::from_bools([false, true])),
        };
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(2), Scalar::Null);
        assert_eq!(c.get(3), Scalar::Int64(4));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn concat_type_mismatch_errors() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_f64(vec![1.0]);
        assert!(matches!(a.concat(&b), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn slice_bounds() {
        let c = sample();
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.i64_values().unwrap(), &[20, 30, 40]);
        assert!(c.slice(3, 3).is_err());
    }

    #[test]
    fn from_scalars_inference() {
        let c = Column::from_scalars(
            &[Scalar::Null, Scalar::from("a"), Scalar::from("b")],
            None,
        )
        .unwrap();
        assert_eq!(c.data_type(), DataType::Utf8);
        assert_eq!(c.null_count(), 1);
        assert!(Column::from_scalars(&[Scalar::Null], None).is_err());
        assert!(Column::from_scalars(&[Scalar::Null], Some(DataType::Bool)).is_ok());
    }

    #[test]
    fn repeat_scalar() {
        let c = Column::repeat(&Scalar::from("x"), 3, DataType::Utf8);
        assert_eq!(c.utf8_values().unwrap(), &["x", "x", "x"]);
        let n = Column::repeat(&Scalar::Null, 2, DataType::Int64);
        assert_eq!(n.null_count(), 2);
    }
}

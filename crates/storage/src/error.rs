//! Error type shared by the storage layer.

use std::fmt;

/// Storage-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column or field name was not found in a schema.
    ColumnNotFound(String),
    /// Two values/columns had incompatible types for the attempted operation.
    TypeMismatch { expected: String, actual: String },
    /// Columns in a chunk (or chunks in a table) had inconsistent lengths.
    LengthMismatch { expected: usize, actual: usize },
    /// An index was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// Malformed input (e.g. CSV parse failure).
    Parse(String),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            Error::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, Error>;

//! Error type shared by the storage layer.

use std::fmt;

/// A query-lifecycle failure: the query was stopped (or refused) for a
/// policy reason, not because its inputs were malformed.
///
/// These travel inside [`Error::Query`] so the ubiquitous [`Result`]
/// alias carries them through every operator without signature changes,
/// while servers can still `match` on the typed cause to pick a
/// degradation policy (shed, retry, give up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query's deadline passed before it finished. Checked
    /// cooperatively between chunks/tiles, so a query overshoots its
    /// deadline by at most one tile of work.
    DeadlineExceeded,
    /// The query's cancellation token was triggered.
    Cancelled,
    /// The query allocated more than its memory budget allows.
    /// `allocated`/`limit` are bytes; enforcement lags the offending
    /// allocation by at most one chunk/panel (the charge is recorded
    /// first, the typed error surfaces at the next cooperative check).
    MemoryBudget {
        /// Bytes the query had allocated when the budget tripped.
        allocated: u64,
        /// The configured budget in bytes.
        limit: u64,
    },
    /// The server's admission queue is at its configured depth bound;
    /// the query was shed instead of queued unboundedly.
    QueueFull {
        /// Queries already waiting for admission.
        queued: usize,
        /// The configured `max_queued` bound.
        max: usize,
    },
    /// A transient fault (injected or real: a panicked drain, a failed
    /// embedding batch). Safe to retry once at solo cost.
    Transient(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::MemoryBudget { allocated, limit } => {
                write!(f, "query memory budget exceeded: allocated {allocated} B, limit {limit} B")
            }
            QueryError::QueueFull { queued, max } => {
                write!(f, "admission queue full: {queued} waiting, bound {max}")
            }
            QueryError::Transient(msg) => write!(f, "transient fault: {msg}"),
        }
    }
}

/// Storage-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column or field name was not found in a schema.
    ColumnNotFound(String),
    /// Two values/columns had incompatible types for the attempted operation.
    TypeMismatch { expected: String, actual: String },
    /// Columns in a chunk (or chunks in a table) had inconsistent lengths.
    LengthMismatch { expected: usize, actual: usize },
    /// An index was out of bounds.
    IndexOutOfBounds { index: usize, len: usize },
    /// Malformed input (e.g. CSV parse failure).
    Parse(String),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
    /// A query-lifecycle failure (deadline, cancellation, budget, shed,
    /// transient fault) — see [`QueryError`].
    Query(QueryError),
}

impl Error {
    /// Whether this error is safe to retry once (transient faults are;
    /// deadline/cancel/budget/shape errors are not).
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Query(QueryError::Transient(_)))
    }

    /// The query-lifecycle cause, if this is a lifecycle error.
    pub fn as_query(&self) -> Option<&QueryError> {
        match self {
            Error::Query(q) => Some(q),
            _ => None,
        }
    }
}

impl From<QueryError> for Error {
    fn from(q: QueryError) -> Self {
        Error::Query(q)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            Error::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Query(q) => write!(f, "{q}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, Error>;

//! Single (scalar) values.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single dynamically-typed value, the unit of row-wise access.
///
/// `Scalar` is used at plan boundaries (literals in expressions, row
/// extraction for tests and display); the hot paths operate on whole
/// [`crate::Column`]s instead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Scalar {
    /// SQL NULL (typed columns carry nullability in their validity bitmap).
    Null,
    Bool(bool),
    Int64(i64),
    Float64(f64),
    Utf8(String),
    /// Microseconds since the UNIX epoch.
    Timestamp(i64),
}

impl Scalar {
    /// The logical type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Scalar::Null => None,
            Scalar::Bool(_) => Some(DataType::Bool),
            Scalar::Int64(_) => Some(DataType::Int64),
            Scalar::Float64(_) => Some(DataType::Float64),
            Scalar::Utf8(_) => Some(DataType::Utf8),
            Scalar::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Numeric value as `f64` where the type allows it.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int64(v) => Some(*v as f64),
            Scalar::Float64(v) => Some(*v),
            Scalar::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integral value as `i64` where the type allows it.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int64(v) | Scalar::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// String slice if this is a UTF8 value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value if this is a Bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style comparison: NULL compares as unknown (`None`); numeric types
    /// cross-compare through `f64`.
    pub fn partial_cmp_sql(&self, other: &Scalar) -> Option<Ordering> {
        use Scalar::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Utf8(a), Utf8(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality: NULL = anything is unknown (`None`).
    pub fn eq_sql(&self, other: &Scalar) -> Option<bool> {
        self.partial_cmp_sql(other).map(|o| o == Ordering::Equal)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Null => f.write_str("NULL"),
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::Int64(v) => write!(f, "{v}"),
            Scalar::Float64(v) => write!(f, "{v}"),
            Scalar::Utf8(v) => write!(f, "{v}"),
            Scalar::Timestamp(v) => write!(f, "ts:{v}"),
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (NULL == NULL) used by tests and group-by keys;
        // SQL three-valued equality is `eq_sql`.
        use Scalar::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a.to_bits() == b.to_bits(),
            (Utf8(a), Utf8(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Scalar {}

impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Scalar::Null => {}
            Scalar::Bool(v) => v.hash(state),
            Scalar::Int64(v) => v.hash(state),
            Scalar::Float64(v) => v.to_bits().hash(state),
            Scalar::Utf8(v) => v.hash(state),
            Scalar::Timestamp(v) => v.hash(state),
        }
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}
impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int64(v)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float64(v)
    }
}
impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Utf8(v.to_string())
    }
}
impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_semantics() {
        assert!(Scalar::Null.is_null());
        assert_eq!(Scalar::Null.eq_sql(&Scalar::Int64(1)), None);
        assert_eq!(Scalar::Null.partial_cmp_sql(&Scalar::Null), None);
        // Structural equality still groups NULLs together.
        assert_eq!(Scalar::Null, Scalar::Null);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Scalar::Int64(2).partial_cmp_sql(&Scalar::Float64(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Scalar::Int64(3).eq_sql(&Scalar::Float64(3.0)), Some(true));
        assert_eq!(Scalar::Timestamp(5).eq_sql(&Scalar::Int64(5)), Some(true));
    }

    #[test]
    fn string_comparison() {
        assert_eq!(
            Scalar::from("abc").partial_cmp_sql(&Scalar::from("abd")),
            Some(Ordering::Less)
        );
        // Strings and numbers do not compare.
        assert_eq!(Scalar::from("1").partial_cmp_sql(&Scalar::Int64(1)), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Scalar::from(true).as_bool(), Some(true));
        assert_eq!(Scalar::from(42i64).as_i64(), Some(42));
        assert_eq!(Scalar::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Scalar::from("hi").as_str(), Some("hi"));
        assert_eq!(Scalar::from("hi").as_i64(), None);
    }

    #[test]
    fn float_hash_equality_via_bits() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Scalar::Float64(1.0));
        assert!(set.contains(&Scalar::Float64(1.0)));
        assert!(!set.contains(&Scalar::Float64(-1.0)));
    }
}

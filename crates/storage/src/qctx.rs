//! Query lifecycle context: deadline, cooperative cancellation, and a
//! memory-budget accountant, threaded ambiently through execution.
//!
//! A [`QueryContext`] carries the three ways a query is allowed to die
//! early:
//!
//! * a **deadline** ([`QueryContext::with_timeout`]) — checked between
//!   chunks and kernel tiles, so a query overshoots by at most one tile
//!   of work, never a full scan;
//! * a **cancellation token** ([`CancelToken`]) — a shared flag a client
//!   (or server-side policy) can trip from another thread;
//! * a **memory budget** ([`MemoryBudget`]) — a cumulative allocation
//!   accountant charged by arena panels, gathered row blocks, and
//!   materialized chunks.
//!
//! Checks are **cooperative**: hot loops call [`QueryContext::check`] at
//! tile/chunk boundaries and bubble the typed
//! [`crate::error::QueryError`] up through the ordinary
//! `Result` plumbing. Nothing is preempted; a kernel always finishes the
//! tile it started, which is what keeps shared (multi-query) sweeps
//! bit-identical for the members that survive.
//!
//! # Ambient propagation
//!
//! Operator `execute()` signatures take no context argument. Instead the
//! server installs the context with [`QueryContext::scope`] around a
//! query's execution, and operators capture [`QueryContext::current`]
//! **once** (at `execute()` time, on the installing thread) and move the
//! clone into their chunk closures. The context is plain data behind
//! `Arc`s, so a captured clone keeps working on whatever thread later
//! drives the iterator — thread-local storage is only consulted at
//! capture time. Worker threads spawned *inside* an operator (the
//! semantic join's probe fan-out) must likewise receive an explicitly
//! captured clone, since a fresh thread's TLS is empty.

use crate::error::{QueryError, Result};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag; clone it to hand one end to the client
/// and leave the other inside the query's [`QueryContext`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token; every context holding a clone observes it at its
    /// next cooperative check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cumulative allocation accountant for one query.
///
/// Charges are **monotonic**: the accountant tracks bytes *allocated*
/// over the query's lifetime, not live bytes, so accounting needs no
/// release bookkeeping and stays deterministic across runs. Charging
/// never fails — it trips an `exceeded` flag that the next cooperative
/// [`QueryContext::check`] converts into
/// [`QueryError::MemoryBudget`], so enforcement lags the offending
/// allocation by at most one chunk/panel.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    limit: u64,
    allocated: AtomicU64,
    exceeded: AtomicBool,
}

impl MemoryBudget {
    /// A budget of `limit` bytes (0 means unlimited: charges are
    /// recorded but the budget never trips).
    pub fn new(limit: u64) -> Self {
        MemoryBudget { limit, allocated: AtomicU64::new(0), exceeded: AtomicBool::new(false) }
    }

    /// The configured limit in bytes (0 = unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Records `bytes` of allocation against the budget.
    pub fn charge(&self, bytes: usize) {
        let total = self.allocated.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        if self.limit > 0 && total > self.limit {
            self.exceeded.store(true, Ordering::Release);
        }
    }

    /// Cumulative bytes charged so far.
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Whether the budget has been exceeded.
    pub fn is_exceeded(&self) -> bool {
        self.exceeded.load(Ordering::Acquire)
    }
}

/// The lifecycle context of one query: deadline + cancellation +
/// memory budget. Cheap to clone (two `Arc` bumps and a `Copy`).
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    deadline: Option<Instant>,
    cancel: CancelToken,
    budget: Option<Arc<MemoryBudget>>,
}

thread_local! {
    static CURRENT: RefCell<Option<QueryContext>> = const { RefCell::new(None) };
}

/// Restores the previously installed context when a scope ends, even on
/// unwind, so a panicked query can't leak its context into the next one.
struct ScopeGuard {
    prior: Option<QueryContext>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prior.take());
    }
}

impl QueryContext {
    /// A context with no deadline, no budget, and a private (untripped)
    /// cancellation token — checks always pass.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// This context with its deadline set to `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This context with its deadline set `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// This context observing `cancel`.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// This context charging `budget`.
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left before the deadline (`None` if no deadline; zero if
    /// already past).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The context's cancellation token (clone it to cancel from
    /// another thread).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The context's budget accountant, if one is attached.
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// Whether the context can ever fail a check (used to skip
    /// per-tile work when the query is unbounded and uncancellable is
    /// *not* knowable — the token may be shared — so this only reports
    /// whether deadline or budget enforcement is active).
    pub fn has_limits(&self) -> bool {
        self.deadline.is_some() || self.budget.as_ref().is_some_and(|b| b.limit() > 0)
    }

    /// Records `bytes` of allocation against the budget (no-op without
    /// one). Pair with a later [`check`](Self::check) to surface
    /// [`QueryError::MemoryBudget`].
    pub fn charge(&self, bytes: usize) {
        if let Some(b) = &self.budget {
            b.charge(bytes);
        }
    }

    /// The cooperative check hot loops call between tiles/chunks:
    /// cancellation, then deadline, then budget.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.cancel.is_cancelled() {
            return Err(QueryError::Cancelled.into());
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(QueryError::DeadlineExceeded.into());
            }
        }
        if let Some(b) = &self.budget {
            if b.is_exceeded() {
                return Err(QueryError::MemoryBudget {
                    allocated: b.allocated(),
                    limit: b.limit(),
                }
                .into());
            }
        }
        Ok(())
    }

    /// The context installed on this thread by the innermost
    /// [`scope`](Self::scope), or an unbounded one. Capture this once
    /// per `execute()` and move the clone into chunk closures — TLS is
    /// not consulted again afterwards.
    pub fn current() -> QueryContext {
        CURRENT.with(|c| c.borrow().clone()).unwrap_or_default()
    }

    /// Runs `f` with this context installed as the thread's current
    /// context; the prior context is restored afterwards (also on
    /// unwind).
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let prior = CURRENT.with(|c| c.borrow_mut().replace(self.clone()));
        let _guard = ScopeGuard { prior };
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn unbounded_context_always_passes() {
        let ctx = QueryContext::unbounded();
        assert!(ctx.check().is_ok());
        assert!(!ctx.has_limits());
        ctx.charge(1 << 40); // no budget attached: charging is a no-op
        assert!(ctx.check().is_ok());
    }

    #[test]
    fn cancellation_is_observed_via_shared_token() {
        let token = CancelToken::new();
        let ctx = QueryContext::unbounded().with_cancel(token.clone());
        assert!(ctx.check().is_ok());
        token.cancel();
        assert_eq!(ctx.check(), Err(Error::Query(QueryError::Cancelled)));
    }

    #[test]
    fn past_deadline_fails_check() {
        let ctx = QueryContext::unbounded().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(ctx.check(), Err(Error::Query(QueryError::DeadlineExceeded)));
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn budget_trips_after_cumulative_charges() {
        let budget = Arc::new(MemoryBudget::new(100));
        let ctx = QueryContext::unbounded().with_budget(budget.clone());
        ctx.charge(60);
        assert!(ctx.check().is_ok());
        ctx.charge(60);
        assert!(budget.is_exceeded());
        match ctx.check() {
            Err(Error::Query(QueryError::MemoryBudget { allocated, limit })) => {
                assert_eq!(allocated, 120);
                assert_eq!(limit, 100);
            }
            other => panic!("expected MemoryBudget, got {other:?}"),
        }
    }

    #[test]
    fn zero_limit_budget_records_but_never_trips() {
        let budget = Arc::new(MemoryBudget::new(0));
        let ctx = QueryContext::unbounded().with_budget(budget.clone());
        ctx.charge(1 << 30);
        assert!(ctx.check().is_ok());
        assert_eq!(budget.allocated(), 1 << 30);
    }

    #[test]
    fn scope_installs_and_restores_current() {
        let outer = QueryContext::unbounded().with_timeout(Duration::from_secs(3600));
        assert!(QueryContext::current().deadline().is_none());
        outer.scope(|| {
            assert!(QueryContext::current().deadline().is_some());
            let inner = QueryContext::unbounded();
            inner.scope(|| {
                assert!(QueryContext::current().deadline().is_none());
            });
            assert!(QueryContext::current().deadline().is_some());
        });
        assert!(QueryContext::current().deadline().is_none());
    }

    #[test]
    fn scope_restores_after_panic() {
        let ctx = QueryContext::unbounded().with_timeout(Duration::from_secs(3600));
        let r = std::panic::catch_unwind(|| ctx.scope(|| panic!("boom")));
        assert!(r.is_err());
        assert!(QueryContext::current().deadline().is_none(), "panicked scope leaked context");
    }

    #[test]
    fn captured_clone_works_on_other_threads() {
        let token = CancelToken::new();
        let ctx = QueryContext::unbounded().with_cancel(token.clone());
        let captured = ctx.scope(QueryContext::current);
        token.cancel();
        let handle = std::thread::spawn(move || captured.check());
        assert_eq!(handle.join().unwrap(), Err(Error::Query(QueryError::Cancelled)));
    }
}

//! The logical type system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical data types supported by the engine.
///
/// The set is intentionally small: the engine's focus is the interaction of
/// relational processing with *context-rich* (string / embedding) data, not
/// breadth of SQL types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Timestamp as microseconds since the UNIX epoch.
    Timestamp,
}

impl DataType {
    /// Whether the type is numeric (orderable by arithmetic comparison and
    /// usable in arithmetic expressions).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64 | DataType::Timestamp)
    }

    /// The common supertype two numeric types coerce to, if any.
    pub fn common_numeric(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        match (a, b) {
            (Int64, Int64) => Some(Int64),
            (Timestamp, Timestamp) => Some(Timestamp),
            (Int64, Timestamp) | (Timestamp, Int64) => Some(Timestamp),
            (Float64, x) | (x, Float64) if x.is_numeric() || x == Float64 => Some(Float64),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(
            DataType::common_numeric(DataType::Int64, DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::common_numeric(DataType::Int64, DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::common_numeric(DataType::Timestamp, DataType::Int64),
            Some(DataType::Timestamp)
        );
        assert_eq!(DataType::common_numeric(DataType::Utf8, DataType::Int64), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Utf8.to_string(), "UTF8");
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
    }
}

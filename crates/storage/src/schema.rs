//! Named, typed column descriptors.

use crate::error::{Error, Result};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type, nullable: true }
    }

    /// A non-nullable field.
    pub fn required(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type, nullable: false }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)?;
        if !self.nullable {
            f.write_str(" NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered list of fields describing the columns of a chunk or table.
///
/// Schemas are immutable and cheap to share (`Arc` internally via
/// [`SchemaRef`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate field names in schema"
        );
        Schema { fields }
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The position of field `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::ColumnNotFound(name.to_string()))
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// The field at position `i`.
    pub fn field_at(&self, i: usize) -> Result<&Field> {
        self.fields.get(i).ok_or(Error::IndexOutOfBounds {
            index: i,
            len: self.fields.len(),
        })
    }

    /// Field names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Whether the schema contains a field named `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// A new schema with only the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            fields.push(self.field_at(i)?.clone());
        }
        Ok(Schema { fields })
    }

    /// Concatenates two schemas (e.g. join output). Name collisions on the
    /// right side are disambiguated with a `right.` prefix.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if self.contains(&f.name) {
                format!("right.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field { name, ..f.clone() });
        }
        Schema { fields }
    }

    /// A new schema with `field` appended.
    pub fn with_field(&self, field: Field) -> Schema {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])
    }

    #[test]
    fn lookup() {
        let s = schema();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(matches!(s.index_of("nope"), Err(Error::ColumnNotFound(_))));
        assert_eq!(s.field("price").unwrap().data_type, DataType::Float64);
        assert!(s.contains("id"));
    }

    #[test]
    fn projection() {
        let s = schema().project(&[2, 0]).unwrap();
        assert_eq!(s.names(), vec!["price", "id"]);
        assert!(schema().project(&[9]).is_err());
    }

    #[test]
    fn join_disambiguates_names() {
        let left = schema();
        let right = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("qty", DataType::Int64),
        ]);
        let joined = left.join(&right);
        assert_eq!(joined.names(), vec!["id", "name", "price", "right.id", "qty"]);
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![Field::required("id", DataType::Int64)]);
        assert_eq!(s.to_string(), "[id: INT64 NOT NULL]");
    }
}

//! In-memory tables.

use crate::chunk::Chunk;
use crate::column::Column;
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::schema::{Schema, SchemaRef};
use crate::DEFAULT_CHUNK_ROWS;
use std::fmt;
use std::sync::Arc;

/// An immutable in-memory table: a schema plus a list of [`Chunk`]s.
///
/// Tables are the engine's base relations. They are cheap to share
/// (`Arc<Table>`) and are scanned chunk-at-a-time by the executor.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    chunks: Vec<Chunk>,
    rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Table { schema, chunks: Vec::new(), rows: 0 }
    }

    /// Builds a table from chunks (all must share the schema).
    pub fn new(schema: SchemaRef, chunks: Vec<Chunk>) -> Result<Self> {
        let mut rows = 0;
        for chunk in &chunks {
            if chunk.schema().fields() != schema.fields() {
                return Err(Error::InvalidArgument(
                    "table chunk schema mismatch".into(),
                ));
            }
            rows += chunk.num_rows();
        }
        Ok(Table { schema, chunks, rows })
    }

    /// Builds a single-chunk table directly from columns.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        let schema = Arc::new(schema);
        let chunk = Chunk::new(schema.clone(), columns)?;
        let rows = chunk.num_rows();
        Ok(Table { schema, chunks: vec![chunk], rows })
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Total number of rows across chunks.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The chunks backing this table.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Appends a chunk (schema must match).
    pub fn append(&mut self, chunk: Chunk) -> Result<()> {
        if chunk.schema().fields() != self.schema.fields() {
            return Err(Error::InvalidArgument("append chunk schema mismatch".into()));
        }
        self.rows += chunk.num_rows();
        self.chunks.push(chunk);
        Ok(())
    }

    /// All rows as one chunk (copies; for small results and tests).
    pub fn to_chunk(&self) -> Result<Chunk> {
        if self.chunks.is_empty() {
            return Ok(Chunk::empty(self.schema.clone()));
        }
        Chunk::concat(&self.chunks)
    }

    /// Re-chunks the table into batches of `rows_per_chunk` (used to control
    /// vectorized batch size in experiments).
    pub fn rechunk(&self, rows_per_chunk: usize) -> Result<Table> {
        if rows_per_chunk == 0 {
            return Err(Error::InvalidArgument("rows_per_chunk must be > 0".into()));
        }
        let all = self.to_chunk()?;
        let mut chunks = Vec::new();
        let mut offset = 0;
        while offset < all.num_rows() {
            let len = rows_per_chunk.min(all.num_rows() - offset);
            chunks.push(all.slice(offset, len)?);
            offset += len;
        }
        Table::new(self.schema.clone(), chunks)
    }

    /// Row `i` across chunk boundaries.
    pub fn row(&self, mut i: usize) -> Result<Vec<Scalar>> {
        if i >= self.rows {
            return Err(Error::IndexOutOfBounds { index: i, len: self.rows });
        }
        for chunk in &self.chunks {
            if i < chunk.num_rows() {
                return chunk.row(i);
            }
            i -= chunk.num_rows();
        }
        unreachable!("row index validated above")
    }

    /// The column named `name` materialized across all chunks (copies).
    pub fn column_by_name(&self, name: &str) -> Result<Column> {
        let idx = self.schema.index_of(name)?;
        let mut parts: Vec<&Column> = Vec::with_capacity(self.chunks.len());
        for chunk in &self.chunks {
            parts.push(chunk.column(idx)?);
        }
        match parts.split_first() {
            None => Ok(Column::nulls(self.schema.field_at(idx)?.data_type, 0)),
            Some((first, rest)) => {
                let mut acc = (*first).clone();
                for col in rest {
                    acc = acc.concat(col)?;
                }
                Ok(acc)
            }
        }
    }

    /// Builds a table row-wise from scalars, chunking at
    /// [`DEFAULT_CHUNK_ROWS`].
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Scalar>>) -> Result<Self> {
        let schema = Arc::new(schema);
        let mut table = Table::empty(schema.clone());
        let mut builder = crate::builder::RowBuilder::new(schema.clone());
        for row in rows {
            builder.push_row(row)?;
            if builder.len() == DEFAULT_CHUNK_ROWS {
                let full = std::mem::replace(&mut builder, crate::builder::RowBuilder::new(schema.clone()));
                table.append(full.finish()?)?;
            }
        }
        if !builder.is_empty() {
            table.append(builder.finish()?)?;
        }
        Ok(table)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} rows)", self.schema, self.rows)?;
        let limit = 20.min(self.rows);
        for i in 0..limit {
            let row = self.row(i).map_err(|_| fmt::Error)?;
            let cells: Vec<String> = row.iter().map(|s| s.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.rows > limit {
            writeln!(f, "... ({} more rows)", self.rows - limit)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
    }

    fn table() -> Table {
        Table::from_rows(
            schema(),
            (0..10)
                .map(|i| vec![Scalar::Int64(i), Scalar::Utf8(format!("row{i}"))])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn from_rows_and_access() {
        let t = table();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.row(7).unwrap()[0], Scalar::Int64(7));
        assert!(t.row(10).is_err());
    }

    #[test]
    fn rechunk_preserves_rows() {
        let t = table().rechunk(3).unwrap();
        assert_eq!(t.chunks().len(), 4);
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.row(9).unwrap()[1], Scalar::from("row9"));
        assert!(table().rechunk(0).is_err());
    }

    #[test]
    fn column_by_name_spans_chunks() {
        let t = table().rechunk(4).unwrap();
        let col = t.column_by_name("id").unwrap();
        assert_eq!(col.len(), 10);
        assert_eq!(col.get(9), Scalar::Int64(9));
        assert!(t.column_by_name("missing").is_err());
    }

    #[test]
    fn append_validates_schema() {
        let mut t = table();
        let other = Table::from_columns(
            Schema::new(vec![Field::new("x", DataType::Bool)]),
            vec![Column::from_bools(vec![true])],
        )
        .unwrap();
        assert!(t.append(other.chunks()[0].clone()).is_err());
    }

    #[test]
    fn to_chunk_of_empty_table() {
        let t = Table::empty(Arc::new(schema()));
        assert_eq!(t.to_chunk().unwrap().num_rows(), 0);
    }
}

//! Column-oriented in-memory storage for the context-rich analytical engine.
//!
//! This crate provides the data representation every other crate builds on:
//!
//! * [`DataType`] / [`Scalar`] — the logical type system and single values,
//! * [`Bitmap`] — packed validity (null) bitmaps,
//! * [`Column`] — typed, contiguous column vectors with optional validity,
//! * [`Chunk`] — a horizontal slice of a table (a batch of rows, stored
//!   column-wise) which is the unit of vectorized execution,
//! * [`Schema`] / [`Field`] — named, typed column descriptors,
//! * [`Table`] — an in-memory table as a schema plus a list of chunks,
//! * [`stats`] — per-column statistics (min/max, null count, distinct
//!   estimate, equi-width histograms) driving optimizer decisions,
//! * [`qctx`] — the query lifecycle context (deadline, cooperative
//!   cancellation, memory budget) hot loops check between chunks/tiles,
//! * [`csv`] — a small CSV import/export used by examples and tests.
//!
//! Everything is deliberately dependency-light and deterministic so the
//! engine's experiments are reproducible.

pub mod bitmap;
pub mod builder;
pub mod chunk;
pub mod column;
pub mod csv;
pub mod error;
pub mod qctx;
pub mod scalar;
pub mod schema;
pub mod stats;
pub mod systab;
pub mod table;
pub mod types;

pub use bitmap::Bitmap;
pub use builder::{ColumnBuilder, RowBuilder};
pub use chunk::Chunk;
pub use column::Column;
pub use error::{Error, QueryError, Result};
pub use qctx::{CancelToken, MemoryBudget, QueryContext};
pub use scalar::Scalar;
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use systab::SystemTableSource;
pub use table::Table;
pub use types::DataType;

/// Default number of rows per [`Chunk`] used by vectorized operators.
pub const DEFAULT_CHUNK_ROWS: usize = 4096;

//! Row-wise construction of columns and chunks.

use crate::bitmap::Bitmap;
use crate::chunk::Chunk;
use crate::column::Column;
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::schema::SchemaRef;
use crate::types::DataType;

/// Incrementally builds one typed [`Column`] from scalars.
#[derive(Debug)]
pub struct ColumnBuilder {
    data_type: DataType,
    bools: Vec<bool>,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strings: Vec<String>,
    validity: Bitmap,
    has_nulls: bool,
}

impl ColumnBuilder {
    /// A builder for a column of `data_type`.
    pub fn new(data_type: DataType) -> Self {
        ColumnBuilder {
            data_type,
            bools: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            strings: Vec::new(),
            validity: Bitmap::new(0, false),
            has_nulls: false,
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Appends a scalar; `Null` is accepted for any type, other scalars must
    /// match the builder's type (Int64 coerces into Float64/Timestamp slots).
    pub fn push(&mut self, value: Scalar) -> Result<()> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        match (self.data_type, &value) {
            (DataType::Bool, Scalar::Bool(v)) => self.bools.push(*v),
            (DataType::Int64, Scalar::Int64(v)) => self.ints.push(*v),
            (DataType::Float64, Scalar::Float64(v)) => self.floats.push(*v),
            (DataType::Float64, Scalar::Int64(v)) => self.floats.push(*v as f64),
            (DataType::Utf8, Scalar::Utf8(v)) => self.strings.push(v.clone()),
            (DataType::Timestamp, Scalar::Timestamp(v)) => self.ints.push(*v),
            (DataType::Timestamp, Scalar::Int64(v)) => self.ints.push(*v),
            (expected, actual) => {
                return Err(Error::TypeMismatch {
                    expected: expected.to_string(),
                    actual: actual
                        .data_type()
                        .map_or("NULL".to_string(), |t| t.to_string()),
                })
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// Appends a NULL row.
    pub fn push_null(&mut self) {
        match self.data_type {
            DataType::Bool => self.bools.push(false),
            DataType::Int64 | DataType::Timestamp => self.ints.push(0),
            DataType::Float64 => self.floats.push(0.0),
            DataType::Utf8 => self.strings.push(String::new()),
        }
        self.validity.push(false);
        self.has_nulls = true;
    }

    /// Finishes the column.
    pub fn finish(self) -> Column {
        let validity = if self.has_nulls { Some(self.validity) } else { None };
        match self.data_type {
            DataType::Bool => Column::Bool { values: self.bools, validity },
            DataType::Int64 => Column::Int64 { values: self.ints, validity },
            DataType::Float64 => Column::Float64 { values: self.floats, validity },
            DataType::Utf8 => Column::Utf8 { values: self.strings, validity },
            DataType::Timestamp => Column::Timestamp { values: self.ints, validity },
        }
    }
}

/// Builds a [`Chunk`] row by row against a fixed schema.
#[derive(Debug)]
pub struct RowBuilder {
    schema: SchemaRef,
    builders: Vec<ColumnBuilder>,
}

impl RowBuilder {
    /// A row builder for `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        RowBuilder { schema, builders }
    }

    /// Appends one row; the scalar count must match the schema width.
    pub fn push_row(&mut self, row: Vec<Scalar>) -> Result<()> {
        if row.len() != self.builders.len() {
            return Err(Error::LengthMismatch {
                expected: self.builders.len(),
                actual: row.len(),
            });
        }
        for (builder, value) in self.builders.iter_mut().zip(row) {
            builder.push(value)?;
        }
        Ok(())
    }

    /// Number of rows pushed.
    pub fn len(&self) -> usize {
        self.builders.first().map_or(0, |b| b.len())
    }

    /// Whether no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the chunk.
    pub fn finish(self) -> Result<Chunk> {
        let columns = self.builders.into_iter().map(|b| b.finish()).collect();
        Chunk::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use std::sync::Arc;

    #[test]
    fn column_builder_with_nulls() {
        let mut b = ColumnBuilder::new(DataType::Int64);
        b.push(Scalar::Int64(1)).unwrap();
        b.push(Scalar::Null).unwrap();
        b.push(Scalar::Int64(3)).unwrap();
        let col = b.finish();
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(2), Scalar::Int64(3));
    }

    #[test]
    fn column_builder_no_nulls_elides_bitmap() {
        let mut b = ColumnBuilder::new(DataType::Utf8);
        b.push(Scalar::from("x")).unwrap();
        let col = b.finish();
        assert!(col.validity().is_none());
    }

    #[test]
    fn int_coerces_to_float_slot() {
        let mut b = ColumnBuilder::new(DataType::Float64);
        b.push(Scalar::Int64(2)).unwrap();
        assert_eq!(b.finish().f64_values().unwrap(), &[2.0]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = ColumnBuilder::new(DataType::Bool);
        assert!(b.push(Scalar::Int64(1)).is_err());
    }

    #[test]
    fn row_builder_roundtrip() {
        let schema = Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        let mut rb = RowBuilder::new(schema);
        rb.push_row(vec![Scalar::Int64(1), Scalar::from("a")]).unwrap();
        rb.push_row(vec![Scalar::Int64(2), Scalar::Null]).unwrap();
        assert_eq!(rb.len(), 2);
        let chunk = rb.finish().unwrap();
        assert_eq!(chunk.num_rows(), 2);
        assert_eq!(chunk.row(1).unwrap()[1], Scalar::Null);
    }

    #[test]
    fn row_builder_wrong_width() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let mut rb = RowBuilder::new(schema);
        assert!(rb.push_row(vec![]).is_err());
    }
}

//! System-table sources: live state exposed as scannable tables.
//!
//! A [`SystemTableSource`] is the storage-level contract behind the
//! reserved `cx.*` schema: a named, schema'd source that materializes a
//! fresh snapshot of some live state into [`Chunk`]s every time it is
//! scanned. Unlike a registered [`crate::Table`] the data is not stored —
//! each scan observes the state at scan time, which is what makes
//! `SELECT`-style queries over the engine's own telemetry (recent
//! queries, histograms, incidents) meaningful while traffic is in
//! flight.
//!
//! Lock discipline for implementors: `snapshot()` runs inside query
//! execution, possibly *while the scanning query itself is being traced
//! and counted*. To make deadlock impossible, a snapshot must take at
//! most one internal lock at a time, clone out quickly, and never call
//! back into query-serving paths.

use crate::chunk::Chunk;
use crate::error::Result;
use crate::schema::Schema;
use std::sync::Arc;

/// A live source behind one reserved `cx.*` table.
pub trait SystemTableSource: Send + Sync + std::fmt::Debug {
    /// The fully qualified table name, e.g. `cx.queries`. Must start
    /// with the reserved `cx.` prefix.
    fn name(&self) -> &str;

    /// The fixed schema every snapshot conforms to.
    fn schema(&self) -> Arc<Schema>;

    /// Materializes the current state as chunks. Called once per scan;
    /// must be cheap (clone counters, format strings) and must follow
    /// the module-level lock discipline.
    fn snapshot(&self) -> Result<Vec<Chunk>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Field;
    use crate::types::DataType;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[derive(Debug)]
    struct Ticker {
        schema: Arc<Schema>,
        ticks: AtomicI64,
    }

    impl SystemTableSource for Ticker {
        fn name(&self) -> &str {
            "cx.ticks"
        }
        fn schema(&self) -> Arc<Schema> {
            self.schema.clone()
        }
        fn snapshot(&self) -> Result<Vec<Chunk>> {
            let v = self.ticks.fetch_add(1, Ordering::Relaxed);
            Ok(vec![Chunk::new(self.schema.clone(), vec![Column::from_i64(vec![v])])?])
        }
    }

    #[test]
    fn snapshots_are_fresh_per_scan() {
        let src = Ticker {
            schema: Arc::new(Schema::new(vec![Field::required("tick", DataType::Int64)])),
            ticks: AtomicI64::new(0),
        };
        let a = src.snapshot().unwrap();
        let b = src.snapshot().unwrap();
        assert_eq!(a[0].column(0).unwrap().i64_values().unwrap(), &[0]);
        assert_eq!(b[0].column(0).unwrap().i64_values().unwrap(), &[1]);
    }
}

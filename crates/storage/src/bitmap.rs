//! Packed validity bitmaps.

use serde::{Deserialize, Serialize};

/// A packed bitmap storing one bit per row, used for column validity (null
/// tracking) and filter selection masks.
///
/// Bits beyond `len` are kept zero so that word-wise operations (count,
/// and/or) need no edge handling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let n_words = len.div_ceil(64);
        let mut words = vec![if value { u64::MAX } else { 0 }; n_words];
        if value {
            Self::mask_tail(&mut words, len);
        }
        Bitmap { words, len }
    }

    /// Builds a bitmap from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bm = Bitmap { words: Vec::new(), len: 0 };
        for b in iter {
            bm.push(b);
        }
        bm
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if value {
            let i = self.len;
            self.words[i / 64] |= 1u64 << (i % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether all bits are set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether no bits are set.
    pub fn none(&self) -> bool {
        self.count_ones() == 0
    }

    /// Word-wise logical AND. Panics on length mismatch.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Bitmap { words, len: self.len }
    }

    /// Word-wise logical OR. Panics on length mismatch.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Bitmap { words, len: self.len }
    }

    /// Word-wise logical NOT (within `len` bits).
    pub fn not(&self) -> Bitmap {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        Self::mask_tail(&mut words, self.len);
        Bitmap { words, len: self.len }
    }

    /// Iterator over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices of set bits, in ascending order.
    pub fn set_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// Concatenates two bitmaps.
    pub fn concat(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        for b in other.iter() {
            out.push(b);
        }
        out
    }

    /// A new bitmap with bits gathered from positions `indices`.
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        Bitmap::from_bools(indices.iter().map(|&i| self.get(i)))
    }

    /// The sub-bitmap `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(offset + len <= self.len, "slice out of bounds");
        Bitmap::from_bools((offset..offset + len).map(|i| self.get(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_read() {
        let bm = Bitmap::new(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.all());
        let bm = Bitmap::new(70, false);
        assert!(bm.none());
    }

    #[test]
    fn push_and_get_across_word_boundary() {
        let mut bm = Bitmap::new(0, false);
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn set_and_clear() {
        let mut bm = Bitmap::new(100, false);
        bm.set(63, true);
        bm.set(64, true);
        assert!(bm.get(63) && bm.get(64));
        bm.set(63, false);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn boolean_algebra() {
        let a = Bitmap::from_bools([true, true, false, false]);
        let b = Bitmap::from_bools([true, false, true, false]);
        assert_eq!(a.and(&b), Bitmap::from_bools([true, false, false, false]));
        assert_eq!(a.or(&b), Bitmap::from_bools([true, true, true, false]));
        assert_eq!(a.not(), Bitmap::from_bools([false, false, true, true]));
    }

    #[test]
    fn not_keeps_tail_bits_clear() {
        let bm = Bitmap::new(65, false).not();
        assert_eq!(bm.count_ones(), 65);
        // Round-trip: NOT NOT == identity even with tail bits.
        assert_eq!(bm.not().count_ones(), 0);
    }

    #[test]
    fn set_indices_spans_words() {
        let mut bm = Bitmap::new(200, false);
        for i in [0, 1, 63, 64, 127, 199] {
            bm.set(i, true);
        }
        assert_eq!(bm.set_indices(), vec![0, 1, 63, 64, 127, 199]);
    }

    #[test]
    fn take_and_slice() {
        let bm = Bitmap::from_bools((0..10).map(|i| i % 2 == 0));
        assert_eq!(bm.take(&[1, 2, 4]), Bitmap::from_bools([false, true, true]));
        assert_eq!(bm.slice(2, 3), Bitmap::from_bools([true, false, true]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Bitmap::new(3, false).get(3);
    }
}

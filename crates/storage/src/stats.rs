//! Table and column statistics for optimizer decisions.

use crate::column::Column;
use crate::error::Result;
use crate::scalar::Scalar;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::HashSet;

/// Number of buckets in equi-width histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-width histogram over a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    /// Row counts per bucket; bucket `i` covers
    /// `[min + i*width, min + (i+1)*width)` with the last bucket closed.
    pub counts: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    /// Builds a histogram from numeric values (NaNs ignored).
    pub fn build(values: impl Iterator<Item = f64> + Clone) -> Option<Histogram> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut total = 0u64;
        for v in values.clone() {
            if v.is_nan() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
            total += 1;
        }
        if total == 0 {
            return None;
        }
        let width = if max > min {
            (max - min) / HISTOGRAM_BUCKETS as f64
        } else {
            1.0
        };
        let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
        for v in values {
            if v.is_nan() {
                continue;
            }
            let mut bucket = ((v - min) / width) as usize;
            if bucket >= HISTOGRAM_BUCKETS {
                bucket = HISTOGRAM_BUCKETS - 1;
            }
            counts[bucket] += 1;
        }
        Some(Histogram { min, max, counts, total })
    }

    /// Estimated fraction of rows with value `< x` (linear interpolation
    /// within the bucket containing `x`).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 || x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return 1.0;
        }
        let width = if self.max > self.min {
            (self.max - self.min) / self.counts.len() as f64
        } else {
            return if x > self.min { 1.0 } else { 0.0 };
        };
        let bucket = (((x - self.min) / width) as usize).min(self.counts.len() - 1);
        let below: u64 = self.counts[..bucket].iter().sum();
        let within_frac = ((x - self.min) - bucket as f64 * width) / width;
        (below as f64 + self.counts[bucket] as f64 * within_frac.clamp(0.0, 1.0))
            / self.total as f64
    }

    /// Estimated fraction of rows within `[lo, hi]`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        (self.fraction_below(hi) - self.fraction_below(lo)).clamp(0.0, 1.0)
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    pub null_count: u64,
    /// Minimum value (numeric columns and lexicographic min for strings).
    pub min: Option<Scalar>,
    pub max: Option<Scalar>,
    /// Estimated number of distinct values.
    pub distinct_count: u64,
    /// Histogram for numeric columns.
    pub histogram: Option<Histogram>,
    /// Average UTF-8 byte length for string columns (embedding cost driver).
    pub avg_len: Option<f64>,
}

impl ColumnStats {
    /// Computes statistics over a column.
    ///
    /// Distinct counts are exact for up to `DISTINCT_EXACT_LIMIT` distinct
    /// values, then extrapolated from a sample — good enough for the
    /// cardinality estimator while keeping stats collection linear.
    pub fn compute(column: &Column) -> ColumnStats {
        const DISTINCT_EXACT_LIMIT: usize = 1 << 16;
        let null_count = column.null_count() as u64;
        let mut min: Option<Scalar> = None;
        let mut max: Option<Scalar> = None;
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut saturated = false;
        let mut seen = 0u64;
        let mut len_sum = 0u64;
        let mut len_n = 0u64;

        for i in 0..column.len() {
            if !column.is_valid(i) {
                continue;
            }
            let v = column.get(i);
            seen += 1;
            if let Scalar::Utf8(s) = &v {
                len_sum += s.len() as u64;
                len_n += 1;
            }
            min = match min.take() {
                None => Some(v.clone()),
                Some(m) => Some(
                    if v.partial_cmp_sql(&m) == Some(std::cmp::Ordering::Less) {
                        v.clone()
                    } else {
                        m
                    },
                ),
            };
            max = match max.take() {
                None => Some(v.clone()),
                Some(m) => Some(
                    if v.partial_cmp_sql(&m) == Some(std::cmp::Ordering::Greater) {
                        v.clone()
                    } else {
                        m
                    },
                ),
            };
            if !saturated {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                v.hash(&mut hasher);
                distinct.insert(hasher.finish());
                if distinct.len() >= DISTINCT_EXACT_LIMIT {
                    saturated = true;
                }
            }
        }

        let distinct_count = if saturated {
            // Saw the limit within `seen` rows: extrapolate linearly, capped
            // by the number of non-null rows.
            seen
        } else {
            distinct.len() as u64
        };

        let histogram = numeric_iter(column)
            .map(|values| Histogram::build(values.into_iter()))
            .unwrap_or(None);

        ColumnStats {
            null_count,
            min,
            max,
            distinct_count,
            histogram,
            avg_len: if len_n > 0 { Some(len_sum as f64 / len_n as f64) } else { None },
        }
    }
}

fn numeric_iter(column: &Column) -> Option<Vec<f64>> {
    match column {
        Column::Int64 { values, .. } | Column::Timestamp { values, .. } => Some(
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| column.is_valid(*i))
                .map(|(_, v)| *v as f64)
                .collect(),
        ),
        Column::Float64 { values, .. } => Some(
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| column.is_valid(*i))
                .map(|(_, v)| *v)
                .collect(),
        ),
        _ => None,
    }
}

/// Statistics for a whole table: row count plus per-column stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Computes statistics for every column of `table`.
    pub fn compute(table: &Table) -> Result<TableStats> {
        let mut columns = HashMap::new();
        for field in table.schema().fields() {
            let col = table.column_by_name(&field.name)?;
            columns.insert(field.name.clone(), ColumnStats::compute(&col));
        }
        Ok(TableStats {
            row_count: table.num_rows() as u64,
            columns,
        })
    }

    /// Stats for column `name`, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    #[test]
    fn histogram_fractions() {
        let h = Histogram::build((0..100).map(|i| i as f64)).unwrap();
        assert_eq!(h.total, 100);
        assert!((h.fraction_below(50.0) - 0.5).abs() < 0.05);
        assert_eq!(h.fraction_below(-1.0), 0.0);
        assert_eq!(h.fraction_below(1000.0), 1.0);
        let mid = h.fraction_between(25.0, 75.0);
        assert!((mid - 0.5).abs() < 0.05, "got {mid}");
    }

    #[test]
    fn histogram_constant_column() {
        let h = Histogram::build(std::iter::repeat_n(7.0, 10)).unwrap();
        assert_eq!(h.fraction_below(7.0), 0.0);
        assert_eq!(h.fraction_below(7.1), 1.0);
    }

    #[test]
    fn column_stats_numeric() {
        let col = Column::from_i64(vec![3, 1, 4, 1, 5]);
        let s = ColumnStats::compute(&col);
        assert_eq!(s.min, Some(Scalar::Int64(1)));
        assert_eq!(s.max, Some(Scalar::Int64(5)));
        assert_eq!(s.distinct_count, 4);
        assert_eq!(s.null_count, 0);
        assert!(s.histogram.is_some());
    }

    #[test]
    fn column_stats_strings() {
        let col = Column::from_strings(["aa", "bb", "aa"]);
        let s = ColumnStats::compute(&col);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.min, Some(Scalar::from("aa")));
        assert_eq!(s.avg_len, Some(2.0));
        assert!(s.histogram.is_none());
    }

    #[test]
    fn table_stats() {
        let t = Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_strings(["a", "b", "b"]),
            ],
        )
        .unwrap();
        let stats = TableStats::compute(&t).unwrap();
        assert_eq!(stats.row_count, 3);
        assert_eq!(stats.column("name").unwrap().distinct_count, 2);
        assert!(stats.column("missing").is_none());
    }
}

//! Minimal CSV import/export (used by examples and the NoDB-style raw scan).
//!
//! The format is deliberately simple: comma-separated, `\n` rows, values
//! containing commas/quotes are double-quoted with `""` escaping. This is
//! enough for round-tripping engine tables without pulling in a dependency.

use crate::builder::RowBuilder;
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::schema::Schema;
use crate::table::Table;
use crate::types::DataType;
use std::sync::Arc;

/// Serializes a table to CSV with a header row.
pub fn to_csv(table: &Table) -> Result<String> {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..table.num_rows() {
        let row = table.row(i)?;
        let cells: Vec<String> = row
            .iter()
            .map(|s| match s {
                Scalar::Null => String::new(),
                Scalar::Utf8(v) => escape(v),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Parses CSV (with header) into a table using the provided schema. Empty
/// cells become NULL.
pub fn from_csv(schema: Schema, csv: &str) -> Result<Table> {
    let schema = Arc::new(schema);
    let mut lines = csv.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::Parse("empty CSV input".into()))?;
    let header_cells = split_line(header)?;
    if header_cells.len() != schema.len() {
        return Err(Error::Parse(format!(
            "CSV header has {} columns, schema has {}",
            header_cells.len(),
            schema.len()
        )));
    }
    let mut builder = RowBuilder::new(schema.clone());
    for (line_no, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let cells = split_line(line)?;
        if cells.len() != schema.len() {
            return Err(Error::Parse(format!(
                "line {}: expected {} cells, got {}",
                line_no + 2,
                schema.len(),
                cells.len()
            )));
        }
        let mut row = Vec::with_capacity(cells.len());
        for (cell, field) in cells.into_iter().zip(schema.fields()) {
            row.push(parse_cell(&cell, field.data_type, line_no + 2)?);
        }
        builder.push_row(row)?;
    }
    let chunk = builder.finish()?;
    Table::new(schema, vec![chunk])
}

fn parse_cell(cell: &str, data_type: DataType, line: usize) -> Result<Scalar> {
    if cell.is_empty() {
        return Ok(Scalar::Null);
    }
    let err = |what: &str| Error::Parse(format!("line {line}: invalid {what}: {cell:?}"));
    Ok(match data_type {
        DataType::Bool => Scalar::Bool(cell.parse().map_err(|_| err("bool"))?),
        DataType::Int64 => Scalar::Int64(cell.parse().map_err(|_| err("int"))?),
        DataType::Float64 => Scalar::Float64(cell.parse().map_err(|_| err("float"))?),
        DataType::Utf8 => Scalar::Utf8(cell.to_string()),
        DataType::Timestamp => {
            let digits = cell.strip_prefix("ts:").unwrap_or(cell);
            Scalar::Timestamp(digits.parse().map_err(|_| err("timestamp"))?)
        }
    })
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn split_line(line: &str) -> Result<Vec<String>> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Parse(format!("unterminated quote in line: {line:?}")));
    }
    cells.push(cur);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])
    }

    #[test]
    fn roundtrip() {
        let t = Table::from_columns(
            schema(),
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_strings(["plain", "with,comma \"and quotes\""]),
                Column::from_f64(vec![1.5, 2.5]),
            ],
        )
        .unwrap();
        let csv = to_csv(&t).unwrap();
        let back = from_csv(schema(), &csv).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.row(1).unwrap()[1], Scalar::from("with,comma \"and quotes\""));
        assert_eq!(back.row(0).unwrap()[2], Scalar::Float64(1.5));
    }

    #[test]
    fn null_roundtrip() {
        let csv = "id,name,price\n1,,\n";
        let t = from_csv(schema(), csv).unwrap();
        assert_eq!(t.row(0).unwrap()[1], Scalar::Null);
        assert_eq!(t.row(0).unwrap()[2], Scalar::Null);
    }

    #[test]
    fn parse_errors() {
        assert!(from_csv(schema(), "").is_err());
        assert!(from_csv(schema(), "id,name\n").is_err());
        assert!(from_csv(schema(), "id,name,price\nx,a,1.0\n").is_err());
        assert!(from_csv(schema(), "id,name,price\n1,\"unterminated,1.0\n").is_err());
    }

    #[test]
    fn timestamp_cells() {
        let schema = Schema::new(vec![Field::new("t", DataType::Timestamp)]);
        let t = from_csv(schema.clone(), "t\nts:123\n456\n").unwrap();
        assert_eq!(t.row(0).unwrap()[0], Scalar::Timestamp(123));
        assert_eq!(t.row(1).unwrap()[0], Scalar::Timestamp(456));
    }
}

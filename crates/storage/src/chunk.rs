//! Record chunks: the unit of vectorized execution.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::schema::SchemaRef;
use std::fmt;
use std::sync::Arc;

/// A horizontal batch of rows stored column-wise.
///
/// All physical operators consume and produce chunks, keeping the inner
/// loops over contiguous typed vectors (the "vectorized execution" lesson
/// the paper leans on).
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl Chunk {
    /// Builds a chunk, validating column count, types, and lengths against
    /// `schema`.
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::LengthMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(Error::TypeMismatch {
                    expected: field.data_type.to_string(),
                    actual: col.data_type().to_string(),
                });
            }
            if col.len() != rows {
                return Err(Error::LengthMismatch { expected: rows, actual: col.len() });
            }
        }
        Ok(Chunk { schema, columns, rows })
    }

    /// An empty (zero-row) chunk for `schema`.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::nulls(f.data_type, 0))
            .collect();
        Chunk { schema, columns, rows: 0 }
    }

    /// The chunk's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether the chunk has zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Approximate heap footprint in bytes (sum of column footprints),
    /// used by the query memory-budget accountant.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at position `i`.
    pub fn column(&self, i: usize) -> Result<&Column> {
        self.columns.get(i).ok_or(Error::IndexOutOfBounds {
            index: i,
            len: self.columns.len(),
        })
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let i = self.schema.index_of(name)?;
        Ok(&self.columns[i])
    }

    /// Row `i` as a vector of scalars (for tests/display, not hot paths).
    pub fn row(&self, i: usize) -> Result<Vec<Scalar>> {
        if i >= self.rows {
            return Err(Error::IndexOutOfBounds { index: i, len: self.rows });
        }
        Ok(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// A new chunk keeping only rows where `mask` is set.
    pub fn filter(&self, mask: &Bitmap) -> Result<Chunk> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Result<Vec<_>>>()?;
        let rows = columns.first().map_or(0, |c| c.len());
        Ok(Chunk { schema: self.schema.clone(), columns, rows })
    }

    /// A new chunk gathering rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<Chunk> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.take(indices))
            .collect::<Result<Vec<_>>>()?;
        Ok(Chunk {
            schema: self.schema.clone(),
            columns,
            rows: indices.len(),
        })
    }

    /// The sub-chunk `[offset, offset + len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Chunk> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(offset, len))
            .collect::<Result<Vec<_>>>()?;
        Ok(Chunk { schema: self.schema.clone(), columns, rows: len })
    }

    /// A new chunk with only the columns at `indices` (projection).
    pub fn project(&self, indices: &[usize]) -> Result<Chunk> {
        let schema = Arc::new(self.schema.project(indices)?);
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.clone());
        }
        Ok(Chunk { schema, columns, rows: self.rows })
    }

    /// Concatenates chunks with identical schemas into one.
    pub fn concat(chunks: &[Chunk]) -> Result<Chunk> {
        let first = chunks
            .first()
            .ok_or_else(|| Error::InvalidArgument("concat of zero chunks".into()))?;
        let mut columns = first.columns.clone();
        let mut rows = first.rows;
        for chunk in &chunks[1..] {
            if chunk.schema.fields() != first.schema.fields() {
                return Err(Error::InvalidArgument("concat with mismatched schemas".into()));
            }
            for (acc, col) in columns.iter_mut().zip(&chunk.columns) {
                *acc = acc.concat(col)?;
            }
            rows += chunk.rows;
        }
        Ok(Chunk { schema: first.schema.clone(), columns, rows })
    }

    /// Horizontally glues two chunks with equal row counts (join output).
    pub fn zip(&self, right: &Chunk) -> Result<Chunk> {
        if self.rows != right.rows {
            return Err(Error::LengthMismatch {
                expected: self.rows,
                actual: right.rows,
            });
        }
        let schema = Arc::new(self.schema.join(&right.schema));
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Ok(Chunk { schema, columns, rows: self.rows })
    }

    /// A new chunk with `column` appended under `field`.
    pub fn with_column(&self, field: crate::schema::Field, column: Column) -> Result<Chunk> {
        if column.len() != self.rows {
            return Err(Error::LengthMismatch {
                expected: self.rows,
                actual: column.len(),
            });
        }
        if field.data_type != column.data_type() {
            return Err(Error::TypeMismatch {
                expected: field.data_type.to_string(),
                actual: column.data_type().to_string(),
            });
        }
        let schema = Arc::new(self.schema.with_field(field));
        let mut columns = self.columns.clone();
        columns.push(column);
        Ok(Chunk { schema, columns, rows: self.rows })
    }
}

impl fmt::Display for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for i in 0..self.rows.min(20) {
            let row: Vec<String> = self.columns.iter().map(|c| c.get(i).to_string()).collect();
            writeln!(f, "{}", row.join(" | "))?;
        }
        if self.rows > 20 {
            writeln!(f, "... ({} rows total)", self.rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn chunk() -> Chunk {
        let schema = Arc::new(Schema::new(vec![
            Field::required("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        Chunk::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_strings(["a", "b", "c"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        // Wrong type.
        assert!(Chunk::new(schema.clone(), vec![Column::from_f64(vec![1.0])]).is_err());
        // Wrong column count.
        assert!(Chunk::new(schema.clone(), vec![]).is_err());
        // Mismatched lengths.
        let schema2 = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("y", DataType::Int64),
        ]));
        assert!(Chunk::new(
            schema2,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![1, 2])]
        )
        .is_err());
    }

    #[test]
    fn row_access() {
        let c = chunk();
        assert_eq!(
            c.row(1).unwrap(),
            vec![Scalar::Int64(2), Scalar::from("b")]
        );
        assert!(c.row(3).is_err());
    }

    #[test]
    fn filter_take_slice() {
        let c = chunk();
        let mask = Bitmap::from_bools([true, false, true]);
        let f = c.filter(&mask).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.column(0).unwrap().i64_values().unwrap(), &[1, 3]);

        let t = c.take(&[2, 2, 0]).unwrap();
        assert_eq!(t.column(1).unwrap().utf8_values().unwrap(), &["c", "c", "a"]);

        let s = c.slice(1, 2).unwrap();
        assert_eq!(s.column(0).unwrap().i64_values().unwrap(), &[2, 3]);
    }

    #[test]
    fn project_reorders() {
        let c = chunk().project(&[1, 0]).unwrap();
        assert_eq!(c.schema().names(), vec!["name", "id"]);
        assert_eq!(c.num_rows(), 3);
    }

    #[test]
    fn concat_chunks() {
        let c = chunk();
        let all = Chunk::concat(&[c.clone(), c.clone()]).unwrap();
        assert_eq!(all.num_rows(), 6);
        assert!(Chunk::concat(&[]).is_err());
    }

    #[test]
    fn zip_joins_schemas() {
        let c = chunk();
        let z = c.zip(&c).unwrap();
        assert_eq!(z.num_columns(), 4);
        assert_eq!(z.schema().names(), vec!["id", "name", "right.id", "right.name"]);
    }

    #[test]
    fn with_column_appends() {
        let c = chunk()
            .with_column(Field::new("price", DataType::Float64), Column::from_f64(vec![1.0, 2.0, 3.0]))
            .unwrap();
        assert_eq!(c.num_columns(), 3);
        assert!(chunk()
            .with_column(Field::new("bad", DataType::Float64), Column::from_f64(vec![1.0]))
            .is_err());
    }
}

//! Pairwise vs. blocked kernel ablation — f32 and quantized tiers.
//!
//! Each benchmark scans one query against `CANDIDATES` stored vectors (so
//! "time" is per scan, and per-pair cost is time / CANDIDATES):
//!
//! * `pairwise_cosine_with_norms` — the old hot-path inner loop: one
//!   `cosine_with_norms` call per candidate,
//! * `pairwise_prenorm_dot`      — pairwise `dot_unrolled` over normalized
//!   rows (division hoisted out),
//! * `dot_block`                 — one blocked-kernel call over the arena
//!   panel,
//! * `pairwise_f16_dot` / `pairwise_int8_dot` — per-candidate
//!   `QuantizedVector::dot` (the quantized pairwise rung),
//! * `dot_block_f16` / `dot_block_int8` — one quantized-panel call over a
//!   `QuantizedArena` (int8 includes query quantization and scale
//!   application, i.e. the full production path),
//! * `scores_matrix`             — `PROBES` queries × `CANDIDATES` build
//!   rows in one tiled call (time is per full matrix; divide by
//!   `PROBES × CANDIDATES` for per-pair cost).
//!
//! After the run, medians land in `BENCH_block_kernels.json` (ns/pair per
//! rung) so the perf trajectory is tracked across PRs.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use cx_embed::rng::SplitMix64;
use cx_embed::QuantizedVector;
use cx_vector::block::{dot_block, scores_matrix};
use cx_vector::kernels::{cosine_with_norms, dot_unrolled};
use cx_vector::{QuantTier, QuantizedArena, VectorArena};
use std::time::Duration;

const CANDIDATES: usize = 1024;
const PROBES: usize = 64;

fn random_arena(rows: usize, dim: usize, seed: u64) -> VectorArena {
    let mut rng = SplitMix64::new(seed);
    let mut arena = VectorArena::with_capacity(dim, rows);
    for _ in 0..rows {
        arena.push(&rng.unit_vector(dim));
    }
    arena
}

fn bench_block_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_kernels");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20);

    for dim in [64usize, 256, 768] {
        let build = random_arena(CANDIDATES, dim, 7 + dim as u64);
        let probes = random_arena(PROBES, dim, 1000 + dim as u64);
        let q = probes.row(0).to_vec();
        let qn = probes.row_norm(0);
        let build_norm = build.normalized();
        let qn_vec = {
            let mut v = q.clone();
            for x in &mut v {
                *x /= qn;
            }
            v
        };

        group.bench_with_input(
            BenchmarkId::new("pairwise_cosine_with_norms", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    let mut acc = 0.0f32;
                    for rv in 0..build.len() {
                        acc += cosine_with_norms(&q, build.row(rv), qn, build.row_norm(rv));
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pairwise_prenorm_dot", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    let mut acc = 0.0f32;
                    for rv in 0..build_norm.len() {
                        acc += dot_unrolled(&qn_vec, build_norm.row(rv));
                    }
                    black_box(acc)
                })
            },
        );
        let mut out = vec![0.0f32; CANDIDATES];
        group.bench_with_input(BenchmarkId::new("dot_block", dim), &dim, |bench, _| {
            let view = build_norm.as_block();
            bench.iter(|| {
                dot_block(&qn_vec, view.data, view.stride, &mut out);
                black_box(out[CANDIDATES - 1])
            })
        });

        // Quantized rungs: per-pair QuantizedVector::dot vs one panel call.
        let f16_rows: Vec<QuantizedVector> = (0..build_norm.len())
            .map(|r| QuantizedVector::to_f16(build_norm.row(r)))
            .collect();
        let int8_rows: Vec<QuantizedVector> = (0..build_norm.len())
            .map(|r| QuantizedVector::to_int8(build_norm.row(r)))
            .collect();
        group.bench_with_input(BenchmarkId::new("pairwise_f16_dot", dim), &dim, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for row in &f16_rows {
                    acc += row.dot(&qn_vec);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("pairwise_int8_dot", dim), &dim, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0f32;
                for row in &int8_rows {
                    acc += row.dot(&qn_vec);
                }
                black_box(acc)
            })
        });
        let f16_panel = QuantizedArena::from_arena(&build_norm, QuantTier::F16)
            .expect("f16 is a quantized tier");
        let int8_panel = QuantizedArena::from_arena(&build_norm, QuantTier::Int8)
            .expect("int8 is a quantized tier");
        group.bench_with_input(BenchmarkId::new("dot_block_f16", dim), &dim, |bench, _| {
            bench.iter(|| {
                f16_panel.scores_into(&qn_vec, &mut out);
                black_box(out[CANDIDATES - 1])
            })
        });
        group.bench_with_input(BenchmarkId::new("dot_block_int8", dim), &dim, |bench, _| {
            bench.iter(|| {
                int8_panel.scores_into(&qn_vec, &mut out);
                black_box(out[CANDIDATES - 1])
            })
        });

        let mut matrix = vec![0.0f32; PROBES * CANDIDATES];
        group.bench_with_input(BenchmarkId::new("scores_matrix", dim), &dim, |bench, _| {
            let pv = probes.as_block();
            let bv = build_norm.as_block();
            bench.iter(|| {
                scores_matrix(
                    pv.data, pv.stride, pv.rows, dim, bv.data, bv.stride, bv.rows, &mut matrix,
                );
                black_box(matrix[PROBES * CANDIDATES - 1])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_kernels);

/// Runs the group, then writes `BENCH_block_kernels.json` — median ns/pair
/// per rung — so the perf trajectory is tracked across PRs.
fn main() {
    benches();
    let results = criterion::take_results();
    if results.is_empty() {
        return;
    }
    let mut entries = Vec::new();
    for r in &results {
        // One iteration = one scan: CANDIDATES pairs, except the matrix
        // rung which scores PROBES × CANDIDATES at once.
        let pairs = if r.id.contains("scores_matrix") {
            (PROBES * CANDIDATES) as f64
        } else {
            CANDIDATES as f64
        };
        entries.push(format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}, \"ns_per_pair\": {:.4}}}",
            r.id,
            r.median_ns,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.median_ns / pairs
        ));
    }
    let simd = cx_vector::simd::KernelDispatch::active().report();
    let json = format!(
        "{{\n  \"bench\": \"block_kernels\",\n  \"candidates\": {CANDIDATES},\n  \"probes\": {PROBES},\n  \"unit\": \"ns\",\n  \"simd\": \"{simd}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Anchored to the workspace root: `cargo bench` sets cwd to the
    // package dir, `cargo run` to wherever the user stands.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_block_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_block_kernels.json ({} rungs)", results.len()),
        Err(e) => eprintln!("could not write BENCH_block_kernels.json: {e}"),
    }
}

//! Optimizer ablation: planning latency on the motivating-query shape and
//! the cost-model's view of each rewrite (plan quality, not just speed).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cx_embed::ModelRegistry;
use cx_exec::logical::{LogicalPlan, SemanticJoinSpec};
use cx_expr::{col, lit};
use cx_optimizer::{estimate_cost, Optimizer, OptimizerConfig, OptimizerContext};
use cx_storage::{DataType, Field, Schema};
use std::sync::Arc;
use std::time::Duration;

fn motivating_plan() -> LogicalPlan {
    let products = LogicalPlan::Scan {
        source: "products".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])),
    };
    let kb = LogicalPlan::Scan {
        source: "kb".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("label", DataType::Utf8),
            Field::new("category", DataType::Utf8),
        ])),
    };
    let detections = LogicalPlan::Scan {
        source: "detections".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("image_id", DataType::Int64),
            Field::new("obj", DataType::Utf8),
            Field::new("date_taken", DataType::Timestamp),
            Field::new("object_count", DataType::Int64),
        ])),
    };
    let j1 = LogicalPlan::SemanticJoin {
        left: Box::new(products),
        right: Box::new(kb),
        spec: SemanticJoinSpec {
            left_column: "name".into(),
            right_column: "label".into(),
            model: "m".into(),
            threshold: 0.9,
            score_column: "kb_sim".into(),
        },
    };
    let j2 = LogicalPlan::SemanticJoin {
        left: Box::new(j1),
        right: Box::new(detections),
        spec: SemanticJoinSpec {
            left_column: "name".into(),
            right_column: "obj".into(),
            model: "m".into(),
            threshold: 0.8,
            score_column: "img_sim".into(),
        },
    };
    LogicalPlan::Filter {
        predicate: col("price")
            .gt(lit(20.0))
            .and(col("category").eq(lit("clothes")))
            .and(col("object_count").gt(lit(2i64))),
        input: Box::new(j2),
    }
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);

    let ctx = OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all());
    let plan = motivating_plan();

    group.bench_function("optimize_motivating_query", |b| {
        let optimizer = Optimizer::new(&ctx);
        b.iter(|| black_box(optimizer.optimize(&plan, &ctx).0.node_count()))
    });

    group.bench_function("cost_estimate_motivating_query", |b| {
        b.iter(|| black_box(estimate_cost(&plan, &ctx)))
    });

    group.finish();

    // Plan-quality note (stdout, once): cost before vs after optimization.
    let optimizer = Optimizer::new(&ctx);
    let (optimized, trace) = optimizer.optimize(&plan, &ctx);
    println!(
        "cost model: naive={:.0} optimized={:.0} ({:.1}x cheaper; rules: {})",
        estimate_cost(&plan, &ctx),
        estimate_cost(&optimized, &ctx),
        estimate_cost(&plan, &ctx) / estimate_cost(&optimized, &ctx),
        trace.join(",")
    );
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);

//! Index recall/pruning ablation: candidates examined per probe and recall
//! against brute force at fixed parameters — the quality side of the
//! speed/recall trade the approximate strategies make.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cx_embed::rng::SplitMix64;
use cx_vector::ivf::IvfParams;
use cx_vector::lsh::LshParams;
use cx_vector::{BruteForceIndex, IvfIndex, LshIndex, VectorArena, VectorIndex};
use std::time::Duration;

fn store(n: usize, dim: usize, seed: u64) -> VectorArena {
    let mut rng = SplitMix64::new(seed);
    let n_clusters = (n / 25).max(2);
    let centroids: Vec<Vec<f32>> = (0..n_clusters).map(|_| rng.unit_vector(dim)).collect();
    let mut s = VectorArena::new(dim);
    for i in 0..n {
        let c = &centroids[i % n_clusters];
        let noise = rng.unit_vector(dim);
        let v: Vec<f32> = c.iter().zip(&noise).map(|(a, b)| a + 0.3 * b).collect();
        s.push(&v);
    }
    s
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_topk");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);

    let data = store(5_000, 100, 23);
    let brute = BruteForceIndex::build(&data);
    let lsh = LshIndex::build(&data, LshParams { bits: 14, tables: 6, seed: 9 });
    let ivf = IvfIndex::build(
        &data,
        IvfParams { nlist: 100, nprobe: 8, iterations: 6, seed: 9 },
    );
    let q = data.row(17).to_vec();

    group.bench_function("brute_top10", |b| b.iter(|| black_box(brute.search_topk(&q, 10))));
    group.bench_function("lsh_top10", |b| b.iter(|| black_box(lsh.search_topk(&q, 10))));
    group.bench_function("ivf_top10", |b| b.iter(|| black_box(ivf.search_topk(&q, 10))));
    group.finish();

    // Report recall/pruning once (stdout; criterion keeps timing separate).
    let mut lsh_hits = 0usize;
    let mut ivf_hits = 0usize;
    let mut truth_total = 0usize;
    for probe in 0..50 {
        let q = data.row(probe).to_vec();
        let truth: std::collections::HashSet<usize> =
            brute.search_topk(&q, 10).iter().map(|r| r.id).collect();
        truth_total += truth.len();
        lsh_hits += lsh.search_topk(&q, 10).iter().filter(|r| truth.contains(&r.id)).count();
        ivf_hits += ivf.search_topk(&q, 10).iter().filter(|r| truth.contains(&r.id)).count();
    }
    println!(
        "top-10 recall over 50 probes: lsh={:.3} ivf={:.3}; mean candidates: lsh={:.0} ivf={:.0} (of {})",
        lsh_hits as f64 / truth_total as f64,
        ivf_hits as f64 / truth_total as f64,
        lsh.stats().mean_candidates(),
        ivf.stats().mean_candidates(),
        data.len()
    );
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);

//! Semantic-join strategy crossover: exact scan vs LSH vs IVF across
//! cardinalities — the physical decision the optimizer's cost model makes
//! (Section V: index access paths must be costed like relational indexes).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cx_embed::rng::SplitMix64;
use cx_vector::ivf::IvfParams;
use cx_vector::lsh::LshParams;
use cx_vector::{BruteForceIndex, IvfIndex, LshIndex, VectorArena, VectorIndex};
use std::time::Duration;

/// Clustered vectors: realistic for synonym-heavy text embeddings.
fn store(n: usize, dim: usize, seed: u64) -> VectorArena {
    let mut rng = SplitMix64::new(seed);
    let n_clusters = (n / 20).max(2);
    let centroids: Vec<Vec<f32>> = (0..n_clusters).map(|_| rng.unit_vector(dim)).collect();
    let mut s = VectorArena::new(dim);
    for i in 0..n {
        let c = &centroids[i % n_clusters];
        let noise = rng.unit_vector(dim);
        let v: Vec<f32> = c.iter().zip(&noise).map(|(a, b)| a + 0.3 * b).collect();
        s.push(&v);
    }
    s
}

fn bench_threshold_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_join_probe");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);

    for n in [1_000usize, 4_000] {
        let data = store(n, 100, 11);
        let queries = store(64, 100, 13);
        let brute = BruteForceIndex::build(&data);
        let lsh = LshIndex::build(&data, LshParams::default());
        let ivf = IvfIndex::build(
            &data,
            IvfParams { nlist: (n / 50).max(4), nprobe: 6, iterations: 6, seed: 5 },
        );

        let run = |index: &dyn VectorIndex| {
            let mut total = 0usize;
            for q in 0..queries.len() {
                total += index.search_threshold(queries.row(q), 0.9).len();
            }
            total
        };
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| black_box(run(&brute)))
        });
        group.bench_with_input(BenchmarkId::new("lsh", n), &n, |b, _| {
            b.iter(|| black_box(run(&lsh)))
        });
        group.bench_with_input(BenchmarkId::new("ivf", n), &n, |b, _| {
            b.iter(|| black_box(run(&ivf)))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_index_build");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);
    let data = store(4_000, 100, 17);
    group.bench_function("brute_4k", |b| {
        b.iter(|| black_box(BruteForceIndex::build(&data).len()))
    });
    group.bench_function("lsh_4k", |b| {
        b.iter(|| black_box(LshIndex::build(&data, LshParams::default()).len()))
    });
    group.bench_function("ivf_4k", |b| {
        b.iter(|| {
            black_box(
                IvfIndex::build(
                    &data,
                    IvfParams { nlist: 64, nprobe: 6, iterations: 6, seed: 5 },
                )
                .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_threshold_search, bench_index_build);
criterion_main!(benches);

//! Kernel-ladder ablation: the per-pair cost of each cosine variant across
//! dimensions (the micro view of Figure 4's L2/L3 gap, plus Section VI's
//! half-precision/int8 opportunity).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cx_embed::rng::SplitMix64;
use cx_embed::QuantizedVector;
use cx_vector::kernels::{cosine, cosine_prenormalized, cosine_with_norms, dot_unrolled, norm};
use std::time::Duration;

fn vectors(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = SplitMix64::new(seed);
    (rng.unit_vector(dim), rng.unit_vector(dim))
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_kernels");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(20);

    for dim in [32usize, 100, 300] {
        let (a, b) = vectors(dim, 7);
        let (na, nb) = (norm(&a), norm(&b));
        let qa_f16 = QuantizedVector::to_f16(&a);
        let qa_i8 = QuantizedVector::to_int8(&a);

        group.bench_with_input(BenchmarkId::new("naive_renorm", dim), &dim, |bench, _| {
            bench.iter(|| black_box(cosine(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("cached_norms", dim), &dim, |bench, _| {
            bench.iter(|| black_box(cosine_with_norms(&a, &b, na, nb)))
        });
        group.bench_with_input(BenchmarkId::new("prenorm_unrolled", dim), &dim, |bench, _| {
            bench.iter(|| black_box(cosine_prenormalized(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("dot_unrolled", dim), &dim, |bench, _| {
            bench.iter(|| black_box(dot_unrolled(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("f16_dot", dim), &dim, |bench, _| {
            bench.iter(|| black_box(qa_f16.dot(&b)))
        });
        group.bench_with_input(BenchmarkId::new("int8_dot", dim), &dim, |bench, _| {
            bench.iter(|| black_box(qa_i8.dot(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Relational operator throughput and the pushdown effect at operator
//! level: filter-then-join vs join-then-filter over identical data.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cx_exec::logical::{AggFunc, AggSpec, JoinType};
use cx_exec::{collect_table, FilterExec, HashAggregateExec, HashJoinExec, TableScanExec};
use cx_expr::{col, lit};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::Arc;
use std::time::Duration;

fn orders(n: usize) -> Arc<TableScanExec> {
    let table = Table::from_columns(
        Schema::new(vec![
            Field::new("order_id", DataType::Int64),
            Field::new("item", DataType::Utf8),
            Field::new("amount", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings((0..n).map(|i| format!("item{}", i % 100))),
            Column::from_f64((0..n).map(|i| (i % 500) as f64).collect()),
        ],
    )
    .unwrap()
    .rechunk(4096)
    .unwrap();
    Arc::new(TableScanExec::new(Arc::new(table)))
}

fn items() -> Arc<TableScanExec> {
    let table = Table::from_columns(
        Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("kind", DataType::Utf8),
        ]),
        vec![
            Column::from_strings((0..100).map(|i| format!("item{i}"))),
            Column::from_strings((0..100).map(|i| format!("kind{}", i % 5))),
        ],
    )
    .unwrap();
    Arc::new(TableScanExec::new(Arc::new(table)))
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_operators");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10);

    let scan = orders(100_000);

    group.bench_function("filter_100k", |b| {
        let f = FilterExec::new(scan.clone(), &col("amount").gt(lit(400.0))).unwrap();
        b.iter(|| black_box(collect_table(&f).unwrap().num_rows()))
    });

    group.bench_function("aggregate_100k", |b| {
        let agg = HashAggregateExec::new(
            scan.clone(),
            &["item".to_string()],
            &[
                AggSpec::count_star("n"),
                AggSpec::new(AggFunc::Sum, "amount", "total"),
            ],
        )
        .unwrap();
        b.iter(|| black_box(collect_table(&agg).unwrap().num_rows()))
    });

    // Pushdown effect: filter before join vs after.
    group.bench_function("join_then_filter_100k", |b| {
        let join = Arc::new(
            HashJoinExec::new(
                items(),
                scan.clone(),
                &[("name".to_string(), "item".to_string())],
                JoinType::Inner,
            )
            .unwrap(),
        );
        let post = FilterExec::new(join, &col("amount").gt(lit(495.0))).unwrap();
        b.iter(|| black_box(collect_table(&post).unwrap().num_rows()))
    });

    group.bench_function("filter_then_join_100k", |b| {
        let filtered = Arc::new(FilterExec::new(scan.clone(), &col("amount").gt(lit(495.0))).unwrap());
        let join = HashJoinExec::new(
            items(),
            filtered,
            &[("name".to_string(), "item".to_string())],
            JoinType::Inner,
        )
        .unwrap();
        b.iter(|| black_box(collect_table(&join).unwrap().num_rows()))
    });

    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);

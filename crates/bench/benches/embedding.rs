//! Embedding-substrate ablation: inference cost, word-table memoization,
//! cache hit vs miss, and quantized storage effects — the knobs behind
//! Figure 4's prefetch rung.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cx_embed::{EmbeddingCache, EmbeddingModel, HashNGramModel, QuantizedVector};
use std::sync::Arc;
use std::time::Duration;

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
        .sample_size(10);

    // Cold inference (fresh model each batch so the word table is empty).
    group.bench_function("embed_cold_100_words", |b| {
        let words: Vec<String> = (0..100).map(|i| format!("benchword{i}")).collect();
        b.iter(|| {
            let model = HashNGramModel::new(1);
            let mut out = vec![0.0f32; model.dim()];
            for w in &words {
                model.embed_into(w, &mut out);
            }
            black_box(out[0])
        })
    });

    // Warm inference: word table memoized.
    group.bench_function("embed_warm_100_words", |b| {
        let model = HashNGramModel::new(1);
        let words: Vec<String> = (0..100).map(|i| format!("benchword{i}")).collect();
        model.prefetch(words.iter());
        let mut out = vec![0.0f32; model.dim()];
        b.iter(|| {
            for w in &words {
                model.embed_into(w, &mut out);
            }
            black_box(out[0])
        })
    });

    // Cache hit vs miss.
    group.bench_function("cache_hit", |b| {
        let cache = EmbeddingCache::new(Arc::new(HashNGramModel::new(1)) as Arc<dyn EmbeddingModel>);
        cache.prefetch(["hot word"]);
        b.iter(|| black_box(cache.get("hot word").len()))
    });

    // Quantization round-trips (storage/compute trade of Section VI).
    group.bench_function("quantize_f16_dim100", |b| {
        let v: Vec<f32> = (0..100).map(|i| (i as f32 * 0.17).sin()).collect();
        b.iter(|| black_box(QuantizedVector::to_f16(&v).storage_bytes()))
    });
    group.bench_function("quantize_int8_dim100", |b| {
        let v: Vec<f32> = (0..100).map(|i| (i as f32 * 0.17).sin()).collect();
        b.iter(|| black_box(QuantizedVector::to_int8(&v).storage_bytes()))
    });

    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);

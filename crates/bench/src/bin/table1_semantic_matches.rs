//! TABLE I — example of context-rich text labels that models may output.
//!
//! Reproduces the paper's table of per-category semantic matches, and —
//! because our semantic space carries ground truth — also reports match
//! precision/recall per category, which the paper could only illustrate.
//!
//! Usage: `cargo run --release -p cx-bench --bin table1_semantic_matches`

use cx_embed::{ClusteredTextModel, EmbeddingModel};
use cx_vector::{BruteForceIndex, VectorArena, VectorIndex};
use std::sync::Arc;

fn main() {
    let specs = cx_datagen::table1_clusters();
    let words = cx_datagen::vocab::all_words(&specs);
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    let model = ClusteredTextModel::new("table1-model", space.clone(), 7);

    let mut arena = VectorArena::new(model.dim());
    for w in &words {
        arena.push(&model.embed(w));
    }
    let index = BruteForceIndex::build(&arena);

    println!("TABLE I — context-rich text labels the representation model matches");
    println!("(top-4 nearest labels per category, cosine in parentheses)\n");
    println!("{:<10} | {:<58} | prec@4 | recall", "category", "semantic matches");
    println!("{}", "-".repeat(95));

    let mut total_correct = 0usize;
    let mut total_shown = 0usize;
    for category in ["dog", "cat", "animal", "shoes", "jacket", "clothes"] {
        let query = model.embed(category);
        let results = index.search_topk(&query, 5);
        let matches: Vec<(String, f32)> = results
            .iter()
            .filter(|r| words[r.id] != category)
            .take(4)
            .map(|r| (words[r.id].clone(), r.score))
            .collect();
        let correct = matches
            .iter()
            .filter(|(w, _)| space.in_cluster_tree(w, category))
            .count();
        // Recall: how many of the category's true members appear in top-k
        // (k = member count).
        let members: Vec<&String> = words
            .iter()
            .filter(|w| w.as_str() != category && space.in_cluster_tree(w, category))
            .collect();
        let topm = index.search_topk(&query, members.len() + 1);
        let found = topm
            .iter()
            .filter(|r| {
                words[r.id] != category && space.in_cluster_tree(&words[r.id], category)
            })
            .count();
        let rendered: Vec<String> = matches
            .iter()
            .map(|(w, s)| format!("{w} ({s:.2})"))
            .collect();
        println!(
            "{:<10} | {:<58} | {}/4    | {}/{}",
            category,
            rendered.join(", "),
            correct,
            found,
            members.len()
        );
        total_correct += correct;
        total_shown += matches.len();
    }
    println!(
        "\noverall precision@4: {:.2} ({} of {} shown matches in-category)",
        total_correct as f64 / total_shown as f64,
        total_correct,
        total_shown
    );
    println!("model inferences: {}", model.stats().invocations());
}

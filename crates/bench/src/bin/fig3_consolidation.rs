//! FIGURE 3 — automated, on-the-fly result consolidation.
//!
//! Dirty values (synonyms, alternative spellings/forms, typos — exactly the
//! dirt Section I says dominates context-rich sources) are consolidated by
//! the online semantic clusterer. Reported across input scales: cluster
//! quality against ground truth, dedup ratio, throughput, and model
//! inferences (bounded by distinct values thanks to the embedding cache).
//!
//! Usage: `cargo run --release -p cx-bench --bin fig3_consolidation`

use cx_datagen::{generate_dirty, synthetic_clusters, table1_clusters, DirtyConfig};
use cx_embed::{ClusteredTextModel, EmbeddingCache};
use cx_semantic::{consolidate, pairwise_metrics};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("FIGURE 3 — automated on-the-fly result consolidation\n");
    println!(
        "{:>8} | {:>9} | {:>9} | {:>10} | {:>6} | {:>6} | {:>6} | {:>12}",
        "records", "clusters", "dedup x", "records/s", "prec", "recall", "F1", "inferences"
    );
    println!("{}", "-".repeat(90));

    for &size in &[1_000usize, 10_000, 50_000, 100_000] {
        // Table I concepts plus synthetic clusters for scale.
        let mut specs = table1_clusters();
        specs.extend(synthetic_clusters(30, 8, 0xF133));
        let dirty = generate_dirty(
            &specs,
            DirtyConfig { size, typo_rate: 0.2, case_rate: 0.2, seed: 3 },
        );
        let space = Arc::new(cx_datagen::build_space(&dirty.augmented_specs, 100, 42));
        let cache = Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
            "consolidation-model",
            space,
            7,
        ))));

        let values: Vec<&str> = dirty.records.iter().map(|(v, _)| v.as_str()).collect();
        let truth: Vec<&str> = dirty.records.iter().map(|(_, t)| t.as_str()).collect();

        let t = Instant::now();
        let result = consolidate(&values, &cache, 0.82);
        let elapsed = t.elapsed();
        let metrics = pairwise_metrics(&result.assignments, &truth);

        println!(
            "{:>8} | {:>9} | {:>9.1} | {:>10.0} | {:>6.3} | {:>6.3} | {:>6.3} | {:>12}",
            size,
            result.num_clusters(),
            result.dedup_ratio(),
            size as f64 / elapsed.as_secs_f64(),
            metrics.precision,
            metrics.recall,
            metrics.f1,
            cache.model().stats().invocations()
        );
    }

    println!("\n(shape check: quality flat across scales, inferences bounded by the");
    println!(" distinct-value count, throughput dominated by cluster comparisons)");
}

//! Regression gate over the checked-in benchmark baselines.
//!
//! Compares the headline scalar of every `BENCH_*.json` in the current
//! tree against `bench/baselines/` and exits non-zero when any of them
//! regressed by more than the allowed ratio. Direction-aware: QPS and
//! goodput ratios must not *drop*, nanoseconds-per-pair must not *rise*.
//!
//! Current files that do not exist are skipped (the gate only judges
//! benches that were actually re-run); baselines are required — a
//! missing baseline for a known bench is an error so the gate cannot
//! silently go dark.
//!
//! Environment:
//! - `BENCH_DIFF_RATIO` — allowed relative regression (default `0.25`;
//!   CI loosens this on noisy shared runners).
//! - `BENCH_BASELINE_DIR` / `BENCH_CURRENT_DIR` — override the default
//!   repo-root-relative locations.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A minimal JSON value: just enough to read benchmark reports. The
/// in-tree serde shim serializes but does not parse, and the reports are
/// machine-written, so a small recursive-descent parser is the whole
/// dependency.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Walks a dotted path of object keys (`"serve.qps"`).
    fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".into())
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != want {
            return Err(format!("expected {:?} at offset {}, got {:?}", want as char, self.pos, got as char));
        }
        self.pos += 1;
        Ok(())
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Benchmark reports are ASCII, but pass UTF-8 through
                    // byte-faithfully anyway.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&c| c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

/// Whether larger is better for a headline scalar.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One comparison: a named scalar extracted from baseline and current.
struct Check {
    label: String,
    baseline: f64,
    current: f64,
    direction: Direction,
}

impl Check {
    /// Relative regression: positive when the current value is worse.
    fn regression(&self) -> f64 {
        if self.baseline == 0.0 {
            return 0.0;
        }
        match self.direction {
            Direction::HigherIsBetter => (self.baseline - self.current) / self.baseline,
            Direction::LowerIsBetter => (self.current - self.baseline) / self.baseline,
        }
    }
}

/// The headline scalars per report. `fig4` and `block_kernels` contribute
/// one check per entry in their `results` array (matched by `rung` / `id`);
/// the rest contribute a single dotted-path scalar.
const SCALAR_BENCHES: &[(&str, &str, Direction)] = &[
    ("BENCH_serve.json", "serve.qps", Direction::HigherIsBetter),
    ("BENCH_mqo.json", "mqo.qps", Direction::HigherIsBetter),
    ("BENCH_prepared.json", "prepared.qps", Direction::HigherIsBetter),
    ("BENCH_sql.json", "autoparam.qps", Direction::HigherIsBetter),
    ("BENCH_chaos.json", "goodput_ratio", Direction::HigherIsBetter),
];

const PER_RESULT_BENCHES: &[(&str, &str, &str, Direction)] = &[
    ("BENCH_fig4.json", "rung", "ns_per_pair", Direction::LowerIsBetter),
    ("BENCH_block_kernels.json", "id", "ns_per_pair", Direction::LowerIsBetter),
];

fn load(dir: &str, file: &str) -> Result<Option<Json>, String> {
    let path = format!("{dir}/{file}");
    match std::fs::read_to_string(&path) {
        Ok(text) => Parser::parse(&text).map(Some).map_err(|e| format!("{path}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn collect_checks(baseline_dir: &str, current_dir: &str) -> Result<Vec<Check>, String> {
    let mut checks = Vec::new();
    for &(file, path, direction) in SCALAR_BENCHES {
        let Some(current) = load(current_dir, file)? else {
            println!("skip   {file}: not present in current tree");
            continue;
        };
        let baseline = load(baseline_dir, file)?
            .ok_or_else(|| format!("{file}: present in current tree but missing from {baseline_dir}"))?;
        let read = |v: &Json, which: &str| {
            v.path(path).and_then(Json::num).ok_or(format!("{file}: no numeric {path} in {which}"))
        };
        checks.push(Check {
            label: format!("{file} {path}"),
            baseline: read(&baseline, "baseline")?,
            current: read(&current, "current")?,
            direction,
        });
    }
    for &(file, key, metric, direction) in PER_RESULT_BENCHES {
        let Some(current) = load(current_dir, file)? else {
            println!("skip   {file}: not present in current tree");
            continue;
        };
        let baseline = load(baseline_dir, file)?
            .ok_or_else(|| format!("{file}: present in current tree but missing from {baseline_dir}"))?;
        let rows = |v: &Json, which: &str| -> Result<BTreeMap<String, f64>, String> {
            let items = v
                .get("results")
                .and_then(Json::arr)
                .ok_or(format!("{file}: no results array in {which}"))?;
            let mut out = BTreeMap::new();
            for item in items {
                let name = item
                    .get(key)
                    .and_then(Json::str)
                    .ok_or(format!("{file}: result without {key:?} in {which}"))?;
                let value = item
                    .get(metric)
                    .and_then(Json::num)
                    .ok_or(format!("{file}: {name}: no numeric {metric} in {which}"))?;
                out.insert(name.to_string(), value);
            }
            Ok(out)
        };
        let base_rows = rows(&baseline, "baseline")?;
        for (name, current_value) in rows(&current, "current")? {
            // New rungs/kernels have no baseline yet: report, don't gate.
            let Some(&baseline_value) = base_rows.get(&name) else {
                println!("new    {file} {name}: {current_value:.4} (no baseline)");
                continue;
            };
            checks.push(Check {
                label: format!("{file} {name} {metric}"),
                baseline: baseline_value,
                current: current_value,
                direction,
            });
        }
    }
    Ok(checks)
}

fn main() -> ExitCode {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let baseline_dir = std::env::var("BENCH_BASELINE_DIR")
        .unwrap_or_else(|_| format!("{root}/bench/baselines"));
    let current_dir = std::env::var("BENCH_CURRENT_DIR").unwrap_or_else(|_| root.to_string());
    let ratio: f64 = match std::env::var("BENCH_DIFF_RATIO") {
        Ok(raw) => match raw.parse() {
            Ok(r) => r,
            Err(_) => {
                eprintln!("bench_diff: BENCH_DIFF_RATIO {raw:?} is not a number");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => 0.25,
    };

    println!("bench_diff: baselines {baseline_dir}, current {current_dir}, allowed {:.0}%", ratio * 100.0);
    let checks = match collect_checks(&baseline_dir, &current_dir) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if checks.is_empty() {
        println!("bench_diff: nothing to compare (no current BENCH_*.json files)");
        return ExitCode::SUCCESS;
    }

    let mut failed = 0usize;
    for check in &checks {
        let regression = check.regression();
        let verdict = if regression > ratio {
            failed += 1;
            "FAIL"
        } else {
            "ok"
        };
        let arrow = match check.direction {
            Direction::HigherIsBetter => "higher-is-better",
            Direction::LowerIsBetter => "lower-is-better",
        };
        println!(
            "{verdict:<6} {label}: baseline {baseline:.4} -> current {current:.4} ({delta:+.1}% {arrow})",
            label = check.label,
            baseline = check.baseline,
            current = check.current,
            delta = -regression * 100.0,
        );
    }
    if failed > 0 {
        eprintln!("bench_diff: {failed} of {} headline scalars regressed more than {:.0}%", checks.len(), ratio * 100.0);
        return ExitCode::FAILURE;
    }
    println!("bench_diff: all {} headline scalars within {:.0}%", checks.len(), ratio * 100.0);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_report_shapes() {
        let v = Parser::parse(
            r#"{"bench": "x", "serve": {"qps": 8533.21}, "results": [{"id": "a/64", "ns_per_pair": 9.95}], "neg": -1.5e-3, "flag": true, "none": null, "esc": "a\"b\\cA"}"#,
        )
        .unwrap();
        assert_eq!(v.path("serve.qps").and_then(Json::num), Some(8533.21));
        assert_eq!(v.get("results").and_then(Json::arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("neg").and_then(Json::num), Some(-1.5e-3));
        assert_eq!(v.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("esc").and_then(Json::str), Some("a\"b\\cA"));
        assert!(Parser::parse("{\"a\": 1} junk").is_err());
        assert!(Parser::parse("{\"a\":").is_err());
    }

    #[test]
    fn regressions_are_direction_aware() {
        let qps_drop = Check {
            label: String::new(),
            baseline: 100.0,
            current: 70.0,
            direction: Direction::HigherIsBetter,
        };
        assert!((qps_drop.regression() - 0.30).abs() < 1e-9);
        let ns_rise = Check {
            label: String::new(),
            baseline: 10.0,
            current: 13.0,
            direction: Direction::LowerIsBetter,
        };
        assert!((ns_rise.regression() - 0.30).abs() < 1e-9);
        let ns_improved = Check {
            label: String::new(),
            baseline: 10.0,
            current: 7.0,
            direction: Direction::LowerIsBetter,
        };
        assert!(ns_improved.regression() < 0.0);
    }
}

//! FIGURE 4 — Additive effects of logical and physical optimizations on a
//! model-assisted semantic similarity join (log scale).
//!
//! Paper setup: "we join two arrays of 10k strings taken randomly from the
//! Wikipedia dataset … fastText word embeddings with a dimension of 100,
//! perform the similarity join with cosine distance where the threshold has
//! to be greater than 0.9".
//!
//! Substitutions (DESIGN.md): Zipfian synthetic corpus for Wikipedia, a
//! deterministic clustered/hashed-n-gram model for fastText, Rust
//! release-mode rungs for Python/C++. The *shape* — each optimization rung
//! improves time, pushdown dominates, interpreted-to-compiled spans orders
//! of magnitude — is the reproduction target.
//!
//! Rungs (additive, matching the paper's bars):
//!   L0 interpreted        — boxed values, per-pair dict lookups & norms
//!   L1 + prefetch         — embeddings prefetched out of the dict
//!   L2 + tight loop       — contiguous f32 rows, cached norms ("C++")
//!   L3 + SIMD-shaped      — pre-normalized, 8-wide unrolled kernel
//!   L4 + blocked kernel   — batch-at-a-time panels, one call per probe
//!   L5 + scale-up         — parallel blocked probe over all cores
//! Each rung × {no pushdown, 1% filter pushdown on both inputs}.
//!
//! Entries marked `*` were measured on a subsample and extrapolated by the
//! exact pair-count ratio (the honest way to report a 10k×10k interpreted
//! join that would run for hours). The pushdown leg is small enough to
//! repeat: it runs [`PUSH_SAMPLES`] times per rung through a `cx_obs`
//! histogram, reporting the median plus p50/p95/p99 sample latency in
//! `BENCH_fig4.json`.
//!
//! Usage: `cargo run --release -p cx-bench --bin fig4_optimizations`
//! (env `FIG4_N` overrides the 10_000 default).

use cx_bench::{measure_or_extrapolate, InterpretedModel, Measured};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::{ClusteredTextModel, EmbeddingModel};
use cx_vector::block::dot_block_threshold;
use cx_vector::kernels::{dot, dot_unrolled};
use cx_vector::VectorStore;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const THRESHOLD: f32 = 0.9;
const PUSHDOWN_SELECTIVITY: f64 = 0.01;
/// Samples per pushdown-sized rung for the latency quantiles.
const PUSH_SAMPLES: usize = 10;

/// One report row: rung label, no-pushdown and pushdown measurements,
/// and the pushdown leg's (p50, p95, p99) sample latency in ms.
type Rung = (&'static str, Measured, Measured, (f64, f64, f64));

/// Runs the pushdown-sized rung `PUSH_SAMPLES` times, recording each
/// sample into a `cx_obs` log-linear histogram. Returns the median as the
/// rung's pushdown measurement (non-extrapolated, like before, but now
/// noise-damped) plus (p50, p95, p99) sample latency in ms — the
/// histogram-sourced quantile keys every `BENCH_*.json` carries.
fn sample_push(pushed: usize, f: impl Fn(usize)) -> (Measured, (f64, f64, f64)) {
    let h = cx_obs::Histogram::new();
    let mut secs = Vec::with_capacity(PUSH_SAMPLES);
    for _ in 0..PUSH_SAMPLES {
        let start = Instant::now();
        f(pushed);
        let d = start.elapsed();
        h.record_duration(d);
        secs.push(d.as_secs_f64());
    }
    secs.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let med = secs[secs.len() / 2];
    let s = h.snapshot();
    (
        Measured { measured_secs: med, full_secs: med, extrapolated: false },
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6),
    )
}

fn corpus(n: usize, seed: u64) -> Vec<String> {
    let clusters = synthetic_clusters(200, 10, 0xF164);
    let vocab = cx_datagen::vocab::all_words(&clusters);
    generate_corpus(
        &vocab,
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed },
    )
}

fn model() -> Arc<dyn EmbeddingModel> {
    let clusters = synthetic_clusters(200, 10, 0xF164);
    let space = Arc::new(cx_datagen::build_space(&clusters, 100, 42));
    Arc::new(ClusteredTextModel::new("fasttext-like", space, 7))
}

/// Embeds `values` into a store (prefetch/materialization step shared by
/// the compiled rungs; its cost is charged inside each rung's closure).
fn embed_all(model: &Arc<dyn EmbeddingModel>, values: &[String]) -> VectorStore {
    let mut store = VectorStore::new(model.dim());
    let mut buf = vec![0.0f32; model.dim()];
    for v in values {
        model.embed_into(v, &mut buf);
        store.push(&buf);
    }
    store
}

/// L1: prefetched (no dict in the loop) but unnormalized per-row `Vec`s,
/// norms recomputed per pair, plain iterator dot.
fn join_prefetched(left: &[Vec<f32>], right: &[Vec<f32>]) -> usize {
    let mut matches = 0usize;
    for l in left {
        for r in right {
            let nl = dot(l, l).sqrt();
            let nr = dot(r, r).sqrt();
            let c = if nl == 0.0 || nr == 0.0 { 0.0 } else { dot(l, r) / (nl * nr) };
            if c >= THRESHOLD {
                matches += 1;
            }
        }
    }
    matches
}

/// L2: contiguous rows, cached norms, scalar dot.
fn join_tight(left: &VectorStore, right: &VectorStore) -> usize {
    let mut matches = 0usize;
    for (i, l) in left.iter() {
        let nl = left.row_norm(i);
        for (j, r) in right.iter() {
            if cosine_with_norms_scalar(l, r, nl, right.row_norm(j)) >= THRESHOLD {
                matches += 1;
            }
        }
    }
    matches
}

#[inline]
fn cosine_with_norms_scalar(a: &[f32], b: &[f32], na: f32, nb: f32) -> f32 {
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// L3: pre-normalized rows, unrolled (SIMD-shaped) dot.
fn join_simd(left: &VectorStore, right: &VectorStore) -> usize {
    let mut matches = 0usize;
    for (_, l) in left.iter() {
        for (_, r) in right.iter() {
            if dot_unrolled(l, r) >= THRESHOLD {
                matches += 1;
            }
        }
    }
    matches
}

/// L4: blocked batch kernel — each probe scores the whole pre-normalized
/// build panel with one threshold-aware kernel call.
fn join_blocked(left: &VectorStore, right: &VectorStore) -> usize {
    let view = right.as_block();
    let mut matches = 0usize;
    for (_, l) in left.iter() {
        dot_block_threshold(l, view.data, view.stride, view.rows, THRESHOLD, |_, _| {
            matches += 1
        });
    }
    matches
}

/// L5: L4 parallelized over left rows with scoped threads.
fn join_parallel(left: &VectorStore, right: &VectorStore, threads: usize) -> usize {
    let counter = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let view = right.as_block();
                let mut local = 0usize;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= left.len() {
                        break;
                    }
                    dot_block_threshold(
                        left.row(i),
                        view.data,
                        view.stride,
                        view.rows,
                        THRESHOLD,
                        |_, _| local += 1,
                    );
                }
                counter.fetch_add(local, Ordering::Relaxed);
            });
        }
    })
    .expect("parallel join worker panicked");
    counter.into_inner()
}

fn main() {
    let n: usize = std::env::var("FIG4_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pushed = ((n as f64 * PUSHDOWN_SELECTIVITY) as usize).max(1);

    println!("FIGURE 4 — additive optimization effects on a semantic similarity join");
    println!(
        "setup: 2 x {n} strings, dim-100 embeddings, cosine >= {THRESHOLD}, {threads} threads"
    );
    println!("pushdown variant: 1% filter applied to both inputs beforehand\n");

    let left = corpus(n, 1);
    let right = corpus(n, 2);
    let m = model();

    // Interpreted-rung subsample sizes (quadratic extrapolation).
    let sub_interp = 300.min(n);
    let sub_prefetch = 2_000.min(n);

    let mut rows: Vec<Rung> = Vec::new();

    // ---- L0: interpreted -------------------------------------------------
    let interp = InterpretedModel::load(&m, &[left.clone(), right.clone()].concat());
    let no_push = measure_or_extrapolate(n, sub_interp, |k| {
        std::hint::black_box(interp.similarity_join(&left[..k], &right[..k], THRESHOLD as f64));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        std::hint::black_box(interp.similarity_join(&left[..k], &right[..k], THRESHOLD as f64));
    });
    rows.push(("L0 interpreted (Python-style)", no_push, push, push_q));

    // ---- L1: + prefetch ---------------------------------------------------
    let left_vecs: Vec<Vec<f32>> = left.iter().map(|v| m.embed(v)).collect();
    let right_vecs: Vec<Vec<f32>> = right.iter().map(|v| m.embed(v)).collect();
    let no_push = measure_or_extrapolate(n, sub_prefetch, |k| {
        std::hint::black_box(join_prefetched(&left_vecs[..k], &right_vecs[..k]));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        std::hint::black_box(join_prefetched(&left_vecs[..k], &right_vecs[..k]));
    });
    rows.push(("L1 + prefetch (no dict in loop)", no_push, push, push_q));

    // ---- L2: + tight loop ("C++") ----------------------------------------
    let left_store = embed_all(&m, &left);
    let right_store = embed_all(&m, &right);
    let no_push = measure_or_extrapolate(n, n, |k| {
        let l = slice_store(&left_store, k);
        let r = slice_store(&right_store, k);
        std::hint::black_box(join_tight(&l, &r));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        let l = slice_store(&left_store, k);
        let r = slice_store(&right_store, k);
        std::hint::black_box(join_tight(&l, &r));
    });
    rows.push(("L2 + tight loop, cached norms", no_push, push, push_q));

    // ---- L3: + SIMD-shaped kernel ----------------------------------------
    let left_norm = left_store.normalized();
    let right_norm = right_store.normalized();
    let no_push = measure_or_extrapolate(n, n, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_simd(&l, &r));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_simd(&l, &r));
    });
    rows.push(("L3 + SIMD-shaped unrolled kernel", no_push, push, push_q));

    // ---- L4: + blocked batch kernel ----------------------------------------
    let no_push = measure_or_extrapolate(n, n, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_blocked(&l, &r));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_blocked(&l, &r));
    });
    rows.push(("L4 + blocked batch kernel", no_push, push, push_q));

    // ---- L5: + scale-up ----------------------------------------------------
    let no_push = measure_or_extrapolate(n, n, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_parallel(&l, &r, threads));
    });
    let (push, push_q) = sample_push(pushed, |k| {
        let l = slice_store(&left_norm, k);
        let r = slice_store(&right_norm, k);
        std::hint::black_box(join_parallel(&l, &r, threads));
    });
    rows.push(("L5 + parallel scale-up", no_push, push, push_q));

    // ---- report ------------------------------------------------------------
    println!(
        "{:<34} | {:>13} | {:>13} | {:>8} | {:>8}",
        "execution optimizations (additive)", "no pushdown s", "pushdown 1% s", "log10", "log10"
    );
    println!("{}", "-".repeat(90));
    for (name, no_push, push, _) in &rows {
        println!(
            "{:<34} | {} | {} | {:>8.2} | {:>8.2}",
            name,
            no_push.render(),
            push.render(),
            no_push.log10(),
            push.log10()
        );
    }
    println!("\n(* = measured on a subsample, extrapolated by exact pair-count ratio)");

    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    println!(
        "\ntotal effect, no-pushdown series: {:.0}x ({:.1} orders of magnitude)",
        first.1.full_secs / last.1.full_secs,
        (first.1.full_secs / last.1.full_secs).log10()
    );
    println!(
        "pushdown effect on naive rung:    {:.0}x",
        first.1.full_secs / first.2.full_secs
    );
    println!(
        "combined (naive no-pushdown -> all optimizations + pushdown): {:.0}x",
        first.1.full_secs / last.2.full_secs
    );

    // Machine-readable trajectory: median ns/pair per rung, tracked across
    // PRs via BENCH_fig4.json.
    let pair_count = (n as f64) * (n as f64);
    let entries: Vec<String> = rows
        .iter()
        .map(|(name, no_push, push, push_q)| {
            format!(
                "    {{\"rung\": \"{}\", \"ns_per_pair\": {:.4}, \"no_pushdown_secs\": {:.6}, \"pushdown_secs\": {:.6}, \"pushdown_p50_ms\": {:.4}, \"pushdown_p95_ms\": {:.4}, \"pushdown_p99_ms\": {:.4}, \"extrapolated\": {}}}",
                name,
                no_push.full_secs * 1e9 / pair_count,
                no_push.full_secs,
                push.full_secs,
                push_q.0,
                push_q.1,
                push_q.2,
                no_push.extrapolated
            )
        })
        .collect();
    let simd = cx_vector::simd::KernelDispatch::active().report();
    let json = format!(
        "{{\n  \"bench\": \"fig4_optimizations\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"threads\": {threads},\n  \"threshold\": {THRESHOLD},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Anchored to the workspace root regardless of invocation cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig4.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_fig4.json ({} rungs)", rows.len()),
        Err(e) => eprintln!("could not write BENCH_fig4.json: {e}"),
    }
}

/// A store view over the first `k` rows (copy; small relative to join cost).
fn slice_store(store: &VectorStore, k: usize) -> VectorStore {
    let dim = store.dim();
    VectorStore::from_flat(dim, store.flat()[..k * dim].to_vec())
}

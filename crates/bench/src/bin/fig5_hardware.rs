//! FIGURE 5 — increasing hardware heterogeneity, as a placement problem.
//!
//! The paper's Figure 5 sketches CPUs, GPUs, a TPU-like device, NVMe and
//! InfiniBand without measurements. This harness makes the implied
//! experiment concrete on the calibrated simulator: place the Figure 2
//! pipeline on each topology, report estimated/simulated time, the chosen
//! device per stage, transfer budget, and speedup over the best
//! single-device execution.
//!
//! Usage: `cargo run --release -p cx-bench --bin fig5_hardware`

use context_engine::hardware_bridge::plan_on_topology;
use cx_embed::ModelRegistry;
use cx_exec::logical::{LogicalPlan, SemanticJoinSpec};
use cx_expr::{col, lit};
use cx_hardware::Topology;
use cx_optimizer::{Optimizer, OptimizerConfig, OptimizerContext};
use cx_storage::{DataType, Field, Schema, TableStats, Table, Column};
use std::sync::Arc;

/// A Figure 2-shaped plan with realistic cardinalities (stats injected).
fn plan_and_ctx() -> (LogicalPlan, OptimizerContext) {
    let mut ctx = OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all());
    // Register stats for a 1M-row products table and a 100k-row KB.
    for (name, rows) in [("products", 1_000_000i64), ("kb", 100_000)] {
        // Compact surrogate tables for statistics (strided values).
        let sample = Table::from_columns(
            Schema::new(vec![
                Field::new("key", DataType::Utf8),
                Field::new("num", DataType::Float64),
            ]),
            vec![
                Column::from_strings((0..1000).map(|i| format!("v{i}"))),
                Column::from_f64((0..1000).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let mut stats = TableStats::compute(&sample).unwrap();
        stats.row_count = rows as u64;
        ctx.stats.insert(name.to_string(), stats);
    }

    let products = LogicalPlan::Scan {
        source: "products".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])),
    };
    let kb = LogicalPlan::Scan {
        source: "kb".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("label", DataType::Utf8),
            Field::new("category", DataType::Utf8),
        ])),
    };
    let plan = LogicalPlan::Filter {
        predicate: col("price").gt(lit(20.0)).and(col("category").eq(lit("clothes"))),
        input: Box::new(LogicalPlan::SemanticJoin {
            left: Box::new(products),
            right: Box::new(kb),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        }),
    };
    let optimizer = Optimizer::new(&ctx);
    let (optimized, _) = optimizer.optimize(&plan, &ctx);
    (optimized, ctx)
}

fn main() {
    let (plan, ctx) = plan_and_ctx();
    println!("FIGURE 5 — hardware heterogeneity as a placement problem (simulated)\n");
    println!("pipeline:\n{}", plan.display_indent());

    let topologies = [
        ("2x CPU socket", Topology::cpu_only()),
        ("+ GPU (PCIe)", Topology::cpu_gpu()),
        ("+ GPU + TPU (PCIe)", Topology::cpu_gpu_tpu()),
        ("+ GPU + TPU (fast links)", Topology::cpu_gpu_tpu_fast()),
    ];

    println!(
        "{:<26} | {:>11} | {:>11} | {:>11} | {:>9} | placement",
        "topology", "est ms", "sim ms", "transfer ms", "vs single"
    );
    println!("{}", "-".repeat(110));
    for (name, topology) in &topologies {
        let report = plan_on_topology(&plan, &ctx, topology, 7).expect("placeable");
        let transfer: f64 = report.placement.stage_transfer_ns.iter().sum();
        let devices: Vec<String> = report
            .placement
            .assignments
            .iter()
            .map(|&d| topology.device(d).name.clone())
            .collect();
        println!(
            "{:<26} | {:>11.3} | {:>11.3} | {:>11.3} | {:>8.2}x | {}",
            name,
            report.placement.total_ns / 1e6,
            report.simulated.total_ns / 1e6,
            transfer / 1e6,
            report.speedup_vs_single().unwrap_or(1.0),
            devices.join(" -> ")
        );
    }

    println!("\n(shape check: model-heavy stages migrate to accelerators, relational");
    println!(" stages stay CPU-side, faster interconnects shrink the transfer share;");
    println!(" device envelopes are simulation constants — see cx-hardware)");
}

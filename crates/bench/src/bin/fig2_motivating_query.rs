//! FIGURE 2 — the motivating 3-source query, executed end to end under
//! increasing optimization levels.
//!
//! "Which clothing products with a price greater than 20 appear in customer
//! images taken after a specific date, … such that other objects appear too"
//! — RDBMS ⋈ knowledge base ⋈ image detections, with semantic joins at
//! cosine 0.9 / 0.8 (the thresholds drawn in the paper's Figure 2).
//!
//! Reported per optimization level: wall time, embedding-model inferences
//! and similarity pairs evaluated — showing *why* pushdown wins (fewer
//! model invocations), not just that it wins.
//!
//! Usage: `cargo run --release -p cx-bench --bin fig2_motivating_query`

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{ShopConfig, ShopDataset};
use cx_embed::ClusteredTextModel;
use cx_expr::{col, lit};
use cx_optimizer::OptimizerConfig;
use cx_storage::Scalar;
use cx_vision::{DetectorNoise, ObjectDetector, MICROS_PER_DAY};
use std::sync::Arc;
use std::time::Instant;

const AFTER_DAY: i64 = 19_050;

fn build_engine(data: &ShopDataset, config: EngineConfig) -> Engine {
    let engine = Engine::new(config);
    let space = Arc::new(cx_datagen::build_space(&data.clusters, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("shop-model", space, 7)));
    engine.register_table("products", data.products.clone()).unwrap();
    engine.register_table("transactions", data.transactions.clone()).unwrap();
    engine.register_kb("kb", data.kb.clone()).unwrap();
    let detector = ObjectDetector::with_noise(
        "detector",
        5,
        DetectorNoise { miss_rate: 0.02, spurious_rate: 0.05 },
    );
    engine
        .register_images("images", data.images.clone(), &detector)
        .unwrap();
    engine
}

/// The query exactly as the careless analyst of Section II writes it:
/// join everything first, state every predicate at the end. Whether the
/// filters run before or after the expensive semantic joins is the
/// optimizer's job — that is the experiment.
fn figure2_query(engine: &Engine) -> Query {
    let kb = engine.table("kb").unwrap();
    let detections = engine.table("images.detections").unwrap();
    engine
        .table("products")
        .unwrap()
        .semantic_join_scored(kb, "name", "label", "shop-model", 0.9, "kb_sim")
        .semantic_join_scored(detections, "name", "label", "shop-model", 0.8, "img_sim")
        .filter(
            col("price")
                .gt(lit(20.0))
                .and(col("category").eq(lit("clothes")))
                .and(col("date_taken").gt(lit(Scalar::Timestamp(AFTER_DAY * MICROS_PER_DAY))))
                .and(col("object_count").gt(lit(2i64))),
        )
        .select_columns(&["product_id"])
        .distinct()
}

fn main() {
    let data = ShopDataset::generate(ShopConfig {
        n_products: 1_000,
        n_users: 200,
        n_transactions: 5_000,
        n_images: 800,
        start_day: 19_000,
        days: 100,
        seed: 11,
    })
    .unwrap();

    println!("FIGURE 2 — motivating context-rich query across three sources");
    println!(
        "sources: products={} rows, kb={} label/category rows, detections over {} images\n",
        data.products.num_rows(),
        data.kb.label_category_table().unwrap().num_rows(),
        data.images.len()
    );

    let levels: [(&str, OptimizerConfig); 3] = [
        ("naive (no optimizations)", OptimizerConfig::none()),
        ("+ filter pushdown", {
            let mut c = OptimizerConfig::none();
            c.constant_folding = true;
            c.filter_pushdown = true;
            c
        }),
        ("+ pruning, cascades, DIP, index, parallel", OptimizerConfig::all()),
    ];

    println!(
        "{:<42} | {:>9} | {:>9} | {:>12} | {:>8} | {:>6}",
        "plan variant", "plan ms", "exec ms", "inferences", "rows", "rules"
    );
    println!("{}", "-".repeat(105));

    let mut reference_rows = None;
    for (name, config) in levels {
        let engine = build_engine(&data, EngineConfig { optimizer: config, ..EngineConfig::default() });
        let cache = engine.embedding_cache("shop-model").unwrap();
        cache.clear();
        cache.model().stats().reset();
        let query = figure2_query(&engine);
        // Warm-up run (embedding cache, allocator), then best of 3.
        engine.execute(&query).unwrap();
        let inferences = cache.model().stats().invocations();
        // Planning time (optimize + sampling-based estimation + lowering).
        let t = Instant::now();
        engine.plan(&query).unwrap();
        let plan_secs = t.elapsed().as_secs_f64();
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..5 {
            let t = Instant::now();
            result = Some(engine.execute(&query).unwrap());
            best = best.min(t.elapsed().as_secs_f64());
        }
        let result = result.expect("at least one run");
        // execute() re-plans internally; subtract to isolate execution.
        let exec_secs = (best - plan_secs).max(0.0);
        println!(
            "{:<42} | {:>9.1} | {:>9.1} | {:>12} | {:>8} | {:>6}",
            name,
            plan_secs * 1e3,
            exec_secs * 1e3,
            inferences,
            result.table.num_rows(),
            result.rules_fired.len()
        );
        match reference_rows {
            None => reference_rows = Some(result.table.num_rows()),
            Some(r) => assert_eq!(r, result.table.num_rows(), "plan variants must agree"),
        }
    }

    // Ground-truth check.
    let truth = data.fig2_ground_truth(20.0, AFTER_DAY, 2).unwrap();
    println!(
        "\nlatent ground truth: {} qualifying products (engine found {})",
        truth.len(),
        reference_rows.unwrap_or(0)
    );
    println!("shape check: pushdown moves every predicate below the semantic joins,");
    println!("cutting the rows (and distinct values) that reach model inference and");
    println!("pair expansion — the same lesson as Figure 4, on the full query.");
}

//! CHAOS STORM — serving goodput and tail latency under seeded fault
//! injection, against a fault-free twin of the same storm.
//!
//! Both sides run the identical multi-client storm (distinct literals,
//! scan sharing on) through the same `Server` code; the storm side
//! additionally carries a [`cx_serve::FaultPlan`] injecting panics,
//! delays, and transient errors at ~5% of draws across all five
//! [`cx_serve::FaultSite`]s. What the bench measures is the cost of
//! surviving that: **goodput** (successful queries per second — shed or
//! doubly-faulted queries don't count), p50/p99 latency of the
//! successes, and the recovery counters (retries, contained panics,
//! transient failures).
//!
//! Emits `BENCH_chaos.json`.
//!
//! Usage: `cargo run --release -p cx-bench --bin chaos_storm`
//!   env `CHAOS_N`         corpus rows          (default 2000)
//!   env `CHAOS_CLIENTS`   concurrent clients   (default 8)
//!   env `CHAOS_REPLAYS`   storm replays/client (default 3)
//!   env `CHAOS_SEED`      fault-plan seed      (default 0xC0FFEE)
//!   env `CHAOS_RATE_BP`   fault rate, bp       (default 500 = 5%)

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::AggSpec;
use cx_serve::{FaultPlan, FaultSite, ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh engine over `n` shop rows plus a label relation (cold caches).
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 300, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));

    let vocab = cx_datagen::vocab::all_words(&clusters);
    let names = generate_corpus(
        &vocab,
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .expect("products table");
    engine.register_table("products", products).expect("register products");

    let labels = generate_corpus(
        &vocab,
        CorpusConfig { size: n.max(256), zipf_s: 0.6, max_words: 2, seed: 23 },
    );
    let label_table = Table::from_columns(
        Schema::new(vec![Field::new("label", DataType::Utf8)]),
        vec![Column::from_strings(labels)],
    )
    .expect("labels table");
    engine.register_table("labels", label_table).expect("register labels");
    engine
}

/// Client `client`'s storm for one replay — the `mqo_throughput` mix:
/// 5 semantic joins + 2 semantic filters, every literal globally unique.
fn storm(engine: &Engine, vocab: &[String], client: usize, replay: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for q in 0..5 {
        let gidx = (replay * 5 + q) * 64 + client;
        let threshold = 0.93 + 1e-6 * gidx as f32;
        queries.push(
            engine
                .table("products")
                .expect("products")
                .semantic_join(
                    engine.table("labels").expect("labels"),
                    "name",
                    "label",
                    "fasttext-like",
                    threshold,
                )
                .aggregate(&[], vec![AggSpec::count_star("matches")]),
        );
        if q < 2 {
            let target = &vocab[(client * 67 + replay * 5 + q) % vocab.len()];
            let f_threshold = 0.8 + 1e-6 * gidx as f32;
            queries.push(
                engine
                    .table("products")
                    .expect("products")
                    .semantic_filter("name", target, "fasttext-like", f_threshold)
                    .aggregate(&[], vec![AggSpec::count_star("n")]),
            );
        }
    }
    queries
}

struct Side {
    total_secs: f64,
    latencies: Vec<Duration>, // successes only
    failed: u64,
}

impl Side {
    fn goodput(&self) -> f64 {
        self.latencies.len() as f64 / self.total_secs
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    /// p50/p95/p99 in ms through a `cx_obs` log-linear histogram (the
    /// machinery every `BENCH_*.json` sources its quantiles from).
    fn hist_quantiles_ms(&self) -> (f64, f64, f64) {
        let h = cx_obs::Histogram::new();
        for d in &self.latencies {
            h.record_duration(*d);
        }
        let s = h.snapshot();
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6)
    }
}

/// Runs the full storm (all clients × replays) through `server`,
/// tolerating typed failures — that is the point.
fn run_storm(server: &Arc<Server>, clients: usize, replays: usize) -> Side {
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let vocab = cx_datagen::vocab::all_words(&clusters);
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut failed = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let server = server.clone();
                let barrier = barrier.clone();
                let vocab = vocab.clone();
                s.spawn(move || {
                    let session = server.session();
                    let mut local = Vec::new();
                    let mut errors = 0u64;
                    barrier.wait();
                    for replay in 0..replays {
                        for q in storm(server.engine(), &vocab, client, replay) {
                            let t = Instant::now();
                            match session.execute(&q) {
                                Ok(r) => {
                                    std::hint::black_box(r.table.num_rows());
                                    local.push(t.elapsed());
                                }
                                Err(e) => {
                                    assert!(
                                        e.is_transient(),
                                        "storm produced a non-transient failure: {e}"
                                    );
                                    errors += 1;
                                }
                            }
                        }
                    }
                    (local, errors)
                })
            })
            .collect();
        for h in handles {
            let (local, errors) = h.join().expect("client thread");
            latencies.extend(local);
            failed += errors;
        }
    });
    Side { total_secs: start.elapsed().as_secs_f64(), latencies, failed }
}

fn main() {
    // Injected panics are contained by the server; keep their default
    // backtrace spew out of the bench output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|m| m.contains("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let n = env_u64("CHAOS_N", 2000) as usize;
    let clients = env_u64("CHAOS_CLIENTS", 8) as usize;
    let replays = env_u64("CHAOS_REPLAYS", 3) as usize;
    let seed = env_u64("CHAOS_SEED", 0xC0FFEE);
    let rate_bp = env_u64("CHAOS_RATE_BP", 500);
    let rate = rate_bp as f64 / 10_000.0;

    println!("CHAOS STORM — serving under seeded fault injection vs fault-free");
    println!(
        "corpus: {n} rows, {clients} clients × {replays} replays × 7 queries, \
         seed {seed:#x}, rate {:.1}%\n",
        rate * 100.0
    );

    // ---- fault-free twin: same storm, no plan installed ----
    let clean = {
        let server = Server::new(build_engine(n), ServeConfig::default());
        run_storm(&server, clients, replays)
    };
    println!(
        "fault-free : {:>8.1} qps  p50 {:>7.2} ms  p99 {:>7.2} ms  ({} ok, {} failed, {:.2}s)",
        clean.goodput(),
        clean.percentile(0.5),
        clean.percentile(0.99),
        clean.latencies.len(),
        clean.failed,
        clean.total_secs
    );

    // ---- storm side: identical run with the fault plan installed ----
    let server = Server::new(build_engine(n), ServeConfig::default());
    let plan = Arc::new(FaultPlan::new(seed, rate).with_delay(Duration::from_millis(2)));
    server.set_fault_plan(Some(plan));
    let stormy = run_storm(&server, clients, replays);
    let faults = server.fault_stats().expect("plan installed");
    let lifecycle = server.lifecycle_stats();
    println!(
        "fault storm: {:>8.1} qps  p50 {:>7.2} ms  p99 {:>7.2} ms  ({} ok, {} failed, {:.2}s)",
        stormy.goodput(),
        stormy.percentile(0.5),
        stormy.percentile(0.99),
        stormy.latencies.len(),
        stormy.failed,
        stormy.total_secs
    );

    let total = (stormy.latencies.len() as u64 + stormy.failed) as f64;
    let goodput_ratio = stormy.goodput() / clean.goodput();
    println!(
        "\ninjected {} faults ({}), survived {:.1}% of queries, goodput ratio {:.3}",
        faults.total(),
        FaultSite::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{s} {}", faults.per_site[i]))
            .collect::<Vec<_>>()
            .join(", "),
        100.0 * stormy.latencies.len() as f64 / total,
        goodput_ratio
    );
    println!(
        "recovery: {} retries, {} contained panics, {} transient failures surfaced",
        lifecycle.retries, lifecycle.contained_panics, lifecycle.transient_failures
    );

    let site_json = FaultSite::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| format!("\"{s}\": {}", faults.per_site[i]))
        .collect::<Vec<_>>()
        .join(", ");
    let simd = cx_vector::simd::KernelDispatch::active().report();
    let clean_q = clean.hist_quantiles_ms();
    let stormy_q = stormy.hist_quantiles_ms();
    let json = format!(
        "{{\n  \"bench\": \"chaos_storm\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"clients\": {clients},\n  \"replays\": {replays},\n  \"seed\": {seed},\n  \"fault_rate\": {rate:.4},\n  \"fault_free\": {{\"goodput_qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"ok\": {}, \"failed\": {}, \"total_secs\": {:.4}}},\n  \"storm\": {{\"goodput_qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"ok\": {}, \"failed\": {}, \"total_secs\": {:.4}}},\n  \"goodput_ratio\": {:.4},\n  \"faults_injected\": {{{site_json}, \"total\": {}}},\n  \"lifecycle\": {{\"retries\": {}, \"contained_panics\": {}, \"transient_failures\": {}, \"deadline_exceeded\": {}, \"cancelled\": {}, \"budget_exceeded\": {}}}\n}}\n",
        clean.goodput(),
        clean_q.0,
        clean_q.1,
        clean_q.2,
        clean.latencies.len(),
        clean.failed,
        clean.total_secs,
        stormy.goodput(),
        stormy_q.0,
        stormy_q.1,
        stormy_q.2,
        stormy.latencies.len(),
        stormy.failed,
        stormy.total_secs,
        goodput_ratio,
        faults.total(),
        lifecycle.retries,
        lifecycle.contained_panics,
        lifecycle.transient_failures,
        lifecycle.deadline_exceeded,
        lifecycle.cancelled,
        lifecycle.budget_exceeded,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_chaos.json"),
        Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
    }
}

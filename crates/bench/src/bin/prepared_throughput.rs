//! PREPARED-STATEMENT THROUGHPUT — a distinct-literal storm through
//! `Prepared::execute` vs ad-hoc execution of the same storm.
//!
//! The workload models parameterized production traffic at its worst for
//! a fingerprint-keyed plan cache: one query template (semantic probe ⊕
//! price threshold, both parameterized), every request a **distinct**
//! binding. Ad hoc, every request is a plan-cache miss — it re-warms,
//! re-optimizes (sampling probes included) and re-lowers. Prepared, the
//! template is optimized and lowered once per shape; each request binds
//! its values into the cached physical tree and runs the bound sweep.
//! Both sides run through the same `cx_serve::Server` machinery
//! (admission, memoization) over cold engines, so the measured gap is
//! exactly what the prepared path removes. MQO scan sharing is disabled
//! on *both* sides: shared sweeps amortize execution identically for
//! both and would only mask the pipeline cost under comparison (the
//! prepared ⊕ MQO composition is covered by
//! `tests/prepared_statements.rs`). The default corpus is sized so
//! per-query execution does not drown the fixed per-query pipeline cost
//! being measured — at much larger corpora this bench degenerates into
//! a sweep benchmark (see `BENCH_block_kernels.json` for that).
//!
//! Emits `BENCH_prepared.json`: QPS and p50/p95 for both sides, the
//! speedup, the prepared side's plan-cache (shape) hit rate, and a
//! bit-identity verdict of prepared vs ad-hoc results per binding.
//!
//! Usage: `cargo run --release -p cx-bench --bin prepared_throughput`
//!   env `PREP_N`        corpus rows              (default 400)
//!   env `PREP_CLIENTS`  concurrent clients       (default 8)
//!   env `PREP_QUERIES`  distinct bindings/client (default 60)

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_expr::{col, lit, param};
use cx_serve::{ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh engine over `n` shop rows (cold caches).
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));

    let names = generate_corpus(
        &cx_datagen::vocab::all_words(&clusters),
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .expect("products table");
    engine.register_table("products", products).expect("register products");
    engine
}

/// The storm: `clients × per_client` distinct (probe, price) bindings.
/// Probes cycle through the model's vocabulary, prices through the price
/// range — no binding repeats, so the ad-hoc side's plan cache gets zero
/// hits and its result memo never fires.
fn bindings(clients: usize, per_client: usize) -> Vec<Vec<(String, f64, i64)>> {
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let words = cx_datagen::vocab::all_words(&clusters);
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let k = c * per_client + i;
                    (
                        words[k % words.len()].clone(),
                        20.0 + (k % 160) as f64,
                        10 + (k % 50) as i64,
                    )
                })
                .collect()
        })
        .collect()
}

/// The equivalent literal query for one binding (the ad-hoc side, and the
/// bit-identity reference).
fn adhoc_query(engine: &Engine, target: &str, price: f64, limit: i64) -> Query {
    engine
        .table("products")
        .expect("products")
        .semantic_filter("name", target, "fasttext-like", 0.8)
        .filter(col("price").gt(lit(price)))
        .sort(&[("price", false), ("product_id", true)])
        .limit(limit as usize)
}

struct Side {
    total_secs: f64,
    latencies: Vec<Duration>,
}

impl Side {
    fn qps(&self) -> f64 {
        self.latencies.len() as f64 / self.total_secs
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    /// p50/p95/p99 in ms through a `cx_obs` log-linear histogram (the
    /// machinery every `BENCH_*.json` sources its quantiles from).
    fn hist_quantiles_ms(&self) -> (f64, f64, f64) {
        let h = cx_obs::Histogram::new();
        for d in &self.latencies {
            h.record_duration(*d);
        }
        let s = h.snapshot();
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6)
    }
}

fn main() {
    let n = env_usize("PREP_N", 400);
    let clients = env_usize("PREP_CLIENTS", 8);
    let per_client = env_usize("PREP_QUERIES", 60);
    let storm = bindings(clients, per_client);

    println!("PREPARED THROUGHPUT — distinct-literal storm, prepared vs ad-hoc");
    println!(
        "corpus: {n} rows, {clients} clients x {per_client} distinct bindings, cold caches both\n"
    );

    // ---- ad-hoc side: literal queries through a shared server ----
    let serve_config = ServeConfig { mqo: false, ..ServeConfig::default() };
    let adhoc_server = Server::new(build_engine(n), serve_config);
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = adhoc_server.clone();
                let barrier = barrier.clone();
                let mine = storm[c].clone();
                s.spawn(move || {
                    let session = server.session();
                    let mut local = Vec::with_capacity(mine.len());
                    barrier.wait();
                    for (target, price, limit) in &mine {
                        let q = adhoc_query(server.engine(), target, *price, *limit);
                        let t = Instant::now();
                        let r = session.execute(&q).expect("ad-hoc execute");
                        std::hint::black_box(r.table.num_rows());
                        local.push(t.elapsed());
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    let adhoc = Side { total_secs: start.elapsed().as_secs_f64(), latencies };
    let adhoc_plan = adhoc_server.plan_cache_stats();
    println!(
        "ad-hoc   ({clients} clients): {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  plan-cache hit rate {:>5.1}%",
        adhoc.qps(),
        adhoc.percentile(0.5),
        adhoc.percentile(0.95),
        100.0 * adhoc_plan.hit_rate(),
    );

    // ---- prepared side: one template, bound per request ----
    let server = Server::new(build_engine(n), serve_config);
    let session = server.session();
    let template = server
        .table("products")
        .expect("products")
        .semantic_filter_param("name", 0, "fasttext-like", 0.8)
        .filter(col("price").gt(param(1)))
        .sort(&[("price", false), ("product_id", true)])
        .limit_param(2);
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    // Prepare inside the timed region: the one-time optimization is part
    // of the prepared path's honest cost.
    let prepared = Arc::new(session.prepare(&template).expect("prepare"));
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let prepared = prepared.clone();
                let barrier = barrier.clone();
                let mine = storm[c].clone();
                s.spawn(move || {
                    let mut local = Vec::with_capacity(mine.len());
                    barrier.wait();
                    for (target, price, limit) in &mine {
                        let bind = [
                            Scalar::from(target.as_str()),
                            Scalar::Float64(*price),
                            Scalar::Int64(*limit),
                        ];
                        let t = Instant::now();
                        let r = prepared.execute(&bind).expect("prepared execute");
                        std::hint::black_box(r.table.num_rows());
                        local.push(t.elapsed());
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    let prep = Side { total_secs: start.elapsed().as_secs_f64(), latencies };
    let plan = server.plan_cache_stats();
    println!(
        "prepared ({clients} clients): {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  plan-cache hit rate {:>5.1}%",
        prep.qps(),
        prep.percentile(0.5),
        prep.percentile(0.95),
        100.0 * plan.hit_rate(),
    );

    // ---- bit-identity: prepared vs ad-hoc, sampled across the storm ----
    // Replays hit the per-binding memo, so this re-reads the prepared
    // side's actual result tables; the reference executes the literal
    // query on the prepared server's own engine (deterministic).
    let mut verified = 0usize;
    for (c, client) in storm.iter().enumerate() {
        for (i, (target, price, limit)) in client.iter().enumerate() {
            if !(c * per_client + i).is_multiple_of(7) {
                continue;
            }
            let got = prepared
                .execute(&[
                    Scalar::from(target.as_str()),
                    Scalar::Float64(*price),
                    Scalar::Int64(*limit),
                ])
                .expect("replay");
            let expected = server
                .engine()
                .execute(&adhoc_query(server.engine(), target, *price, *limit))
                .expect("reference");
            assert_eq!(got.table.num_rows(), expected.table.num_rows(), "{target}/{price}");
            for r in 0..expected.table.num_rows() {
                let (g, e) = (got.table.row(r).unwrap(), expected.table.row(r).unwrap());
                for (gs, es) in g.iter().zip(&e) {
                    match (gs, es) {
                        (Scalar::Float64(x), Scalar::Float64(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "{target}/{price} row {r}")
                        }
                        _ => assert_eq!(gs, es, "{target}/{price} row {r}"),
                    }
                }
            }
            verified += 1;
        }
    }

    let speedup = prep.qps() / adhoc.qps();
    println!("\nspeedup: {speedup:.2}x qps (acceptance: >= 2x)");
    println!(
        "prepared plan cache: {} hits / {} misses (shape hit rate {:.1}%, acceptance >= 95%)",
        plan.hits,
        plan.misses,
        100.0 * plan.hit_rate(),
    );
    println!(
        "bit-identity: {verified} sampled bindings identical to ad-hoc execution"
    );

    let simd = cx_vector::simd::KernelDispatch::active().report();
    let prep_q = prep.hist_quantiles_ms();
    let adhoc_q = adhoc.hist_quantiles_ms();
    let json = format!(
        "{{\n  \"bench\": \"prepared_throughput\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"clients\": {clients},\n  \"distinct_bindings\": {},\n  \"prepared\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"adhoc\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}, \"plan_cache_hit_rate\": {:.4}}},\n  \"qps_speedup\": {:.3},\n  \"prepared_plan_cache\": {{\"hits\": {}, \"misses\": {}, \"shape_hit_rate\": {:.4}}},\n  \"bit_identical_sampled_bindings\": {verified}\n}}\n",
        clients * per_client,
        prep.qps(),
        prep_q.0,
        prep_q.1,
        prep_q.2,
        prep.total_secs,
        adhoc.qps(),
        adhoc_q.0,
        adhoc_q.1,
        adhoc_q.2,
        adhoc.total_secs,
        adhoc_plan.hit_rate(),
        speedup,
        plan.hits,
        plan.misses,
        plan.hit_rate(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prepared.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_prepared.json"),
        Err(e) => eprintln!("could not write BENCH_prepared.json: {e}"),
    }
}

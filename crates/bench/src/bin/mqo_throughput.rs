//! MQO THROUGHPUT — a same-table query storm where the plan cache cannot
//! help, with multi-query scan sharing on vs off.
//!
//! Every query in the storm carries a **distinct literal** (its own
//! semantic-filter target or its own join threshold), so fingerprints
//! never repeat: the plan cache misses on every query, the result memo
//! never fires, and PR 3's serving path executes every sweep solo. The
//! only structure left to exploit is that all queries scan the *same
//! table under the same model* — exactly what `cx_mqo` shares. Both
//! sides run the identical storm over identical cold engines through the
//! same `Server`; the baseline just has `ServeConfig::mqo` off.
//!
//! Emits `BENCH_mqo.json`: QPS and latency percentiles for both sides,
//! the speedup (acceptance: ≥ 2×), and the scan-sharing counters.
//!
//! Usage: `cargo run --release -p cx-bench --bin mqo_throughput`
//!   env `MQO_N`         corpus rows          (default 2000)
//!   env `MQO_CLIENTS`   concurrent clients   (default 8)
//!   env `MQO_REPLAYS`   storm replays/client (default 2)
//!   env `MQO_LINGER_MS` scan-queue linger    (default 40; size it ≈ one
//!                       round's optimize+queue spread so groups fill)

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::AggSpec;
use cx_serve::{ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh engine over `n` shop rows plus a label relation (cold caches).
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 300, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));

    let vocab = cx_datagen::vocab::all_words(&clusters);
    let names = generate_corpus(
        &vocab,
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .expect("products table");
    engine.register_table("products", products).expect("register products");

    // A label relation sized so the join's build-panel sweep is the
    // dominant per-query cost (the thing sharing amortizes).
    let labels = generate_corpus(
        &vocab,
        CorpusConfig { size: n.max(256), zipf_s: 0.6, max_words: 2, seed: 23 },
    );
    let label_table = Table::from_columns(
        Schema::new(vec![Field::new("label", DataType::Utf8)]),
        vec![Column::from_strings(labels)],
    )
    .expect("labels table");
    engine.register_table("labels", label_table).expect("register labels");
    engine
}

/// Client `client`'s storm for one replay: 5 semantic joins and 2
/// semantic filters, every literal globally unique (threshold stepped by
/// a per-query epsilon, filter targets drawn without reuse), so no two
/// queries in the whole run fingerprint equal.
fn storm(engine: &Engine, vocab: &[String], client: usize, replay: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for q in 0..5 {
        let gidx = (replay * 5 + q) * 64 + client; // unique per (client, replay, q)
        let threshold = 0.93 + 1e-6 * gidx as f32;
        queries.push(
            engine
                .table("products")
                .expect("products")
                .semantic_join(
                    engine.table("labels").expect("labels"),
                    "name",
                    "label",
                    "fasttext-like",
                    threshold,
                )
                .aggregate(&[], vec![AggSpec::count_star("matches")]),
        );
        if q < 2 {
            let target = &vocab[(client * 67 + replay * 5 + q) % vocab.len()];
            let f_threshold = 0.8 + 1e-6 * gidx as f32;
            queries.push(
                engine
                    .table("products")
                    .expect("products")
                    .semantic_filter("name", target, "fasttext-like", f_threshold)
                    .aggregate(&[], vec![AggSpec::count_star("n")]),
            );
        }
    }
    queries
}

struct Side {
    total_secs: f64,
    latencies: Vec<Duration>,
}

impl Side {
    fn qps(&self) -> f64 {
        self.latencies.len() as f64 / self.total_secs
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    /// p50/p95/p99 in ms through a `cx_obs` log-linear histogram (the
    /// machinery every `BENCH_*.json` sources its quantiles from).
    fn hist_quantiles_ms(&self) -> (f64, f64, f64) {
        let h = cx_obs::Histogram::new();
        for d in &self.latencies {
            h.record_duration(*d);
        }
        let s = h.snapshot();
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6)
    }
}

/// Runs the full storm (all clients × replays) through `server`.
fn run_storm(server: &Arc<Server>, clients: usize, replays: usize) -> Side {
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let vocab = cx_datagen::vocab::all_words(&clusters);
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let server = server.clone();
                let barrier = barrier.clone();
                let vocab = vocab.clone();
                s.spawn(move || {
                    let session = server.session();
                    let mut local = Vec::new();
                    barrier.wait();
                    for replay in 0..replays {
                        for q in storm(server.engine(), &vocab, client, replay) {
                            let t = Instant::now();
                            let r = session.execute(&q).expect("storm query");
                            std::hint::black_box(r.table.num_rows());
                            local.push(t.elapsed());
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    Side { total_secs: start.elapsed().as_secs_f64(), latencies }
}

fn main() {
    let n = env_usize("MQO_N", 2000);
    let clients = env_usize("MQO_CLIENTS", 8);
    let replays = env_usize("MQO_REPLAYS", 2);
    let linger_ms = env_usize("MQO_LINGER_MS", 40);

    println!("MQO THROUGHPUT — same-table storm, distinct literals per query");
    println!(
        "corpus: {n} rows, {clients} clients × {replays} replays × 7 queries, cold caches both\n"
    );

    // ---- baseline: the PR 3 serving path (everything but scan sharing) ----
    let unshared = {
        let server = Server::new(
            build_engine(n),
            ServeConfig { mqo: false, ..ServeConfig::default() },
        );
        run_storm(&server, clients, replays)
    };
    println!(
        "cx_serve, mqo off : {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  ({} queries in {:.2}s)",
        unshared.qps(),
        unshared.percentile(0.5),
        unshared.percentile(0.95),
        unshared.latencies.len(),
        unshared.total_secs
    );

    // ---- shared: identical storm with the scan queue on ----
    let server = Server::new(
        build_engine(n),
        ServeConfig {
            scan_linger: Duration::from_millis(linger_ms as u64),
            ..ServeConfig::default()
        },
    );
    let shared = run_storm(&server, clients, replays);
    println!(
        "cx_serve, mqo on  : {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  ({} queries in {:.2}s)",
        shared.qps(),
        shared.percentile(0.5),
        shared.percentile(0.95),
        shared.latencies.len(),
        shared.total_secs
    );

    if std::env::var("MQO_REPORT").is_ok() {
        println!("\n== shared-side server report ==\n{}", server.report());
    }

    let speedup = shared.qps() / unshared.qps();
    let sharing = server.scan_sharing_stats();
    let plan = server.plan_cache_stats();
    println!("\nspeedup: {speedup:.2}x qps (acceptance: >= 2x)");
    println!(
        "plan cache on the shared side: {} hits / {} misses (distinct literals: the cache cannot help)",
        plan.hits, plan.misses
    );
    println!(
        "scan sharing: {} of {} queries coalesced into {} shared groups (max group {}), \
         {} panel rows saved, {} pairs deduped, {} fallbacks",
        sharing.shared_queries,
        sharing.grouped_queries,
        sharing.shared_groups,
        sharing.max_group,
        sharing.panel_rows_saved,
        sharing.pairs_saved,
        sharing.sweep_fallbacks,
    );

    let simd = cx_vector::simd::KernelDispatch::active().report();
    let shared_q = shared.hist_quantiles_ms();
    let unshared_q = unshared.hist_quantiles_ms();
    let json = format!(
        "{{\n  \"bench\": \"mqo_throughput\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"clients\": {clients},\n  \"replays\": {replays},\n  \"queries_per_side\": {},\n  \"mqo\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"unshared\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"qps_speedup\": {:.3},\n  \"scan_sharing\": {{\"groups\": {}, \"grouped_queries\": {}, \"shared_groups\": {}, \"shared_queries\": {}, \"max_group\": {}, \"panel_rows_saved\": {}, \"pairs_saved\": {}, \"sweep_fallbacks\": {}}},\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}}}\n}}\n",
        shared.latencies.len(),
        shared.qps(),
        shared_q.0,
        shared_q.1,
        shared_q.2,
        shared.total_secs,
        unshared.qps(),
        unshared_q.0,
        unshared_q.1,
        unshared_q.2,
        unshared.total_secs,
        speedup,
        sharing.groups,
        sharing.grouped_queries,
        sharing.shared_groups,
        sharing.shared_queries,
        sharing.max_group,
        sharing.panel_rows_saved,
        sharing.pairs_saved,
        sharing.sweep_fallbacks,
        plan.hits,
        plan.misses,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mqo.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_mqo.json"),
        Err(e) => eprintln!("could not write BENCH_mqo.json: {e}"),
    }
}

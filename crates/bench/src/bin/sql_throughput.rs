//! SQL THROUGHPUT — the same distinct-literal storm, three ways through
//! the text front-end:
//!
//! 1. **auto-param** — ad-hoc SQL with auto-parameterization on: every
//!    statement's literals are lifted into parameter slots, so the whole
//!    storm collapses into one prepared shape (one optimizer run).
//! 2. **exact** — ad-hoc SQL with auto-parameterization off: every
//!    distinct literal is a distinct exact fingerprint, so every
//!    statement re-optimizes and re-lowers.
//! 3. **prepared** — explicit `PREPARE ... AS ... $0 $1` once per client,
//!    then `EXECUTE` per binding: the ceiling the auto-param path chases.
//!
//! Every leg runs the identical storm over a cold server with MQO scan
//! sharing off (shared sweeps would amortize execution identically on
//! all three sides and mask the pipeline cost under comparison). The
//! acceptance bar from the roadmap: auto-param ad-hoc within **1.5×** of
//! explicitly-prepared QPS at a **≥95%** shape hit rate.
//!
//! Emits `BENCH_sql.json` (gated by `bench_diff` on `autoparam.qps`).
//!
//! Usage: `cargo run --release -p cx-bench --bin sql_throughput`
//!   env `SQL_N`        corpus rows               (default 400)
//!   env `SQL_CLIENTS`  concurrent clients        (default 8)
//!   env `SQL_QUERIES`  distinct bindings/client  (default 60)

use context_engine::{Engine, EngineConfig};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_serve::{ServeConfig, Server, SqlResponse};
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh engine over `n` shop rows (cold caches), same corpus as
/// `prepared_throughput` so the two reports are comparable.
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext_like", space, 7)));

    let names = generate_corpus(
        &cx_datagen::vocab::all_words(&clusters),
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .expect("products table");
    engine.register_table("products", products).expect("register products");
    engine
}

/// The storm: `clients × per_client` distinct (probe, price) bindings.
fn bindings(clients: usize, per_client: usize) -> Vec<Vec<(String, f64)>> {
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let words = cx_datagen::vocab::all_words(&clusters);
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let k = c * per_client + i;
                    (words[k % words.len()].clone(), 20.0 + (k % 160) as f64)
                })
                .collect()
        })
        .collect()
}

/// The ad-hoc text for one binding: one shape, two literals.
fn adhoc_sql(probe: &str, price: f64) -> String {
    format!(
        "SELECT product_id, name, price FROM products \
         WHERE price > {price:?} AND name SEMANTIC LIKE '{}' USING fasttext_like (0.8) \
         ORDER BY price DESC, product_id ASC LIMIT 10",
        probe.replace('\'', "''"),
    )
}

const PREPARE_SQL: &str = "PREPARE storm AS \
    SELECT product_id, name, price FROM products \
    WHERE price > $0 AND name SEMANTIC LIKE $1 USING fasttext_like (0.8) \
    ORDER BY price DESC, product_id ASC LIMIT 10";

struct Side {
    total_secs: f64,
    latencies: Vec<Duration>,
}

impl Side {
    fn qps(&self) -> f64 {
        self.latencies.len() as f64 / self.total_secs
    }

    /// p50/p95/p99 in ms through a `cx_obs` log-linear histogram.
    fn quantiles_ms(&self) -> (f64, f64, f64) {
        let h = cx_obs::Histogram::new();
        for d in &self.latencies {
            h.record_duration(*d);
        }
        let s = h.snapshot();
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6)
    }
}

/// Drive the storm through `Session::sql`, one thread per client. The
/// `statement` closure maps a binding to the text each client sends.
fn run_leg(
    server: &Arc<Server>,
    storm: &[Vec<(String, f64)>],
    setup: Option<&str>,
    statement: impl Fn(&str, f64) -> String + Copy + Send,
) -> Side {
    let barrier = Arc::new(Barrier::new(storm.len()));
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = storm
            .iter()
            .map(|mine| {
                let server = server.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    let session = server.session();
                    if let Some(text) = setup {
                        session.sql(text).expect("setup statement");
                    }
                    let mut local = Vec::with_capacity(mine.len());
                    barrier.wait();
                    for (probe, price) in mine {
                        let text = statement(probe, *price);
                        let t = Instant::now();
                        match session.sql(&text).expect("sql statement") {
                            SqlResponse::Rows(r) => {
                                std::hint::black_box(r.table.num_rows());
                            }
                            other => panic!("expected rows, got {other:?}"),
                        }
                        local.push(t.elapsed());
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    Side { total_secs: start.elapsed().as_secs_f64(), latencies }
}

fn print_leg(name: &str, side: &Side) {
    let (p50, p95, _) = side.quantiles_ms();
    println!("{name:<10} {:>8.1} qps  p50 {p50:>7.2} ms  p95 {p95:>7.2} ms", side.qps());
}

fn main() {
    let n = env_usize("SQL_N", 400);
    let clients = env_usize("SQL_CLIENTS", 8);
    let per_client = env_usize("SQL_QUERIES", 60);
    let storm = bindings(clients, per_client);
    let statements = clients * per_client;

    println!("SQL THROUGHPUT — auto-param vs exact vs explicit prepared");
    println!("corpus: {n} rows, {clients} clients x {per_client} distinct bindings, cold caches\n");

    let base = ServeConfig { mqo: false, ..ServeConfig::default() };

    // ---- leg 1: ad-hoc with auto-parameterization (the default) ----
    let auto_server = Server::new(build_engine(n), base);
    let auto = run_leg(&auto_server, &storm, None, adhoc_sql);
    let auto_stats = auto_server.sql_stats();
    print_leg("auto-param", &auto);

    // ---- leg 2: ad-hoc with exact per-literal planning ----
    let exact_server =
        Server::new(build_engine(n), ServeConfig { sql_auto_param: false, ..base });
    let exact = run_leg(&exact_server, &storm, None, adhoc_sql);
    print_leg("exact", &exact);

    // ---- leg 3: explicit PREPARE / EXECUTE ----
    let prep_server = Server::new(build_engine(n), base);
    let prep = run_leg(&prep_server, &storm, Some(PREPARE_SQL), |probe, price| {
        format!("EXECUTE storm ({price:?}, '{}')", probe.replace('\'', "''"))
    });
    print_leg("prepared", &prep);

    // ---- bit-identity: auto-param vs exact, sampled (replays hit the
    // per-binding result memo, so this re-reads the actual tables) ----
    let auto_session = auto_server.session();
    let exact_session = exact_server.session();
    let mut verified = 0usize;
    for (k, (probe, price)) in storm.iter().flatten().enumerate() {
        if k % 7 != 0 {
            continue;
        }
        let text = adhoc_sql(probe, *price);
        let (a, e) = match (
            auto_session.sql(&text).expect("auto replay"),
            exact_session.sql(&text).expect("exact replay"),
        ) {
            (SqlResponse::Rows(a), SqlResponse::Rows(e)) => (a, e),
            _ => unreachable!("SELECT returns rows"),
        };
        assert_eq!(a.table.num_rows(), e.table.num_rows(), "{probe}/{price}");
        for r in 0..e.table.num_rows() {
            let (ga, ge) = (a.table.row(r).unwrap(), e.table.row(r).unwrap());
            for (x, y) in ga.iter().zip(&ge) {
                match (x, y) {
                    (Scalar::Float64(x), Scalar::Float64(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "{probe}/{price} row {r}")
                    }
                    _ => assert_eq!(x, y, "{probe}/{price} row {r}"),
                }
            }
        }
        verified += 1;
    }

    let vs_prepared = prep.qps() / auto.qps();
    let vs_exact = auto.qps() / exact.qps();
    println!(
        "\nauto-param vs prepared: {vs_prepared:.2}x behind (acceptance: <= 1.5x)\n\
         auto-param vs exact:    {vs_exact:.2}x ahead\n\
         shape hit rate: {:.1}% over {} auto-parameterized statements (acceptance >= 95%)\n\
         bit-identity: {verified} sampled statements identical across modes",
        100.0 * auto_stats.shape_hit_rate(),
        auto_stats.auto_param,
    );

    let simd = cx_vector::simd::KernelDispatch::active().report();
    let (a50, a95, a99) = auto.quantiles_ms();
    let (e50, e95, e99) = exact.quantiles_ms();
    let (p50, p95, p99) = prep.quantiles_ms();
    let json = format!(
        "{{\n  \"bench\": \"sql_throughput\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"clients\": {clients},\n  \"statements\": {statements},\n  \"autoparam\": {{\"qps\": {:.2}, \"p50_ms\": {a50:.4}, \"p95_ms\": {a95:.4}, \"p99_ms\": {a99:.4}, \"total_secs\": {:.4}, \"shape_hit_rate\": {:.4}}},\n  \"exact\": {{\"qps\": {:.2}, \"p50_ms\": {e50:.4}, \"p95_ms\": {e95:.4}, \"p99_ms\": {e99:.4}, \"total_secs\": {:.4}}},\n  \"prepared\": {{\"qps\": {:.2}, \"p50_ms\": {p50:.4}, \"p95_ms\": {p95:.4}, \"p99_ms\": {p99:.4}, \"total_secs\": {:.4}}},\n  \"autoparam_vs_prepared\": {vs_prepared:.3},\n  \"autoparam_vs_exact_speedup\": {vs_exact:.3},\n  \"bit_identical_sampled_statements\": {verified}\n}}\n",
        auto.qps(),
        auto.total_secs,
        auto_stats.shape_hit_rate(),
        exact.qps(),
        exact.total_secs,
        prep.qps(),
        prep.total_secs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sql.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_sql.json"),
        Err(e) => eprintln!("could not write BENCH_sql.json: {e}"),
    }
}

//! SERVING THROUGHPUT — 8 concurrent clients through `cx_serve` vs a
//! naive serial `Engine::execute` loop.
//!
//! The workload is a 20-query mix (relational lookups, semantic filters at
//! several thresholds/targets, a semantic join, a semantic group-by —
//! with repeats, the way parameterized production traffic repeats) over a
//! shop-like corpus. Each of the 8 clients replays the full mix `replays`
//! times through one shared [`Server`]; the baseline replays the identical
//! 8×`replays` sequence through a bare engine, serially. Both sides start
//! with cold caches — the server's advantage is structural (plan-cache +
//! result-memo hits after the first replay, batched cross-client embedding
//! warm-up, thread concurrency), not a warm-up artifact.
//!
//! The served storm runs twice — tracing off (the primary numbers) and
//! tracing on (`ServeConfig::tracing`) — so the observability overhead is
//! measured on every run, not asserted once. Each served leg takes the
//! best of five runs to damp scheduler noise; both legs get identical
//! treatment, so the comparison stays fair.
//!
//! Emits `BENCH_serve.json`: QPS, histogram-sourced p50/p95/p99 per-query
//! latency for all sides, the speedup, the tracing overhead percentage,
//! and the server's plan-cache/batcher counters. Also emits
//! `BENCH_serve_metrics.prom` — the tracing-on server's Prometheus text
//! snapshot, validated through `cx_obs::promparse` before it is written.
//!
//! Usage: `cargo run --release -p cx-bench --bin serve_throughput`
//!   env `SERVE_N`        corpus rows          (default 2000)
//!   env `SERVE_CLIENTS`  concurrent clients   (default 8)
//!   env `SERVE_REPLAYS`  mix replays/client   (default 3)

use context_engine::{Engine, EngineConfig, Query};
use cx_datagen::{generate_corpus, synthetic_clusters, CorpusConfig};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::{AggFunc, AggSpec};
use cx_expr::{col, lit};
use cx_serve::{ServeConfig, Server};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A fresh engine over `n` shop rows (cold caches).
fn build_engine(n: usize) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let space = Arc::new(cx_datagen::build_space(&clusters, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));

    let names = generate_corpus(
        &cx_datagen::vocab::all_words(&clusters),
        CorpusConfig { size: n, zipf_s: 1.0, max_words: 2, seed: 11 },
    );
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..n as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..n).map(|i| 5.0 + (i % 200) as f64).collect()),
        ],
    )
    .expect("products table");
    engine.register_table("products", products).expect("register products");

    // A small label relation for the join leg of the mix.
    let labels: Vec<String> = cx_datagen::vocab::all_words(&clusters)
        .iter()
        .take(64)
        .cloned()
        .collect();
    let label_table = Table::from_columns(
        Schema::new(vec![Field::new("label", DataType::Utf8)]),
        vec![Column::from_strings(labels)],
    )
    .expect("labels table");
    engine.register_table("labels", label_table).expect("register labels");
    engine
}

/// The 20-query mix. Parameterized repeats mirror production traffic: the
/// same shapes at a handful of parameter points, over and over.
fn query_mix(engine: &Engine, targets: &[String]) -> Vec<Query> {
    let sem_filter = |target: &str, threshold| {
        engine
            .table("products")
            .expect("products")
            .semantic_filter("name", target, "fasttext-like", threshold)
            .aggregate(&[], vec![AggSpec::count_star("n")])
    };
    let lookup = |limit| {
        engine
            .table("products")
            .expect("products")
            .filter(col("price").gt(lit(100.0)))
            .sort(&[("price", false)])
            .limit(limit)
    };
    let join = |threshold| {
        engine
            .table("products")
            .expect("products")
            .filter(col("price").lt(lit(50.0)))
            .semantic_join(
                engine.table("labels").expect("labels"),
                "name",
                "label",
                "fasttext-like",
                threshold,
            )
            .aggregate(&[], vec![AggSpec::count_star("matches")])
    };
    let group = || {
        engine
            .table("products")
            .expect("products")
            .filter(col("price").gt(lit(150.0)))
            .semantic_group_by(
                "name",
                "fasttext-like",
                0.85,
                vec![AggSpec::new(AggFunc::Avg, "price", "avg_price")],
            )
    };
    vec![
        lookup(10),
        sem_filter(&targets[0], 0.8),
        join(0.9),
        sem_filter(&targets[1], 0.8),
        lookup(10), // repeat
        sem_filter(&targets[0], 0.8), // repeat
        group(),
        sem_filter(&targets[2], 0.75),
        join(0.9), // repeat
        lookup(25),
        sem_filter(&targets[1], 0.8), // repeat
        sem_filter(&targets[3], 0.8),
        group(), // repeat
        join(0.95),
        sem_filter(&targets[0], 0.75),
        lookup(10), // repeat
        sem_filter(&targets[2], 0.75), // repeat
        join(0.9), // repeat
        sem_filter(&targets[3], 0.8), // repeat
        group(), // repeat
    ]
}

struct Side {
    total_secs: f64,
    latencies: Vec<Duration>,
}

impl Side {
    fn qps(&self) -> f64 {
        self.latencies.len() as f64 / self.total_secs
    }

    fn percentile(&self, p: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    /// p50/p95/p99 in ms through a `cx_obs` log-linear histogram — the
    /// same quantile machinery the server uses, so the JSON schema is
    /// uniform across sides that do and don't own a `Server`.
    fn hist_quantiles_ms(&self) -> (f64, f64, f64) {
        let h = cx_obs::Histogram::new();
        for d in &self.latencies {
            h.record_duration(*d);
        }
        let s = h.snapshot();
        (s.p50 as f64 / 1e6, s.p95 as f64 / 1e6, s.p99 as f64 / 1e6)
    }
}

/// One full served storm: `clients` threads replaying the mix through a
/// fresh cold [`Server`]. Returns the side and the server itself (for
/// counters, histograms, and the Prometheus snapshot).
fn run_served(
    n: usize,
    clients: usize,
    replays: usize,
    targets: &[String],
    config: ServeConfig,
) -> (Side, Arc<Server>) {
    let engine = build_engine(n);
    let server = Server::new(engine, config);
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let server = server.clone();
                let barrier = barrier.clone();
                let targets = targets.to_vec();
                s.spawn(move || {
                    let session = server.session();
                    let mix = query_mix(server.engine(), &targets);
                    let mut local = Vec::with_capacity(replays * mix.len());
                    barrier.wait();
                    for _ in 0..replays {
                        for q in &mix {
                            let t = Instant::now();
                            let r = session.execute(q).expect("served execute");
                            std::hint::black_box(r.table.num_rows());
                            local.push(t.elapsed());
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    (Side { total_secs: start.elapsed().as_secs_f64(), latencies }, server)
}

/// Best of `runs` served storms (by QPS); identical treatment for the
/// plain, tracing-on, and profiling-on legs keeps the overhead
/// comparisons fair.
fn best_served(
    n: usize,
    clients: usize,
    replays: usize,
    targets: &[String],
    config: ServeConfig,
    runs: usize,
) -> (Side, Arc<Server>) {
    let mut best: Option<(Side, Arc<Server>)> = None;
    for _ in 0..runs.max(1) {
        let run = run_served(n, clients, replays, targets, config);
        if best.as_ref().is_none_or(|(b, _)| run.0.qps() > b.qps()) {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn main() {
    let n = env_usize("SERVE_N", 2000);
    let clients = env_usize("SERVE_CLIENTS", 8);
    let replays = env_usize("SERVE_REPLAYS", 3);

    // Target words that exist in the model's semantic space.
    let clusters = synthetic_clusters(50, 12, 0x5E21);
    let targets: Vec<String> = clusters.iter().take(4).map(|c| c.name.clone()).collect();

    println!("SERVING THROUGHPUT — {clients} concurrent clients vs serial loop");
    println!("corpus: {n} rows, 20-query mix, {replays} replays/client, cold caches both\n");

    // ---- baseline: serial Engine::execute over the identical sequence ----
    let serial = {
        let engine = build_engine(n);
        let mix = query_mix(&engine, &targets);
        let mut latencies = Vec::with_capacity(clients * replays * mix.len());
        let start = Instant::now();
        for _ in 0..clients * replays {
            for q in &mix {
                let t = Instant::now();
                let r = engine.execute(q).expect("serial execute");
                std::hint::black_box(r.table.num_rows());
                latencies.push(t.elapsed());
            }
        }
        Side { total_secs: start.elapsed().as_secs_f64(), latencies }
    };
    println!(
        "serial engine loop : {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  ({} queries in {:.2}s)",
        serial.qps(),
        serial.percentile(0.5),
        serial.percentile(0.95),
        serial.latencies.len(),
        serial.total_secs
    );

    // ---- served: `clients` threads through one shared Server, best of
    // five runs each for the tracing-off and tracing-on legs (one storm
    // lasts well under 100ms, so single-run QPS carries ~10% scheduler
    // noise — far more than the tracing overhead being measured) ----
    let (served, server) = best_served(n, clients, replays, &targets, ServeConfig::default(), 5);
    println!(
        "cx_serve ({clients} clients): {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  ({} queries in {:.2}s)",
        served.qps(),
        served.percentile(0.5),
        served.percentile(0.95),
        served.latencies.len(),
        served.total_secs
    );

    let (traced, traced_server) = best_served(
        n,
        clients,
        replays,
        &targets,
        ServeConfig { tracing: true, ..ServeConfig::default() },
        5,
    );
    let overhead_pct = 100.0 * (1.0 - traced.qps() / served.qps());
    println!(
        "  + tracing on      : {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  (overhead {:+.2}%, acceptance < 3%)",
        traced.qps(),
        traced.percentile(0.5),
        traced.percentile(0.95),
        overhead_pct,
    );

    let (profiled, _) = best_served(
        n,
        clients,
        replays,
        &targets,
        ServeConfig { profiling: true, ..ServeConfig::default() },
        5,
    );
    let profiling_overhead_pct = 100.0 * (1.0 - profiled.qps() / served.qps());
    println!(
        "  + profiling on    : {:>8.1} qps  p50 {:>7.2} ms  p95 {:>7.2} ms  (overhead {:+.2}%, acceptance < 5%)",
        profiled.qps(),
        profiled.percentile(0.5),
        profiled.percentile(0.95),
        profiling_overhead_pct,
    );

    let speedup = served.qps() / serial.qps();
    let plan = server.plan_cache_stats();
    let result_hits = server.stats().result_cache_hits;
    let batcher = server.batcher("fasttext-like").expect("batcher").stats();
    println!("\nspeedup: {speedup:.2}x qps (acceptance: >= 2x)");
    println!(
        "plan cache: {} hits / {} misses (hit rate {:.1}%), result memo: {} hits",
        plan.hits,
        plan.misses,
        100.0 * plan.hit_rate(),
        result_hits,
    );
    println!(
        "embed batcher: {} batches / {} texts, {} coalesced texts, max submitters {}",
        batcher.batches, batcher.batched_texts, batcher.texts_coalesced, batcher.max_batch_submitters
    );

    // Quantiles for the JSON all come through the cx_obs histograms: the
    // served legs from the server's own end-to-end latency histogram, the
    // serial leg through the same machinery over its latency vector.
    let served_q = served.hist_quantiles_ms();
    let traced_q = traced.hist_quantiles_ms();
    let profiled_q = profiled.hist_quantiles_ms();
    let serial_q = serial.hist_quantiles_ms();

    let simd = cx_vector::simd::KernelDispatch::active().report();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"simd\": \"{simd}\",\n  \"n\": {n},\n  \"clients\": {clients},\n  \"replays\": {replays},\n  \"queries_per_side\": {},\n  \"serve\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"serve_traced\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"tracing_overhead_pct\": {:.3},\n  \"serve_profiled\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"profiling_overhead_pct\": {:.3},\n  \"serial\": {{\"qps\": {:.2}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"total_secs\": {:.4}}},\n  \"qps_speedup\": {:.3},\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"result_memo_hits\": {}}},\n  \"embed_batcher\": {{\"batches\": {}, \"batched_texts\": {}, \"texts_coalesced\": {}, \"max_batch_submitters\": {}}}\n}}\n",
        served.latencies.len(),
        served.qps(),
        served_q.0,
        served_q.1,
        served_q.2,
        served.total_secs,
        traced.qps(),
        traced_q.0,
        traced_q.1,
        traced_q.2,
        traced.total_secs,
        overhead_pct,
        profiled.qps(),
        profiled_q.0,
        profiled_q.1,
        profiled_q.2,
        profiled.total_secs,
        profiling_overhead_pct,
        serial.qps(),
        serial_q.0,
        serial_q.1,
        serial_q.2,
        serial.total_secs,
        speedup,
        plan.hits,
        plan.misses,
        plan.hit_rate(),
        result_hits,
        batcher.batches,
        batcher.batched_texts,
        batcher.texts_coalesced,
        batcher.max_batch_submitters,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }

    // The tracing-on server's metrics surface, validated through the
    // in-tree exposition parser before it is published as an artifact.
    let prom = traced_server.prometheus();
    let exposition = cx_obs::promparse::parse(&prom).expect("prometheus snapshot parses");
    for required in ["cx_serve_queries_total", "cx_serve_query_latency_ns", "cx_obs_trace_ring_len"] {
        assert!(exposition.contains(required), "snapshot is missing {required}");
    }
    let prom_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_metrics.prom");
    match std::fs::write(prom_path, &prom) {
        Ok(()) => println!(
            "wrote BENCH_serve_metrics.prom ({} samples, parse-validated)",
            exposition.samples.len()
        ),
        Err(e) => eprintln!("could not write BENCH_serve_metrics.prom: {e}"),
    }
}

//! Experiment harness library.
//!
//! [`interpreted`] re-creates the *naive analyst pipeline* of Figure 4's
//! left-most bars — "the first tool at their disposal … Python: load the
//! data eagerly, iterate over two loops, perform a similarity check" — with
//! the mechanisms that make interpreted pipelines slow built in explicitly:
//! boxed values behind virtual dispatch, per-pair hash-map lookups (string
//! hashing in the inner loop), per-pair allocation, and per-pair norm
//! recomputation.
//!
//! [`measure`] provides honest sub-sampling: interpreted rungs cannot run a
//! 10k×10k join in benchmark time (that is the paper's point — thousands of
//! seconds), so they are measured on a subsample and extrapolated by the
//! exact pair-count ratio, clearly labeled in the output.

pub mod interpreted;
pub mod measure;

pub use interpreted::InterpretedModel;
pub use measure::{measure_or_extrapolate, Measured};

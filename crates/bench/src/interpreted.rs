//! The interpreted ("Python-style") execution model for Figure 4 baselines.

use cx_embed::EmbeddingModel;
use std::collections::HashMap;
use std::sync::Arc;

/// A boxed dynamically-typed value, as an interpreter would hold it.
pub trait PyValue: Send + Sync {
    /// Numeric view of the value.
    fn as_f64(&self) -> f64;
}

struct PyFloat(f64);

impl PyValue for PyFloat {
    fn as_f64(&self) -> f64 {
        self.0
    }
}

/// An embedding "model" as a naive script sees it: a dict from word to a
/// list of boxed floats (fastText's `model[word]` lookup, object headers
/// included).
pub struct InterpretedModel {
    table: HashMap<String, Vec<Box<dyn PyValue>>>,
}

impl InterpretedModel {
    /// Materializes boxed embeddings for `values` using `model`.
    pub fn load(model: &Arc<dyn EmbeddingModel>, values: &[String]) -> Self {
        let mut table: HashMap<String, Vec<Box<dyn PyValue>>> = HashMap::new();
        for v in values {
            table.entry(v.clone()).or_insert_with(|| {
                model
                    .embed(v)
                    .into_iter()
                    .map(|x| Box::new(PyFloat(x as f64)) as Box<dyn PyValue>)
                    .collect()
            });
        }
        InterpretedModel { table }
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The interpreted cosine: looks *both* words up in the dict (string
    /// hashing per pair, as an inner-loop `model[w]` does), walks boxed
    /// elements behind virtual dispatch, recomputes both norms every time,
    /// and allocates a temporary per pair.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = &self.table[a];
        let vb = &self.table[b];
        // Temporary product list, as `[x*y for x, y in zip(a, b)]` would.
        let products: Vec<f64> = va
            .iter()
            .zip(vb.iter())
            .map(|(x, y)| x.as_f64() * y.as_f64())
            .collect();
        let dot: f64 = products.iter().sum();
        let na: f64 = va.iter().map(|x| x.as_f64() * x.as_f64()).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|x| x.as_f64() * x.as_f64()).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// The naive nested-loop similarity join: every pair through
    /// [`InterpretedModel::cosine`]. Returns the match count.
    pub fn similarity_join(&self, left: &[String], right: &[String], threshold: f64) -> usize {
        let mut matches = 0usize;
        for l in left {
            for r in right {
                if self.cosine(l, r) >= threshold {
                    matches += 1;
                }
            }
        }
        matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::HashNGramModel;

    fn model() -> Arc<dyn EmbeddingModel> {
        Arc::new(HashNGramModel::with_params("m", 32, 1, 3, 4, 1 << 12))
    }

    #[test]
    fn interpreted_cosine_matches_compiled() {
        let m = model();
        let values: Vec<String> = vec!["alpha".into(), "beta".into()];
        let interp = InterpretedModel::load(&m, &values);
        let expected = cx_vector::kernels::cosine(&m.embed("alpha"), &m.embed("beta"));
        let got = interp.cosine("alpha", "beta");
        assert!((got - expected as f64).abs() < 1e-5, "{got} vs {expected}");
        // Self-similarity is 1.
        assert!((interp.cosine("alpha", "alpha") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_counts_threshold_matches() {
        let m = model();
        let values: Vec<String> = vec!["aaa".into(), "bbb".into()];
        let interp = InterpretedModel::load(&m, &values);
        let left = vec!["aaa".to_string(), "bbb".to_string()];
        // Identical strings always match at 0.99.
        let n = interp.similarity_join(&left, &left, 0.99);
        assert!(n >= 2);
        assert_eq!(interp.len(), 2);
    }
}

//! Timing with honest sub-sample extrapolation.

use std::time::{Duration, Instant};

/// The outcome of measuring one experiment rung.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Seconds for the (possibly sub-sampled) execution.
    pub measured_secs: f64,
    /// Seconds scaled to the full problem size.
    pub full_secs: f64,
    /// Whether the value was extrapolated from a subsample.
    pub extrapolated: bool,
}

impl Measured {
    /// Renders the value with an extrapolation marker.
    pub fn render(&self) -> String {
        if self.extrapolated {
            format!("{:>12.4}*", self.full_secs)
        } else {
            format!("{:>12.4} ", self.full_secs)
        }
    }

    /// log10 of full seconds (the paper's Figure 4 axis).
    pub fn log10(&self) -> f64 {
        self.full_secs.max(1e-12).log10()
    }
}

/// Times `f` once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Measures a quadratic-cost rung: runs `f(n_sub)` and scales by
/// `(n_full / n_sub)²` when `n_sub < n_full`.
pub fn measure_or_extrapolate(n_full: usize, n_sub: usize, f: impl FnOnce(usize)) -> Measured {
    let n_sub = n_sub.min(n_full);
    let ((), elapsed) = time_once(|| f(n_sub));
    let measured_secs = elapsed.as_secs_f64();
    let ratio = (n_full as f64 / n_sub as f64).powi(2);
    Measured {
        measured_secs,
        full_secs: measured_secs * ratio,
        extrapolated: n_sub < n_full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_extrapolation_at_full_size() {
        let m = measure_or_extrapolate(10, 10, |_| {});
        assert!(!m.extrapolated);
        assert_eq!(m.measured_secs, m.full_secs);
    }

    #[test]
    fn quadratic_scaling() {
        let m = measure_or_extrapolate(100, 10, |_| std::thread::sleep(Duration::from_millis(2)));
        assert!(m.extrapolated);
        let ratio = m.full_secs / m.measured_secs;
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn log_axis() {
        let m = Measured { measured_secs: 10.0, full_secs: 1000.0, extrapolated: false };
        assert!((m.log10() - 3.0).abs() < 1e-9);
    }
}

//! The embedding-model trait and invocation metering.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters a model keeps about its own use.
///
/// Model inference is one of the dominant costs of context-rich queries, so
/// the optimizer and the experiment harnesses need to *observe* how many
/// inferences a plan actually performed (e.g. to show that filter pushdown
/// reduces model invocations, the heart of Figure 4).
#[derive(Debug, Default)]
pub struct ModelStats {
    invocations: AtomicU64,
    chars_processed: AtomicU64,
}

impl ModelStats {
    /// Records one inference over `chars` characters of input.
    pub fn record(&self, chars: usize) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.chars_processed.fetch_add(chars as u64, Ordering::Relaxed);
    }

    /// Number of `embed` calls so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Total input characters processed.
    pub fn chars_processed(&self) -> u64 {
        self.chars_processed.load(Ordering::Relaxed)
    }

    /// Resets both counters (between experiment runs).
    pub fn reset(&self) {
        self.invocations.store(0, Ordering::Relaxed);
        self.chars_processed.store(0, Ordering::Relaxed);
    }
}

/// A representation model mapping text to a fixed-dimension latent vector.
///
/// Implementations must be deterministic (same input → same vector) and
/// thread-safe; semantic operators embed values from parallel workers.
pub trait EmbeddingModel: Send + Sync {
    /// Human-readable model name (used by the engine catalog / EXPLAIN).
    fn name(&self) -> &str;

    /// Output dimensionality.
    fn dim(&self) -> usize;

    /// Embeds `text` into `out` (must be `dim()` long). The result is
    /// L2-normalized unless documented otherwise.
    fn embed_into(&self, text: &str, out: &mut [f32]);

    /// Convenience allocation-per-call variant of [`embed_into`].
    ///
    /// [`embed_into`]: EmbeddingModel::embed_into
    fn embed(&self, text: &str) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.embed_into(text, &mut out);
        out
    }

    /// Embeds a batch into a flat row-major matrix (`texts.len() * dim()`).
    fn embed_batch(&self, texts: &[&str]) -> Vec<f32> {
        let dim = self.dim();
        let mut out = vec![0.0; texts.len() * dim];
        for (row, text) in out.chunks_exact_mut(dim).zip(texts) {
            self.embed_into(text, row);
        }
        out
    }

    /// Invocation counters.
    fn stats(&self) -> &ModelStats;

    /// Estimated cost in abstract ns of embedding one string of `chars`
    /// characters. Drives the optimizer's model-operator costing.
    fn cost_per_embedding(&self, chars: usize) -> f64 {
        // Default: linear in input length with a fixed overhead.
        200.0 + 30.0 * chars as f64
    }
}

/// Normalizes `v` to unit L2 norm in place (no-op on zero vectors).
pub fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstModel {
        stats: ModelStats,
    }

    impl EmbeddingModel for ConstModel {
        fn name(&self) -> &str {
            "const"
        }
        fn dim(&self) -> usize {
            4
        }
        fn embed_into(&self, text: &str, out: &mut [f32]) {
            self.stats.record(text.len());
            out.fill(0.5);
        }
        fn stats(&self) -> &ModelStats {
            &self.stats
        }
    }

    #[test]
    fn default_embed_and_batch() {
        let m = ConstModel { stats: ModelStats::default() };
        assert_eq!(m.embed("xy"), vec![0.5; 4]);
        let batch = m.embed_batch(&["a", "bc"]);
        assert_eq!(batch.len(), 8);
        assert_eq!(m.stats().invocations(), 3);
        assert_eq!(m.stats().chars_processed(), 2 + 1 + 2);
        m.stats().reset();
        assert_eq!(m.stats().invocations(), 0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-6);
        assert!((v[1] - 0.8).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cost_model_monotone_in_length() {
        let m = ConstModel { stats: ModelStats::default() };
        assert!(m.cost_per_embedding(10) < m.cost_per_embedding(100));
    }
}

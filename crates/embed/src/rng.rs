//! Small deterministic PRNG used to derive vectors from hashes.
//!
//! Model substrates must produce the *same* vector for the same string on
//! every run and every platform, so the experiments are reproducible. The
//! `rand` crate's generators do not promise cross-version value stability,
//! so the embedding substrate uses its own SplitMix64 — the standard
//! 64-bit mixing generator — for anything that feeds vector values.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[-1, 1)`.
    #[inline]
    pub fn next_f32_symmetric(&mut self) -> f32 {
        (self.next_f64() * 2.0 - 1.0) as f32
    }

    /// Standard normal sample (Box-Muller; consumes two uniforms).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is negligible for n << 2^64 (our uses).
        self.next_u64() % n
    }

    /// A unit-norm vector of `dim` gaussian components.
    pub fn unit_vector(&mut self, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| self.next_gaussian() as f32).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// FNV-1a 64-bit hash, used for n-gram bucketing.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_vector_is_normalized() {
        let v = SplitMix64::new(3).unit_vector(100);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fnv1a_known_values() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xCBF29CE484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"dog"), fnv1a(b"dog"));
    }

    #[test]
    fn next_range_bounds() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(rng.next_range(10) < 10);
        }
    }
}

//! Model registry: name → model resolution for the engine catalog.

use crate::model::EmbeddingModel;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe registry of named embedding models.
///
/// Queries reference models by name (`semantic_filter("name", "clothes",
/// "fasttext-like", 0.9)`); the engine resolves them here at planning time.
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<dyn EmbeddingModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `model` under its own name; replaces any previous model
    /// with that name and returns it.
    pub fn register(&self, model: Arc<dyn EmbeddingModel>) -> Option<Arc<dyn EmbeddingModel>> {
        self.models.write().insert(model.name().to_string(), model)
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn EmbeddingModel>> {
        self.models.read().get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_ngram::HashNGramModel;

    #[test]
    fn register_and_resolve() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let m = Arc::new(HashNGramModel::with_params("m1", 16, 1, 3, 4, 1024));
        assert!(reg.register(m).is_none());
        assert_eq!(reg.len(), 1);
        assert!(reg.get("m1").is_some());
        assert!(reg.get("m2").is_none());
        assert_eq!(reg.names(), vec!["m1"]);
    }

    #[test]
    fn replace_returns_previous() {
        let reg = ModelRegistry::new();
        reg.register(Arc::new(HashNGramModel::with_params("m", 8, 1, 3, 3, 64)));
        let prev = reg.register(Arc::new(HashNGramModel::with_params("m", 8, 2, 3, 3, 64)));
        assert!(prev.is_some());
        assert_eq!(reg.len(), 1);
    }
}

//! A ground-truth semantic space of synonym clusters.
//!
//! The paper's prototype uses fastText trained on Wikipedia, whose semantic
//! neighborhoods (Table I: dog ↔ canine ↔ puppy, clothes ↔ parka ↔ boots)
//! cannot be verified — only demonstrated. This substrate *constructs* the
//! latent space instead: synonym clusters are placed at near-orthogonal
//! centroids, members are noisy copies of their centroid, and hierarchical
//! (super-)clusters sit between their children. The geometry is
//! controllable, so tests can assert exact separation properties and the
//! Table I experiment can report precision against ground truth.

use crate::hash_ngram::HashNGramModel;
use crate::model::{normalize, EmbeddingModel, ModelStats};
use crate::rng::SplitMix64;
use std::collections::HashMap;
use std::sync::Arc;

/// Declarative description of one synonym cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Cluster name; also embedded as a vocabulary word sitting exactly at
    /// the cluster centroid (so `"dog"` matches the dog cluster best).
    pub name: String,
    /// Member words (synonyms, variants).
    pub members: Vec<String>,
    /// Optional parent cluster name for hierarchies
    /// (e.g. `shoes.parent = clothes`).
    pub parent: Option<String>,
}

impl ClusterSpec {
    /// A root cluster.
    pub fn new(name: impl Into<String>, members: &[&str]) -> Self {
        ClusterSpec {
            name: name.into(),
            members: members.iter().map(|s| s.to_string()).collect(),
            parent: None,
        }
    }

    /// A child cluster under `parent`.
    pub fn child_of(name: impl Into<String>, parent: impl Into<String>, members: &[&str]) -> Self {
        ClusterSpec {
            name: name.into(),
            members: members.iter().map(|s| s.to_string()).collect(),
            parent: Some(parent.into()),
        }
    }
}

/// Geometry knobs controlling cluster separation.
///
/// With unit-normalized vectors, `cos(member, centroid) ≈ 1/√(1+σ²)` and
/// `cos(child, parent) ≈ 1/√(1+β²)`; the defaults give ≈0.94 intra-cluster
/// and ≈0.87 child-to-parent similarity, with root clusters near-orthogonal
/// in high dimensions.
#[derive(Debug, Clone, Copy)]
pub struct ClusterGeometry {
    /// Noise scale for members around their cluster centroid (σ).
    pub member_sigma: f32,
    /// Offset scale of a child-cluster centroid from its parent (β).
    pub child_beta: f32,
}

impl Default for ClusterGeometry {
    fn default() -> Self {
        ClusterGeometry { member_sigma: 0.35, child_beta: 0.55 }
    }
}

/// The constructed space: word → unit vector, with cluster ground truth.
#[derive(Debug)]
pub struct SemanticSpace {
    dim: usize,
    vectors: HashMap<String, Arc<Vec<f32>>>,
    /// word → cluster name (cluster names map to themselves).
    cluster_of: HashMap<String, String>,
    /// cluster name → parent cluster name.
    parents: HashMap<String, String>,
    cluster_names: Vec<String>,
}

impl SemanticSpace {
    /// Builds the space from cluster specs.
    ///
    /// # Panics
    /// Panics if a `parent` references an unknown cluster or a word is
    /// assigned to two clusters.
    pub fn build(specs: &[ClusterSpec], dim: usize, seed: u64, geometry: ClusterGeometry) -> Self {
        let mut centroids: HashMap<String, Vec<f32>> = HashMap::new();
        let mut parents = HashMap::new();
        let mut cluster_names = Vec::with_capacity(specs.len());

        // Resolve centroids: roots first, then children (possibly nested).
        let mut remaining: Vec<&ClusterSpec> = specs.iter().collect();
        let mut pass = 0;
        while !remaining.is_empty() {
            pass += 1;
            assert!(pass <= specs.len() + 1, "cluster parent cycle or unknown parent");
            remaining.retain(|spec| {
                let centroid = match &spec.parent {
                    None => {
                        let mut rng = SplitMix64::new(seed ^ crate::rng::fnv1a(spec.name.as_bytes()));
                        rng.unit_vector(dim)
                    }
                    Some(parent) => match centroids.get(parent) {
                        None => return true, // parent not resolved yet
                        Some(pc) => {
                            let mut rng = SplitMix64::new(
                                seed ^ crate::rng::fnv1a(spec.name.as_bytes()).rotate_left(13),
                            );
                            let dir = rng.unit_vector(dim);
                            let mut c: Vec<f32> = pc
                                .iter()
                                .zip(&dir)
                                .map(|(p, d)| p + geometry.child_beta * d)
                                .collect();
                            normalize(&mut c);
                            c
                        }
                    },
                };
                if let Some(parent) = &spec.parent {
                    parents.insert(spec.name.clone(), parent.clone());
                }
                centroids.insert(spec.name.clone(), centroid);
                cluster_names.push(spec.name.clone());
                false
            });
        }

        let mut vectors: HashMap<String, Arc<Vec<f32>>> = HashMap::new();
        let mut cluster_of = HashMap::new();
        for spec in specs {
            let centroid = &centroids[&spec.name];
            // The cluster name itself sits at the centroid.
            vectors.insert(spec.name.clone(), Arc::new(centroid.clone()));
            assert!(
                cluster_of.insert(spec.name.clone(), spec.name.clone()).is_none(),
                "cluster name {} defined twice",
                spec.name
            );
            for member in &spec.members {
                if member == &spec.name {
                    continue;
                }
                let mut rng = SplitMix64::new(
                    seed ^ crate::rng::fnv1a(member.as_bytes()).rotate_left(29)
                        ^ crate::rng::fnv1a(spec.name.as_bytes()),
                );
                let dir = rng.unit_vector(dim);
                let mut v: Vec<f32> = centroid
                    .iter()
                    .zip(&dir)
                    .map(|(c, d)| c + geometry.member_sigma * d)
                    .collect();
                normalize(&mut v);
                vectors.insert(member.clone(), Arc::new(v));
                assert!(
                    cluster_of.insert(member.clone(), spec.name.clone()).is_none(),
                    "word {member} assigned to two clusters"
                );
            }
        }

        SemanticSpace { dim, vectors, cluster_of, parents, cluster_names }
    }

    /// Dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vector for `word` if it belongs to the space.
    pub fn vector(&self, word: &str) -> Option<Arc<Vec<f32>>> {
        self.vectors.get(word).cloned()
    }

    /// Ground-truth cluster of `word`, if any.
    pub fn cluster_of(&self, word: &str) -> Option<&str> {
        self.cluster_of.get(word).map(|s| s.as_str())
    }

    /// Parent of `cluster`, if any.
    pub fn parent_of(&self, cluster: &str) -> Option<&str> {
        self.parents.get(cluster).map(|s| s.as_str())
    }

    /// Whether `word` belongs to `cluster` or any of its descendants
    /// (i.e. should semantically match the cluster's category word).
    pub fn in_cluster_tree(&self, word: &str, cluster: &str) -> bool {
        let Some(mut c) = self.cluster_of(word) else {
            return false;
        };
        loop {
            if c == cluster {
                return true;
            }
            match self.parent_of(c) {
                Some(p) => c = p,
                None => return false,
            }
        }
    }

    /// All words in the space.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.vectors.keys().map(|s| s.as_str())
    }

    /// All cluster names, in definition order.
    pub fn cluster_names(&self) -> &[String] {
        &self.cluster_names
    }
}

/// The model used across experiments: words of the semantic space resolve
/// to their ground-truth vectors; out-of-vocabulary text falls back to the
/// hashed n-gram model (so the model is total, like fastText with subwords).
pub struct ClusteredTextModel {
    name: String,
    space: Arc<SemanticSpace>,
    fallback: HashNGramModel,
    stats: ModelStats,
}

impl ClusteredTextModel {
    /// Composes a space with a fallback n-gram model (same dimension).
    pub fn new(name: impl Into<String>, space: Arc<SemanticSpace>, seed: u64) -> Self {
        let dim = space.dim();
        ClusteredTextModel {
            name: name.into(),
            space,
            fallback: HashNGramModel::with_params("fallback", dim, seed, 3, 6, 1 << 21),
            stats: ModelStats::default(),
        }
    }

    /// The underlying ground-truth space.
    pub fn space(&self) -> &SemanticSpace {
        &self.space
    }
}

impl EmbeddingModel for ClusteredTextModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.space.dim()
    }

    fn embed_into(&self, text: &str, out: &mut [f32]) {
        self.stats.record(text.len());
        let lower = text.to_lowercase();
        if let Some(v) = self.space.vector(lower.trim()) {
            out.copy_from_slice(&v);
            return;
        }
        self.fallback.embed_into(&lower, out);
    }

    fn stats(&self) -> &ModelStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn space() -> SemanticSpace {
        SemanticSpace::build(
            &[
                ClusterSpec::new("dog", &["canine", "golden retriever", "puppy"]),
                ClusterSpec::new("cat", &["maine coon", "feline", "kitten"]),
                ClusterSpec::new("quartz", &["granite"]),
                ClusterSpec::child_of("shoes", "clothes", &["boots", "sneakers"]),
                ClusterSpec::child_of("jacket", "clothes", &["parka", "coat"]),
                ClusterSpec::new("clothes", &[]),
            ],
            100,
            7,
            ClusterGeometry::default(),
        )
    }

    #[test]
    fn members_are_close_to_their_centroid() {
        let s = space();
        let dog = s.vector("dog").unwrap();
        for m in ["canine", "golden retriever", "puppy"] {
            let v = s.vector(m).unwrap();
            let sim = cosine(&dog, &v);
            assert!(sim > 0.9, "{m} vs dog: {sim}");
        }
    }

    #[test]
    fn different_clusters_are_separated() {
        let s = space();
        let dog = s.vector("dog").unwrap();
        let cat = s.vector("cat").unwrap();
        let sim = cosine(&dog, &cat);
        assert!(sim < 0.5, "dog vs cat too close: {sim}");
        let quartz = s.vector("quartz").unwrap();
        assert!(cosine(&dog, &quartz) < 0.5);
    }

    #[test]
    fn hierarchy_sits_between() {
        let s = space();
        let clothes = s.vector("clothes").unwrap();
        let boots = s.vector("boots").unwrap();
        let parka = s.vector("parka").unwrap();
        let dog = s.vector("dog").unwrap();
        // Children of clothes are clearly closer to clothes than dog is.
        assert!(cosine(&clothes, &boots) > 0.7);
        assert!(cosine(&clothes, &parka) > 0.7);
        assert!(cosine(&clothes, &dog) < 0.5);
        // And closer to their own sub-cluster than to the parent.
        let shoes = s.vector("shoes").unwrap();
        assert!(cosine(&shoes, &boots) > cosine(&clothes, &boots));
    }

    #[test]
    fn cluster_tree_membership() {
        let s = space();
        assert!(s.in_cluster_tree("boots", "shoes"));
        assert!(s.in_cluster_tree("boots", "clothes"));
        assert!(!s.in_cluster_tree("boots", "dog"));
        assert!(!s.in_cluster_tree("unknown-word", "dog"));
        assert_eq!(s.parent_of("shoes"), Some("clothes"));
        assert_eq!(s.parent_of("dog"), None);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = space();
        let b = space();
        assert_eq!(*a.vector("puppy").unwrap(), *b.vector("puppy").unwrap());
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        SemanticSpace::build(
            &[ClusterSpec::child_of("a", "nope", &[])],
            10,
            1,
            ClusterGeometry::default(),
        );
    }

    #[test]
    fn clustered_model_falls_back_for_oov() {
        let s = Arc::new(space());
        let m = ClusteredTextModel::new("m", s.clone(), 99);
        // In-vocabulary goes through the space.
        let dog = m.embed("dog");
        assert_eq!(dog, **s.vector("dog").unwrap());
        // Case/whitespace-insensitive lookup.
        assert_eq!(m.embed(" Dog "), dog);
        // OOV is still a unit vector (n-gram fallback).
        let oov = m.embed("zzyzx");
        let norm: f32 = oov.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(m.stats().invocations(), 3);
    }
}

//! Memoizing embedding cache with prefetch and optional bounded capacity.
//!
//! Semantic operators repeatedly embed the same strings (join keys repeat,
//! group-by values repeat). The cache turns repeated inference into a hash
//! lookup and exposes hit/miss counters so experiments can attribute
//! speedups. Prefetching the working set before a join is exactly the
//! "optimize the amount of data access by prefetching" rung of Figure 4.
//!
//! By default the cache is unbounded (experiment runs want every embedding
//! resident). A long-lived server instead constructs it with
//! [`EmbeddingCache::with_capacity`]: past `capacity` entries, inserts
//! evict via the CLOCK (second-chance) policy — each hit sets a referenced
//! bit, eviction sweeps a ring of keys and reclaims the first entry whose
//! bit is clear — which approximates LRU at O(1) amortized cost without a
//! linked list in the hit path. Evictions are counted next to hits/misses.

use crate::model::EmbeddingModel;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One cached embedding plus its CLOCK referenced bit.
struct CacheEntry {
    vec: Arc<Vec<f32>>,
    /// Set on every hit; cleared (once) by the eviction sweep before the
    /// entry becomes a victim — the "second chance".
    referenced: AtomicBool,
}

/// A thread-safe memoization layer over an [`EmbeddingModel`].
pub struct EmbeddingCache {
    model: Arc<dyn EmbeddingModel>,
    entries: RwLock<HashMap<String, CacheEntry>>,
    /// CLOCK ring of insertion keys; only maintained when bounded.
    ring: Mutex<VecDeque<String>>,
    /// `None` = unbounded (the historical behavior).
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EmbeddingCache {
    /// Wraps `model` with an empty, unbounded cache.
    pub fn new(model: Arc<dyn EmbeddingModel>) -> Self {
        Self::build(model, None)
    }

    /// Wraps `model` with a cache bounded to at most `capacity` entries
    /// (CLOCK eviction past that). `capacity` is clamped to at least 1.
    pub fn with_capacity(model: Arc<dyn EmbeddingModel>, capacity: usize) -> Self {
        Self::build(model, Some(capacity.max(1)))
    }

    fn build(model: Arc<dyn EmbeddingModel>, capacity: Option<usize>) -> Self {
        EmbeddingCache {
            model,
            entries: RwLock::new(HashMap::new()),
            ring: Mutex::new(VecDeque::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn EmbeddingModel> {
        &self.model
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Whether `text` is currently cached (does not touch the referenced
    /// bit, so probing membership never perturbs eviction order).
    pub fn contains(&self, text: &str) -> bool {
        self.entries.read().contains_key(text)
    }

    /// The embedding for `text`, computing and caching on first use.
    pub fn get(&self, text: &str) -> Arc<Vec<f32>> {
        if let Some(e) = self.entries.read().get(text) {
            e.referenced.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return e.vec.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(self.model.embed(text));
        self.insert(text, v)
    }

    /// Inserts `vec` under `text`, evicting if bounded; returns the winner
    /// under racing inserts (first writer wins, later computes are dropped).
    fn insert(&self, text: &str, vec: Arc<Vec<f32>>) -> Arc<Vec<f32>> {
        let mut entries = self.entries.write();
        let len_before = entries.len();
        let out = entries
            .entry(text.to_string())
            .or_insert_with(|| CacheEntry { vec, referenced: AtomicBool::new(false) })
            .vec
            .clone();
        // A losing racer (entry already present) must NOT add a ring slot:
        // a duplicate slot would burn the entry's second chance on the
        // first sweep and evict it on the second, ahead of colder entries.
        let inserted = entries.len() > len_before;
        if !inserted {
            return out;
        }
        if let Some(cap) = self.capacity {
            let mut ring = self.ring.lock();
            ring.push_back(text.to_string());
            // Sweep the clock hand until the map is back under capacity.
            // Bounded: each lap clears referenced bits, so a second lap
            // always finds a victim; stale ring keys (evicted or cleared
            // entries) are dropped as they surface.
            while entries.len() > cap {
                let Some(key) = ring.pop_front() else { break };
                match entries.get(&key) {
                    None => continue, // stale ring slot
                    Some(e) if e.referenced.swap(false, Ordering::Relaxed) => {
                        ring.push_back(key); // second chance
                    }
                    Some(_) => {
                        entries.remove(&key);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        out
    }

    /// Warms the cache for every distinct string in `texts`.
    pub fn prefetch<S: AsRef<str>>(&self, texts: impl IntoIterator<Item = S>) {
        for t in texts {
            let t = t.as_ref();
            if !self.entries.read().contains_key(t) {
                let v = Arc::new(self.model.embed(t));
                self.insert(t, v);
            }
        }
    }

    /// Embeds a batch into a flat row-major matrix through the cache.
    pub fn get_batch(&self, texts: &[&str]) -> Vec<f32> {
        let mut out = vec![0.0f32; texts.len() * self.dim()];
        self.get_batch_into(texts, self.dim(), &mut out);
        out
    }

    /// Embeds a batch directly into a caller-provided row-major buffer:
    /// text `i` lands at `out[i * stride .. i * stride + dim]`. Padding
    /// lanes (`dim..stride`) are left untouched.
    ///
    /// This is the arena fill path for blocked similarity kernels: cache
    /// hits copy straight from the cached entry and misses embed into the
    /// destination row, so the batch never materializes a per-string
    /// `Arc<Vec<f32>>` on the way out.
    ///
    /// # Panics
    /// Panics if `stride < dim` or `out` is shorter than
    /// `texts.len() * stride`.
    pub fn get_batch_into<S: AsRef<str>>(&self, texts: &[S], stride: usize, out: &mut [f32]) {
        let dim = self.dim();
        assert!(stride >= dim, "stride {stride} shorter than dim {dim}");
        assert!(
            out.len() >= texts.len() * stride,
            "buffer of {} floats too short for {} rows at stride {stride}",
            out.len(),
            texts.len()
        );
        for (text, row) in texts.iter().zip(out.chunks_exact_mut(stride)) {
            let text = text.as_ref();
            // Hit fast path: copy straight out of the cached entry under
            // the read lock, no Arc traffic. Misses delegate to `get` so
            // counter and insertion semantics stay defined in one place.
            if let Some(e) = self.entries.read().get(text) {
                e.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                row[..dim].copy_from_slice(&e.vec);
                continue;
            }
            row[..dim].copy_from_slice(&self.get(text));
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far (always 0 when
    /// unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all entries and resets counters.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.ring.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_ngram::HashNGramModel;

    fn cache() -> EmbeddingCache {
        EmbeddingCache::new(Arc::new(HashNGramModel::new(1)))
    }

    fn bounded(cap: usize) -> EmbeddingCache {
        EmbeddingCache::with_capacity(Arc::new(HashNGramModel::new(1)), cap)
    }

    #[test]
    fn caches_and_counts() {
        let c = cache();
        let a = c.get("dog");
        let b = c.get("dog");
        assert_eq!(a, b);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
        assert!(c.contains("dog"));
        assert!(!c.contains("cat"));
        // The model was only invoked once.
        assert_eq!(c.model().stats().invocations(), 1);
    }

    #[test]
    fn prefetch_avoids_miss_counting() {
        let c = cache();
        c.prefetch(["a", "b", "a"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.misses(), 0);
        c.get("a");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn batch_through_cache() {
        let c = cache();
        let out = c.get_batch(&["x", "y", "x"]);
        assert_eq!(out.len(), 3 * c.dim());
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        // Rows 0 and 2 are identical.
        let dim = c.dim();
        assert_eq!(out[0..dim], out[2 * dim..3 * dim]);
    }

    #[test]
    fn batch_into_strided_buffer() {
        let c = cache();
        let dim = c.dim();
        let stride = dim + 3;
        let mut out = vec![f32::NAN; 3 * stride];
        c.get_batch_into(&["x", "y", "x"], stride, &mut out);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        for (i, t) in ["x", "y", "x"].iter().enumerate() {
            assert_eq!(out[i * stride..i * stride + dim], c.get(t)[..], "row {i}");
            // Padding lanes untouched.
            assert!(out[i * stride + dim..(i + 1) * stride].iter().all(|x| x.is_nan()));
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn batch_into_short_buffer_panics() {
        let c = cache();
        let mut out = vec![0.0f32; c.dim()];
        c.get_batch_into(&["a", "b"], c.dim(), &mut out);
    }

    #[test]
    fn clear_resets() {
        let c = cache();
        c.get("x");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn bounded_cache_holds_its_bound() {
        let c = bounded(4);
        assert_eq!(c.capacity(), Some(4));
        for i in 0..20 {
            c.get(&format!("t{i}"));
            assert!(c.len() <= 4, "len {} exceeded capacity", c.len());
        }
        assert_eq!(c.evictions(), 16);
        // Unbounded cache never evicts.
        let u = cache();
        for i in 0..20 {
            u.get(&format!("t{i}"));
        }
        assert_eq!(u.evictions(), 0);
        assert_eq!(u.len(), 20);
    }

    #[test]
    fn clock_gives_hit_entries_a_second_chance() {
        let c = bounded(2);
        c.get("a");
        c.get("b");
        // Touch "a": its referenced bit protects it from the next sweep.
        c.get("a");
        c.get("c");
        assert!(c.contains("a"), "recently used entry was evicted");
        assert!(!c.contains("b"), "cold entry should have been the victim");
        assert!(c.contains("c"));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn evicted_entries_recompute_on_next_get() {
        let c = bounded(1);
        c.get("a");
        c.get("b"); // evicts "a"
        assert_eq!(c.evictions(), 1);
        let before = c.model().stats().invocations();
        c.get("a"); // recompute
        assert_eq!(c.model().stats().invocations(), before + 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn bounded_batch_path_evicts_too() {
        let c = bounded(3);
        let texts: Vec<String> = (0..8).map(|i| format!("w{i}")).collect();
        let mut out = vec![0.0f32; texts.len() * c.dim()];
        c.get_batch_into(&texts, c.dim(), &mut out);
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 5);
        // clear() resets eviction accounting and the ring.
        c.clear();
        assert_eq!(c.evictions(), 0);
        assert!(c.is_empty());
    }
}

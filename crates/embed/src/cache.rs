//! Memoizing embedding cache with prefetch.
//!
//! Semantic operators repeatedly embed the same strings (join keys repeat,
//! group-by values repeat). The cache turns repeated inference into a hash
//! lookup and exposes hit/miss counters so experiments can attribute
//! speedups. Prefetching the working set before a join is exactly the
//! "optimize the amount of data access by prefetching" rung of Figure 4.

use crate::model::EmbeddingModel;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe memoization layer over an [`EmbeddingModel`].
pub struct EmbeddingCache {
    model: Arc<dyn EmbeddingModel>,
    entries: RwLock<HashMap<String, Arc<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmbeddingCache {
    /// Wraps `model` with an empty cache.
    pub fn new(model: Arc<dyn EmbeddingModel>) -> Self {
        EmbeddingCache {
            model,
            entries: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn EmbeddingModel> {
        &self.model
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The embedding for `text`, computing and caching on first use.
    pub fn get(&self, text: &str) -> Arc<Vec<f32>> {
        if let Some(v) = self.entries.read().get(text) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(self.model.embed(text));
        self.entries
            .write()
            .entry(text.to_string())
            .or_insert_with(|| v.clone())
            .clone()
    }

    /// Warms the cache for every distinct string in `texts`.
    pub fn prefetch<S: AsRef<str>>(&self, texts: impl IntoIterator<Item = S>) {
        for t in texts {
            let t = t.as_ref();
            if !self.entries.read().contains_key(t) {
                let v = Arc::new(self.model.embed(t));
                self.entries.write().entry(t.to_string()).or_insert(v);
            }
        }
    }

    /// Embeds a batch into a flat row-major matrix through the cache.
    pub fn get_batch(&self, texts: &[&str]) -> Vec<f32> {
        let dim = self.dim();
        let mut out = vec![0.0f32; texts.len() * dim];
        for (row, text) in out.chunks_exact_mut(dim).zip(texts) {
            row.copy_from_slice(&self.get(text));
        }
        out
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all entries and resets counters.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_ngram::HashNGramModel;

    fn cache() -> EmbeddingCache {
        EmbeddingCache::new(Arc::new(HashNGramModel::new(1)))
    }

    #[test]
    fn caches_and_counts() {
        let c = cache();
        let a = c.get("dog");
        let b = c.get("dog");
        assert_eq!(a, b);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
        // The model was only invoked once.
        assert_eq!(c.model().stats().invocations(), 1);
    }

    #[test]
    fn prefetch_avoids_miss_counting() {
        let c = cache();
        c.prefetch(["a", "b", "a"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.misses(), 0);
        c.get("a");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn batch_through_cache() {
        let c = cache();
        let out = c.get_batch(&["x", "y", "x"]);
        assert_eq!(out.len(), 3 * c.dim());
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        // Rows 0 and 2 are identical.
        let dim = c.dim();
        assert_eq!(out[0..dim], out[2 * dim..3 * dim]);
    }

    #[test]
    fn clear_resets() {
        let c = cache();
        c.get("x");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits() + c.misses(), 0);
    }
}

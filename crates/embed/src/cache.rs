//! Memoizing embedding cache with prefetch.
//!
//! Semantic operators repeatedly embed the same strings (join keys repeat,
//! group-by values repeat). The cache turns repeated inference into a hash
//! lookup and exposes hit/miss counters so experiments can attribute
//! speedups. Prefetching the working set before a join is exactly the
//! "optimize the amount of data access by prefetching" rung of Figure 4.

use crate::model::EmbeddingModel;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe memoization layer over an [`EmbeddingModel`].
pub struct EmbeddingCache {
    model: Arc<dyn EmbeddingModel>,
    entries: RwLock<HashMap<String, Arc<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EmbeddingCache {
    /// Wraps `model` with an empty cache.
    pub fn new(model: Arc<dyn EmbeddingModel>) -> Self {
        EmbeddingCache {
            model,
            entries: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn EmbeddingModel> {
        &self.model
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The embedding for `text`, computing and caching on first use.
    pub fn get(&self, text: &str) -> Arc<Vec<f32>> {
        if let Some(v) = self.entries.read().get(text) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(self.model.embed(text));
        self.entries
            .write()
            .entry(text.to_string())
            .or_insert_with(|| v.clone())
            .clone()
    }

    /// Warms the cache for every distinct string in `texts`.
    pub fn prefetch<S: AsRef<str>>(&self, texts: impl IntoIterator<Item = S>) {
        for t in texts {
            let t = t.as_ref();
            if !self.entries.read().contains_key(t) {
                let v = Arc::new(self.model.embed(t));
                self.entries.write().entry(t.to_string()).or_insert(v);
            }
        }
    }

    /// Embeds a batch into a flat row-major matrix through the cache.
    pub fn get_batch(&self, texts: &[&str]) -> Vec<f32> {
        let mut out = vec![0.0f32; texts.len() * self.dim()];
        self.get_batch_into(texts, self.dim(), &mut out);
        out
    }

    /// Embeds a batch directly into a caller-provided row-major buffer:
    /// text `i` lands at `out[i * stride .. i * stride + dim]`. Padding
    /// lanes (`dim..stride`) are left untouched.
    ///
    /// This is the arena fill path for blocked similarity kernels: cache
    /// hits copy straight from the cached entry and misses embed into the
    /// destination row, so the batch never materializes a per-string
    /// `Arc<Vec<f32>>` on the way out.
    ///
    /// # Panics
    /// Panics if `stride < dim` or `out` is shorter than
    /// `texts.len() * stride`.
    pub fn get_batch_into<S: AsRef<str>>(&self, texts: &[S], stride: usize, out: &mut [f32]) {
        let dim = self.dim();
        assert!(stride >= dim, "stride {stride} shorter than dim {dim}");
        assert!(
            out.len() >= texts.len() * stride,
            "buffer of {} floats too short for {} rows at stride {stride}",
            out.len(),
            texts.len()
        );
        for (text, row) in texts.iter().zip(out.chunks_exact_mut(stride)) {
            let text = text.as_ref();
            // Hit fast path: copy straight out of the cached entry under
            // the read lock, no Arc traffic. Misses delegate to `get` so
            // counter and insertion semantics stay defined in one place.
            if let Some(v) = self.entries.read().get(text) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                row[..dim].copy_from_slice(v);
                continue;
            }
            row[..dim].copy_from_slice(&self.get(text));
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all entries and resets counters.
    pub fn clear(&self) {
        self.entries.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_ngram::HashNGramModel;

    fn cache() -> EmbeddingCache {
        EmbeddingCache::new(Arc::new(HashNGramModel::new(1)))
    }

    #[test]
    fn caches_and_counts() {
        let c = cache();
        let a = c.get("dog");
        let b = c.get("dog");
        assert_eq!(a, b);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
        // The model was only invoked once.
        assert_eq!(c.model().stats().invocations(), 1);
    }

    #[test]
    fn prefetch_avoids_miss_counting() {
        let c = cache();
        c.prefetch(["a", "b", "a"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.misses(), 0);
        c.get("a");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn batch_through_cache() {
        let c = cache();
        let out = c.get_batch(&["x", "y", "x"]);
        assert_eq!(out.len(), 3 * c.dim());
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        // Rows 0 and 2 are identical.
        let dim = c.dim();
        assert_eq!(out[0..dim], out[2 * dim..3 * dim]);
    }

    #[test]
    fn batch_into_strided_buffer() {
        let c = cache();
        let dim = c.dim();
        let stride = dim + 3;
        let mut out = vec![f32::NAN; 3 * stride];
        c.get_batch_into(&["x", "y", "x"], stride, &mut out);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 1);
        for (i, t) in ["x", "y", "x"].iter().enumerate() {
            assert_eq!(out[i * stride..i * stride + dim], c.get(t)[..], "row {i}");
            // Padding lanes untouched.
            assert!(out[i * stride + dim..(i + 1) * stride].iter().all(|x| x.is_nan()));
        }
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn batch_into_short_buffer_panics() {
        let c = cache();
        let mut out = vec![0.0f32; c.dim()];
        c.get_batch_into(&["a", "b"], c.dim(), &mut out);
    }

    #[test]
    fn clear_resets() {
        let c = cache();
        c.get("x");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits() + c.misses(), 0);
    }
}

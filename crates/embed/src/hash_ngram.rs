//! A fastText-shaped embedding model over hashed character n-grams.
//!
//! fastText represents a word as the average of (a) a per-word vector from
//! a hash table of known words and (b) vectors for its character n-grams,
//! each hashed into one of `B` bucket rows of a big matrix. This module
//! reproduces exactly that inference structure — tokenize, n-gram, hash,
//! look up, average, normalize — with the bucket matrix *derived
//! deterministically from the hash* instead of trained weights.
//!
//! Why this is a faithful substitute for the paper's experiment: Figure 4
//! measures systems costs of the embedding lookup + similarity pipeline
//! (hash-table probes, data locality, kernel quality, parallelism), which
//! depend on the model's *shape*, not on the semantic quality of trained
//! weights. Semantic quality, where experiments need it, comes from
//! [`crate::SemanticSpace`] layered on top.

use crate::model::{normalize, EmbeddingModel, ModelStats};
use crate::rng::{fnv1a, SplitMix64};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Subword n-gram embedding model with hashed buckets.
pub struct HashNGramModel {
    name: String,
    dim: usize,
    /// Number of hash buckets for n-gram vectors (fastText default: 2M; we
    /// default far smaller since vectors are derived, not stored).
    buckets: u64,
    min_n: usize,
    max_n: usize,
    seed: u64,
    /// fastText's "hash table of known words": memoized full-word vectors.
    /// Figure 4's *prefetch* rung warms this table ahead of the join.
    word_table: RwLock<HashMap<String, Arc<Vec<f32>>>>,
    stats: ModelStats,
}

impl HashNGramModel {
    /// A model with the paper's defaults (dim 100, n-grams of 3..=6).
    pub fn new(seed: u64) -> Self {
        Self::with_params("hash-ngram", crate::DEFAULT_DIM, seed, 3, 6, 1 << 21)
    }

    /// Fully parameterized constructor.
    pub fn with_params(
        name: impl Into<String>,
        dim: usize,
        seed: u64,
        min_n: usize,
        max_n: usize,
        buckets: u64,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(min_n >= 1 && min_n <= max_n, "invalid n-gram range");
        HashNGramModel {
            name: name.into(),
            dim,
            buckets,
            min_n,
            max_n,
            seed,
            word_table: RwLock::new(HashMap::new()),
            stats: ModelStats::default(),
        }
    }

    /// Derives the bucket vector for `hash` into `out` (additive).
    fn add_bucket_vector(&self, hash: u64, out: &mut [f32]) {
        let bucket = hash % self.buckets;
        let mut rng = SplitMix64::new(bucket ^ self.seed.rotate_left(17));
        for slot in out.iter_mut() {
            *slot += rng.next_f32_symmetric();
        }
    }

    /// Computes the (unnormalized) word vector: word bucket + n-gram
    /// buckets, averaged.
    fn word_vector_uncached(&self, word: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut parts = 0usize;

        // Whole-word vector (the `<word>` token in fastText).
        let bounded = format!("<{word}>");
        self.add_bucket_vector(fnv1a(bounded.as_bytes()), &mut acc);
        parts += 1;

        // Character n-grams over the bounded form.
        let chars: Vec<char> = bounded.chars().collect();
        let mut gram = String::with_capacity(self.max_n * 4);
        for n in self.min_n..=self.max_n {
            if chars.len() < n {
                break;
            }
            for start in 0..=(chars.len() - n) {
                gram.clear();
                gram.extend(&chars[start..start + n]);
                self.add_bucket_vector(fnv1a(gram.as_bytes()), &mut acc);
                parts += 1;
            }
        }

        let inv = 1.0 / parts as f32;
        for x in &mut acc {
            *x *= inv;
        }
        acc
    }

    /// The memoized per-word vector.
    pub fn word_vector(&self, word: &str) -> Arc<Vec<f32>> {
        if let Some(v) = self.word_table.read().get(word) {
            return v.clone();
        }
        let v = Arc::new(self.word_vector_uncached(word));
        self.word_table
            .write()
            .entry(word.to_string())
            .or_insert_with(|| v.clone())
            .clone()
    }

    /// Warms the word table for `words` (Figure 4's prefetch optimization).
    pub fn prefetch<S: AsRef<str>>(&self, words: impl IntoIterator<Item = S>) {
        for w in words {
            let w = w.as_ref();
            for token in tokenize(w) {
                self.word_vector(token);
            }
        }
    }

    /// Number of memoized words.
    pub fn word_table_len(&self) -> usize {
        self.word_table.read().len()
    }
}

/// Splits text into lowercase word tokens on non-alphanumeric boundaries.
pub fn tokenize(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

impl EmbeddingModel for HashNGramModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_into(&self, text: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output buffer has wrong dimension");
        self.stats.record(text.len());
        out.fill(0.0);
        let lower = text.to_lowercase();
        let mut words = 0usize;
        for token in tokenize(&lower) {
            let v = self.word_vector(token);
            for (slot, x) in out.iter_mut().zip(v.iter()) {
                *slot += x;
            }
            words += 1;
        }
        if words > 1 {
            let inv = 1.0 / words as f32;
            for x in out.iter_mut() {
                *x *= inv;
            }
        }
        normalize(out);
    }

    fn stats(&self) -> &ModelStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb)
    }

    #[test]
    fn deterministic_and_normalized() {
        let m = HashNGramModel::new(1);
        let a = m.embed("golden retriever");
        let b = m.embed("golden retriever");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn case_insensitive() {
        let m = HashNGramModel::new(1);
        assert_eq!(m.embed("Dog"), m.embed("dog"));
    }

    #[test]
    fn shared_subwords_raise_similarity() {
        let m = HashNGramModel::new(1);
        // A misspelling shares n-grams with the original, so it scores well
        // above an unrelated word (fastText's subword robustness, Edizel et
        // al., cited by the paper). The structural model's similarity equals
        // the shared n-gram fraction, so a suffix variant (sharing a long
        // prefix) scores higher than a mid-word transposition.
        let base = m.embed("retriever");
        let sim_suffix = cosine(&base, &m.embed("retrievers"));
        let sim_typo = cosine(&base, &m.embed("retreiver"));
        let sim_unrelated = cosine(&base, &m.embed("quartz"));
        assert!(sim_unrelated < 0.1, "unrelated too similar: {sim_unrelated}");
        assert!(
            sim_typo > sim_unrelated + 0.15,
            "typo {sim_typo} vs unrelated {sim_unrelated}"
        );
        assert!(sim_suffix > 0.5, "suffix variant too low: {sim_suffix}");
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let m1 = HashNGramModel::new(1);
        let m2 = HashNGramModel::new(2);
        assert_ne!(m1.embed("dog"), m2.embed("dog"));
    }

    #[test]
    fn word_table_memoizes_and_prefetch_warms() {
        let m = HashNGramModel::new(1);
        assert_eq!(m.word_table_len(), 0);
        m.prefetch(["dog park", "cat"]);
        assert_eq!(m.word_table_len(), 3);
        // Embedding after prefetch should not add entries.
        m.embed("dog cat");
        assert_eq!(m.word_table_len(), 3);
    }

    #[test]
    fn multiword_is_average_of_words() {
        // Multi-word text averages the *unnormalized* per-word vectors
        // (fastText semantics), then normalizes once.
        let m = HashNGramModel::new(1);
        let dog = m.word_vector("dog");
        let park = m.word_vector("park");
        let both = m.embed("dog park");
        let mut avg: Vec<f32> = dog.iter().zip(park.iter()).map(|(a, b)| (a + b) / 2.0).collect();
        normalize(&mut avg);
        assert!(cosine(&both, &avg) > 0.999);
    }

    #[test]
    fn stats_metering() {
        let m = HashNGramModel::new(1);
        m.embed("abc");
        m.embed("de");
        assert_eq!(m.stats().invocations(), 2);
        assert_eq!(m.stats().chars_processed(), 5);
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let m = HashNGramModel::new(1);
        let v = m.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }
}

//! Vector quantization: IEEE-754 half precision and symmetric int8.
//!
//! Section VI of the paper calls out "inference using hardware-enabled
//! half-precision (or lower) floating point formats" as an optimization the
//! engine must consider. This module provides the two standard reduced
//! formats and their dot-product kernels; the kernel ladder bench measures
//! their speed/recall trade-off.

use serde::{Deserialize, Serialize};

/// Converts an `f32` to IEEE-754 binary16 bits (round-to-nearest-even),
/// handling subnormals, infinities and NaN.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let nan_bit = if frac != 0 { 0x200 } else { 0 };
        return sign | 0x7C00 | nan_bit | ((frac >> 13) as u16 & 0x3FF);
    }

    // Re-bias: f32 bias 127 -> f16 bias 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }
    if new_exp <= 0 {
        // Subnormal or zero.
        if new_exp < -10 {
            return sign; // Rounds to zero.
        }
        let mantissa = frac | 0x80_0000; // implicit leading 1
        let shift = 14 - new_exp;
        let half = 1u32 << (shift - 1);
        let rounded = (mantissa + half) >> shift;
        return sign | rounded as u16;
    }

    // Normal case with round-to-nearest-even on the dropped 13 bits.
    let mut out = ((new_exp as u32) << 10) | (frac >> 13);
    let round_bits = frac & 0x1FFF;
    if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) == 1) {
        out += 1; // may carry into exponent, which is correct behaviour
    }
    sign | out as u16
}

/// Converts IEEE-754 binary16 bits to `f32`.
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x3FF) as u32;

    let out = if exp == 0 {
        if frac == 0 {
            sign // +-0
        } else {
            // Subnormal: normalize.
            let mut e = 0i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            let f = f & 0x3FF;
            sign | (((e + 113) as u32) << 23) | (f << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (frac << 13) // Inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// A vector quantized to one of the reduced formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantizedVector {
    /// IEEE binary16 payloads.
    F16(Vec<u16>),
    /// Symmetric int8: `value ≈ data[i] * scale`.
    Int8 { data: Vec<i8>, scale: f32 },
}

impl QuantizedVector {
    /// Quantizes to f16.
    pub fn to_f16(v: &[f32]) -> Self {
        QuantizedVector::F16(v.iter().map(|&x| f32_to_f16(x)).collect())
    }

    /// Quantizes to symmetric int8 (scale = max|x| / 127).
    pub fn to_int8(v: &[f32]) -> Self {
        let max_abs = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let data = v
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedVector::Int8 { data, scale }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        match self {
            QuantizedVector::F16(d) => d.len(),
            QuantizedVector::Int8 { data, .. } => data.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of storage per vector (the compression the paper's data
    /// movement discussion cares about).
    pub fn storage_bytes(&self) -> usize {
        match self {
            QuantizedVector::F16(d) => d.len() * 2,
            QuantizedVector::Int8 { data, .. } => data.len() + 4,
        }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        match self {
            QuantizedVector::F16(d) => d.iter().map(|&b| f16_to_f32(b)).collect(),
            QuantizedVector::Int8 { data, scale } => {
                data.iter().map(|&x| x as f32 * scale).collect()
            }
        }
    }

    /// Approximate dot product with an f32 query.
    pub fn dot(&self, query: &[f32]) -> f32 {
        match self {
            QuantizedVector::F16(d) => d
                .iter()
                .zip(query)
                .map(|(&b, &q)| f16_to_f32(b) * q)
                .sum(),
            QuantizedVector::Int8 { data, scale } => {
                let s: f32 = data.iter().zip(query).map(|(&x, &q)| x as f32 * q).sum();
                s * scale
            }
        }
    }
}

/// Dot product between two int8 vectors with scales (integer accumulate,
/// the kernel shape TPU-class hardware runs natively).
pub fn dot_int8(a: &[i8], a_scale: f32, b: &[i8], b_scale: f32) -> f32 {
    let acc: i32 = a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum();
    acc as f32 * a_scale * b_scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
    }

    #[test]
    fn f16_roundtrip_relative_error() {
        let mut x = 1e-3f32;
        while x < 1e3 {
            let rt = f16_to_f32(f32_to_f16(x));
            let rel = ((rt - x) / x).abs();
            assert!(rel < 1e-3, "x={x} rt={rt} rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        // Tiny values flush toward zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
    }

    #[test]
    fn f16_subnormals() {
        let smallest_normal = 6.104e-5f32;
        let sub = 3.1e-5f32;
        let rt = f16_to_f32(f32_to_f16(sub));
        assert!((rt - sub).abs() / sub < 0.01, "sub {sub} -> {rt}");
        let rt = f16_to_f32(f32_to_f16(smallest_normal));
        assert!((rt - smallest_normal).abs() / smallest_normal < 1e-3);
    }

    #[test]
    fn int8_quantization_error_bounded() {
        let v: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.37).sin() * 0.2).collect();
        let q = QuantizedVector::to_int8(&v);
        let back = q.dequantize();
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() <= 0.2 / 127.0 + 1e-6, "{a} vs {b}");
        }
        assert_eq!(q.storage_bytes(), 104);
    }

    #[test]
    fn quantized_dot_close_to_exact() {
        let a: Vec<f32> = (0..100).map(|i| ((i * 7 % 13) as f32 - 6.0) / 20.0).collect();
        let b: Vec<f32> = (0..100).map(|i| ((i * 5 % 11) as f32 - 5.0) / 20.0).collect();
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let f16 = QuantizedVector::to_f16(&a).dot(&b);
        let i8v = QuantizedVector::to_int8(&a).dot(&b);
        assert!((exact - f16).abs() < 0.01, "f16 {f16} vs {exact}");
        assert!((exact - i8v).abs() < 0.02, "int8 {i8v} vs {exact}");
    }

    #[test]
    fn int8_pair_dot() {
        let a: Vec<f32> = vec![0.1, -0.2, 0.3];
        let b: Vec<f32> = vec![0.3, 0.2, -0.1];
        let (qa, qb) = (QuantizedVector::to_int8(&a), QuantizedVector::to_int8(&b));
        let (QuantizedVector::Int8 { data: da, scale: sa }, QuantizedVector::Int8 { data: db, scale: sb }) =
            (&qa, &qb)
        else {
            panic!("expected int8");
        };
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let approx = dot_int8(da, *sa, db, *sb);
        assert!((exact - approx).abs() < 0.01, "{approx} vs {exact}");
    }

    #[test]
    fn zero_vector_int8() {
        let q = QuantizedVector::to_int8(&[0.0, 0.0]);
        assert_eq!(q.dequantize(), vec![0.0, 0.0]);
        assert_eq!(q.dot(&[1.0, 1.0]), 0.0);
    }
}

//! Vector quantization: IEEE-754 half precision and symmetric int8.
//!
//! Section VI of the paper calls out "inference using hardware-enabled
//! half-precision (or lower) floating point formats" as an optimization the
//! engine must consider. This module provides the two standard reduced
//! formats, their pairwise dot-product kernels, and the *panel* kernels
//! ([`dot_block_f16`], [`dot_block_int8`]) that score one f32/int8 query
//! against a row-major block of quantized rows — the quantized siblings of
//! `cx_vector::block::dot_block`, consumed by `cx_vector`'s
//! `QuantizedArena`. The kernel ladder bench measures the speed/recall
//! trade-off per tier.

use serde::{Deserialize, Serialize};

/// A storage/scoring precision tier for embedding panels.
///
/// The optimizer picks a tier per semantic scan: lower tiers shrink
/// bytes-per-row (f32 4 B → f16 2 B → int8 1 B) and speed up panel scoring
/// at a bounded score error, trading recall tolerance for data movement —
/// the paper's Section VI half-precision opportunity made a plan property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QuantTier {
    /// Full precision: exact blocked kernels.
    #[default]
    F32,
    /// IEEE binary16 rows; absolute score error ≲ 1e-3 on unit vectors.
    F16,
    /// Symmetric per-row int8; absolute score error ≲ 1.2e-2 on unit
    /// vectors.
    Int8,
}

impl QuantTier {
    /// Short name for EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            QuantTier::F32 => "f32",
            QuantTier::F16 => "f16",
            QuantTier::Int8 => "int8",
        }
    }

    /// Storage bytes per vector element at this tier.
    pub fn bytes_per_value(&self) -> usize {
        match self {
            QuantTier::F32 => 4,
            QuantTier::F16 => 2,
            QuantTier::Int8 => 1,
        }
    }

    /// Stable wire discriminant (for scan signatures and other
    /// dependency-light encodings). Inverse of [`Self::from_discriminant`].
    pub fn discriminant(&self) -> u8 {
        match self {
            QuantTier::F32 => 0,
            QuantTier::F16 => 1,
            QuantTier::Int8 => 2,
        }
    }

    /// The tier encoded by [`Self::discriminant`], if valid.
    pub fn from_discriminant(d: u8) -> Option<QuantTier> {
        match d {
            0 => Some(QuantTier::F32),
            1 => Some(QuantTier::F16),
            2 => Some(QuantTier::Int8),
            _ => None,
        }
    }
}

// The IEEE binary16 converters live in `cx_simd` now (the kernel layer
// needs them for scalar tails); re-exported here so quantization callers
// keep their historical import path. The *write* path stays software on
// every ISA, so stored panels are host-independent.
pub use cx_simd::{f16_to_f32, f32_to_f16};

/// A vector quantized to one of the reduced formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantizedVector {
    /// IEEE binary16 payloads.
    F16(Vec<u16>),
    /// Symmetric int8: `value ≈ data[i] * scale`.
    Int8 { data: Vec<i8>, scale: f32 },
}

impl QuantizedVector {
    /// Quantizes to f16.
    pub fn to_f16(v: &[f32]) -> Self {
        QuantizedVector::F16(v.iter().map(|&x| f32_to_f16(x)).collect())
    }

    /// Quantizes to symmetric int8 (scale = max|x| / 127).
    pub fn to_int8(v: &[f32]) -> Self {
        let max_abs = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let data = v
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedVector::Int8 { data, scale }
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        match self {
            QuantizedVector::F16(d) => d.len(),
            QuantizedVector::Int8 { data, .. } => data.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of storage per vector (the compression the paper's data
    /// movement discussion cares about).
    pub fn storage_bytes(&self) -> usize {
        match self {
            QuantizedVector::F16(d) => d.len() * 2,
            QuantizedVector::Int8 { data, .. } => data.len() + 4,
        }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        match self {
            QuantizedVector::F16(d) => d.iter().map(|&b| f16_to_f32(b)).collect(),
            QuantizedVector::Int8 { data, scale } => {
                data.iter().map(|&x| x as f32 * scale).collect()
            }
        }
    }

    /// Approximate dot product with an f32 query.
    ///
    /// The f16 arm runs the dispatched `cx_simd::dot_f16` kernel, so it is
    /// bit-identical to the panel kernel [`dot_block_f16`] on every ISA.
    /// The int8 arm keeps its f32-accumulating 4-wide ladder: it scores
    /// *unquantized* queries (no query-side scale), a shape outside the
    /// exact-i32 kernel family.
    pub fn dot(&self, query: &[f32]) -> f32 {
        match self {
            QuantizedVector::F16(d) => dot_f16(d, query),
            QuantizedVector::Int8 { data, scale } => {
                let mut acc = [0.0f32; 4];
                let chunks = data.len().min(query.len()) / 4;
                for c in 0..chunks {
                    let base = c * 4;
                    for i in 0..4 {
                        acc[i] += data[base + i] as f32 * query[base + i];
                    }
                }
                let mut s = reduce4(&acc);
                for i in chunks * 4..data.len().min(query.len()) {
                    s += data[i] as f32 * query[i];
                }
                s * scale
            }
        }
    }
}

#[inline]
fn reduce4(acc: &[f32; 4]) -> f32 {
    // The panel kernels reuse this exact reduction tree per row.
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Dot of f16 row bits against an f32 query on the active SIMD path
/// (hardware `vcvtph2ps` when F16C is active, software otherwise — same
/// bits either way).
#[inline]
fn dot_f16(row: &[u16], query: &[f32]) -> f32 {
    cx_simd::dot_f16(row, query)
}

/// Dot product between two int8 vectors with scales (integer accumulate,
/// the kernel shape TPU-class hardware runs natively). The accumulator is
/// exact (i32) — `cx_simd::dot_int8_i32` dispatches to `vpdpbusd` /
/// `vpmaddwd` / NEON / scalar, all bit-identical because integer addition
/// is associative.
pub fn dot_int8(a: &[i8], a_scale: f32, b: &[i8], b_scale: f32) -> f32 {
    cx_simd::dot_int8_i32(a, b) as f32 * a_scale * b_scale
}

/// Quantizes an f32 query to symmetric int8 (scale = max|x| / 127), the
/// query-side companion of [`QuantizedVector::to_int8`] for the int8 panel
/// kernel.
pub fn quantize_query_int8(q: &[f32]) -> (Vec<i8>, f32) {
    match QuantizedVector::to_int8(q) {
        QuantizedVector::Int8 { data, scale } => (data, scale),
        _ => unreachable!("to_int8 returns Int8"),
    }
}

/// Scores `query` against `out.len()` f16 rows stored row-major in `block`
/// at `stride` half-floats per row: `out[r] = dot(query, dequant(row_r))`.
///
/// Forwards to `cx_simd::dot_block_f16`: F16C hardware conversion when
/// active, software otherwise — bit-identical either way, and always
/// bit-identical to the pairwise [`QuantizedVector::dot`] f16 arm.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for
/// `out.len()` rows.
#[inline]
pub fn dot_block_f16(query: &[f32], block: &[u16], stride: usize, out: &mut [f32]) {
    cx_simd::dot_block_f16(query, block, stride, out);
}

/// Integer panel kernel: accumulates `query · row_r` in exact i32 for
/// `out.len()` int8 rows stored row-major at `stride` bytes per row.
/// Callers apply scales afterwards (`acc as f32 * q_scale * row_scale`,
/// the order of [`dot_int8`]).
///
/// Forwards to `cx_simd::dot_block_int8` (`vpdpbusd` / `vpmaddwd` / NEON /
/// scalar); integer addition is exact, so results are bit-identical to
/// pairwise [`dot_int8`] accumulation on every path.
///
/// # Panics
/// Panics if `stride < query.len()` or `block` is too short for
/// `out.len()` rows.
#[inline]
pub fn dot_block_int8(query: &[i8], block: &[i8], stride: usize, out: &mut [i32]) {
    cx_simd::dot_block_int8(query, block, stride, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
    }

    #[test]
    fn f16_roundtrip_relative_error() {
        let mut x = 1e-3f32;
        while x < 1e3 {
            let rt = f16_to_f32(f32_to_f16(x));
            let rel = ((rt - x) / x).abs();
            assert!(rel < 1e-3, "x={x} rt={rt} rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn f16_specials() {
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(1e6)), f32::INFINITY);
        // Tiny values flush toward zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
    }

    #[test]
    fn f16_subnormals() {
        let smallest_normal = 6.104e-5f32;
        let sub = 3.1e-5f32;
        let rt = f16_to_f32(f32_to_f16(sub));
        assert!((rt - sub).abs() / sub < 0.01, "sub {sub} -> {rt}");
        let rt = f16_to_f32(f32_to_f16(smallest_normal));
        assert!((rt - smallest_normal).abs() / smallest_normal < 1e-3);
    }

    #[test]
    fn int8_quantization_error_bounded() {
        let v: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.37).sin() * 0.2).collect();
        let q = QuantizedVector::to_int8(&v);
        let back = q.dequantize();
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() <= 0.2 / 127.0 + 1e-6, "{a} vs {b}");
        }
        assert_eq!(q.storage_bytes(), 104);
    }

    #[test]
    fn quantized_dot_close_to_exact() {
        let a: Vec<f32> = (0..100).map(|i| ((i * 7 % 13) as f32 - 6.0) / 20.0).collect();
        let b: Vec<f32> = (0..100).map(|i| ((i * 5 % 11) as f32 - 5.0) / 20.0).collect();
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let f16 = QuantizedVector::to_f16(&a).dot(&b);
        let i8v = QuantizedVector::to_int8(&a).dot(&b);
        assert!((exact - f16).abs() < 0.01, "f16 {f16} vs {exact}");
        assert!((exact - i8v).abs() < 0.02, "int8 {i8v} vs {exact}");
    }

    #[test]
    fn int8_pair_dot() {
        let a: Vec<f32> = vec![0.1, -0.2, 0.3];
        let b: Vec<f32> = vec![0.3, 0.2, -0.1];
        let (qa, qb) = (QuantizedVector::to_int8(&a), QuantizedVector::to_int8(&b));
        let (QuantizedVector::Int8 { data: da, scale: sa }, QuantizedVector::Int8 { data: db, scale: sb }) =
            (&qa, &qb)
        else {
            panic!("expected int8");
        };
        let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let approx = dot_int8(da, *sa, db, *sb);
        assert!((exact - approx).abs() < 0.01, "{approx} vs {exact}");
    }

    #[test]
    fn zero_vector_int8() {
        let q = QuantizedVector::to_int8(&[0.0, 0.0]);
        assert_eq!(q.dequantize(), vec![0.0, 0.0]);
        assert_eq!(q.dot(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn tier_labels_and_bytes() {
        assert_eq!(QuantTier::default(), QuantTier::F32);
        assert_eq!(QuantTier::F16.label(), "f16");
        assert_eq!(
            [QuantTier::F32, QuantTier::F16, QuantTier::Int8].map(|t| t.bytes_per_value()),
            [4, 2, 1]
        );
    }

    /// Deterministic pseudo-random f32 in roughly [-0.6, 0.6].
    fn val(i: usize, salt: u64) -> f32 {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
        ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    }

    #[test]
    fn f16_panel_bit_identical_to_pairwise_dot() {
        // Odd dims exercise the 4-wide tail; stride > dim exercises padding.
        for (dim, stride) in [(1, 8), (5, 8), (8, 8), (13, 16), (100, 104)] {
            let q: Vec<f32> = (0..dim).map(|i| val(i, 1)).collect();
            let rows = 9;
            let mut block = vec![0u16; rows * stride];
            let mut pairwise = Vec::new();
            for r in 0..rows {
                let v: Vec<f32> = (0..dim).map(|i| val(r * dim + i, 2)).collect();
                let QuantizedVector::F16(bits) = QuantizedVector::to_f16(&v) else {
                    unreachable!()
                };
                block[r * stride..r * stride + dim].copy_from_slice(&bits);
                pairwise.push(QuantizedVector::F16(bits).dot(&q));
            }
            let mut out = vec![f32::NAN; rows];
            dot_block_f16(&q, &block, stride, &mut out);
            for r in 0..rows {
                assert_eq!(out[r].to_bits(), pairwise[r].to_bits(), "dim {dim} row {r}");
            }
        }
    }

    #[test]
    fn int8_panel_accumulators_are_exact() {
        for (dim, stride) in [(1, 8), (7, 8), (8, 8), (29, 32), (100, 104)] {
            let qf: Vec<f32> = (0..dim).map(|i| val(i, 3)).collect();
            let (q, q_scale) = quantize_query_int8(&qf);
            // Cross the 4-row micro-kernel boundary.
            let rows = 11;
            let mut block = vec![0i8; rows * stride];
            let mut scales = vec![0.0f32; rows];
            for r in 0..rows {
                let v: Vec<f32> = (0..dim).map(|i| val(r * dim + i, 4)).collect();
                let QuantizedVector::Int8 { data, scale } = QuantizedVector::to_int8(&v) else {
                    unreachable!()
                };
                block[r * stride..r * stride + dim].copy_from_slice(&data);
                scales[r] = scale;
            }
            let mut acc = vec![0i32; rows];
            dot_block_int8(&q, &block, stride, &mut acc);
            for r in 0..rows {
                let row = &block[r * stride..r * stride + dim];
                let exact: i32 = q.iter().zip(row).map(|(&x, &y)| x as i32 * y as i32).sum();
                assert_eq!(acc[r], exact, "dim {dim} row {r}");
                // Scaled score matches the pairwise kernel to the bit.
                let scaled = acc[r] as f32 * q_scale * scales[r];
                assert_eq!(
                    scaled.to_bits(),
                    dot_int8(&q, q_scale, row, scales[r]).to_bits(),
                    "dim {dim} row {r} scaled"
                );
            }
        }
    }

    #[test]
    fn panel_kernels_handle_empty_and_short_inputs() {
        let mut out_f = [0.0f32; 0];
        dot_block_f16(&[1.0, 2.0], &[], 2, &mut out_f);
        let mut out_i = [0i32; 0];
        dot_block_int8(&[1, 2], &[], 2, &mut out_i);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_f16_block_panics() {
        let mut out = [0.0f32; 3];
        dot_block_f16(&[1.0; 4], &[0u16; 8], 4, &mut out);
    }

    #[test]
    fn quantize_query_roundtrip() {
        let q = [0.5f32, -1.0, 0.25];
        let (data, scale) = quantize_query_int8(&q);
        assert_eq!(data.len(), 3);
        for (x, &d) in q.iter().zip(&data) {
            assert!((x - d as f32 * scale).abs() <= scale * 0.5 + 1e-6);
        }
    }
}

//! Representation-model substrate for context-rich processing.
//!
//! The paper's semantic operators (Section IV) assume a *representation
//! model* — fastText in its prototype — that maps strings into a latent
//! vector space where cosine similarity captures context (synonyms,
//! alternative spellings, related categories).
//!
//! This crate provides that substrate, fully self-contained:
//!
//! * [`EmbeddingModel`] — the model trait every semantic operator consumes,
//!   with built-in invocation metering (model inference is a first-class
//!   cost for the optimizer),
//! * [`HashNGramModel`] — a fastText-shaped model: subword character
//!   n-grams hashed into bucket vectors and averaged. Deterministic and
//!   training-free, it reproduces fastText's *inference cost profile*
//!   (tokenize → n-gram hash → table lookups → average) which is what the
//!   paper's Figure 4 experiment measures,
//! * [`SemanticSpace`] — a ground-truth synonym-cluster space with
//!   controllable geometry, standing in for "trained on Wikipedia": unlike
//!   a real model it makes semantic-match quality *verifiable*,
//! * [`ClusteredTextModel`] — the composition used across experiments:
//!   cluster vocabulary resolves through the semantic space, everything
//!   else falls back to hashed n-grams,
//! * [`EmbeddingCache`] — memoizing cache with prefetch (the "physical
//!   optimization detail the user may not be aware of" from Figure 4),
//! * [`quant`] — f16/int8 vector quantization (Section VI's half-precision
//!   inference opportunity),
//! * [`ModelRegistry`] — name → model resolution for the engine catalog.

pub mod cache;
pub mod hash_ngram;
pub mod model;
pub mod quant;
pub mod registry;
pub mod rng;
pub mod semantic_space;

pub use cache::EmbeddingCache;
pub use hash_ngram::HashNGramModel;
pub use model::{EmbeddingModel, ModelStats};
pub use quant::{
    dot_block_f16, dot_block_int8, dot_int8, f16_to_f32, f32_to_f16, quantize_query_int8,
    QuantTier, QuantizedVector,
};
pub use registry::ModelRegistry;
pub use semantic_space::{ClusterGeometry, ClusterSpec, ClusteredTextModel, SemanticSpace};

/// Default embedding dimensionality, matching the paper's Figure 4 setup
/// ("fastText word embeddings with a dimension of 100").
pub const DEFAULT_DIM: usize = 100;

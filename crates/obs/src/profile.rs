//! Opt-in per-query resource profiling.
//!
//! The same discipline as tracing: profiling is enabled process-wide by
//! holding a [`ProfilerSession`] (a server holds one for its lifetime
//! when configured with profiling on), and every instrumentation site —
//! the allocator hook, [`add_pairs`], [`add_tiles`] — costs exactly one
//! relaxed atomic load when no session is alive. Counters are plain
//! thread-locals, so a profile window ([`ProfileSpan`]) measures the
//! thread it was started on: work an MQO leader performs on behalf of
//! its followers is attributed to the *leader's* profile, mirroring how
//! shared spans credit wall time.
//!
//! Allocation counting needs the embedding binary to opt in by
//! installing [`CountingAlloc`] as its `#[global_allocator]`; without it
//! the `alloc_count` / `alloc_bytes` fields stay zero. CPU time is the
//! per-thread CPU clock (`CLOCK_THREAD_CPUTIME_ID`), zero on platforms
//! without one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Count of live [`ProfilerSession`]s; profiling is on while nonzero.
static PROFILER_SESSIONS: AtomicU32 = AtomicU32::new(0);

/// Whether any [`ProfilerSession`] is alive. One relaxed load.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILER_SESSIONS.load(Ordering::Relaxed) != 0
}

/// RAII enablement of profiling: the process profiles while at least one
/// session is alive. Servers configured with `profiling: true` hold one.
#[derive(Debug)]
pub struct ProfilerSession(());

impl ProfilerSession {
    /// Enables profiling for the lifetime of the returned guard.
    pub fn new() -> Self {
        PROFILER_SESSIONS.fetch_add(1, Ordering::Relaxed);
        ProfilerSession(())
    }
}

impl Default for ProfilerSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ProfilerSession {
    fn drop(&mut self) {
        PROFILER_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static PAIRS: Cell<u64> = const { Cell::new(0) };
    static TILES: Cell<u64> = const { Cell::new(0) };
}

/// Credits `n` scored vector pairs to the current thread's profile
/// window. Called by similarity kernels; one relaxed load when off.
#[inline]
pub fn add_pairs(n: u64) {
    if profiling_enabled() {
        let _ = PAIRS.try_with(|c| c.set(c.get().wrapping_add(n)));
    }
}

/// Credits `n` panel tiles (distinct panel rows / blocks touched) to the
/// current thread's profile window. One relaxed load when off.
#[inline]
pub fn add_tiles(n: u64) {
    if profiling_enabled() {
        let _ = TILES.try_with(|c| c.set(c.get().wrapping_add(n)));
    }
}

/// Credits one heap allocation of `bytes` to the current thread's
/// profile window. Called from [`CountingAlloc`]; safe in allocator
/// context (const-initialized thread-locals, `try_with` tolerates TLS
/// teardown).
#[inline]
pub fn record_alloc(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// A `#[global_allocator]` wrapper that counts allocations into the
/// profiler's thread-local counters while a [`ProfilerSession`] is
/// alive, and is a pure pass-through (one relaxed load) otherwise.
///
/// ```
/// // In a binary that wants allocation profiles:
/// #[global_allocator]
/// static ALLOC: cx_obs::CountingAlloc = cx_obs::CountingAlloc::system();
/// # fn main() {}
/// ```
#[derive(Debug, Default)]
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// A counting wrapper around the system allocator.
    pub const fn system() -> Self {
        CountingAlloc { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Wraps an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        CountingAlloc { inner }
    }
}

// SAFETY: pure delegation to the inner allocator; the counting side
// effect touches only const-initialized thread-local `Cell`s and never
// allocates or unwinds.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if !p.is_null() && profiling_enabled() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if !p.is_null() && profiling_enabled() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if !p.is_null() && profiling_enabled() {
            record_alloc(new_size);
        }
        p
    }
}

/// The resources one query consumed, captured by a [`ProfileSpan`] on
/// the serving thread. All fields are deltas over the span's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// CPU time of the serving thread (ns, per-thread CPU clock; 0 on
    /// platforms without one).
    pub cpu_ns: u64,
    /// Heap allocations observed (0 unless the binary installs
    /// [`CountingAlloc`]).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Vector pairs scored by similarity kernels on this thread.
    pub pairs_scored: u64,
    /// Panel tiles (distinct panel rows / blocks) touched.
    pub panel_tiles: u64,
    /// Bytes charged against the query's memory budget.
    pub bytes_charged: u64,
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu {:.3} ms · allocs {} ({} B) · pairs {} · tiles {} · charged {} B",
            self.cpu_ns as f64 / 1e6,
            self.alloc_count,
            self.alloc_bytes,
            self.pairs_scored,
            self.panel_tiles,
            self.bytes_charged,
        )
    }
}

/// An open profiling window on the current thread: snapshots the
/// thread-local counters and CPU clock at start, and [`finish`] returns
/// the deltas as a [`QueryProfile`]. Must be finished on the thread that
/// started it.
///
/// [`finish`]: ProfileSpan::finish
#[derive(Debug)]
pub struct ProfileSpan {
    cpu0: u64,
    alloc_count0: u64,
    alloc_bytes0: u64,
    pairs0: u64,
    tiles0: u64,
}

impl ProfileSpan {
    /// Opens a window at the current thread's counter values.
    pub fn start() -> Self {
        ProfileSpan {
            cpu0: thread_cpu_ns(),
            alloc_count0: ALLOC_COUNT.with(Cell::get),
            alloc_bytes0: ALLOC_BYTES.with(Cell::get),
            pairs0: PAIRS.with(Cell::get),
            tiles0: TILES.with(Cell::get),
        }
    }

    /// Closes the window, charging `bytes_charged` (from the query's
    /// memory budget) into the resulting profile.
    pub fn finish(self, bytes_charged: u64) -> QueryProfile {
        QueryProfile {
            cpu_ns: thread_cpu_ns().saturating_sub(self.cpu0),
            alloc_count: ALLOC_COUNT.with(Cell::get).wrapping_sub(self.alloc_count0),
            alloc_bytes: ALLOC_BYTES.with(Cell::get).wrapping_sub(self.alloc_bytes0),
            pairs_scored: PAIRS.with(Cell::get).wrapping_sub(self.pairs0),
            panel_tiles: TILES.with(Cell::get).wrapping_sub(self.tiles0),
            bytes_charged,
        }
    }
}

/// CPU time consumed by the calling thread, in nanoseconds.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime writes a timespec through a valid pointer.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
    } else {
        0
    }
}

/// CPU time consumed by the calling thread, in nanoseconds (always 0 on
/// platforms without a per-thread CPU clock binding).
#[cfg(not(any(target_os = "linux", target_os = "android")))]
pub fn thread_cpu_ns() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_only_move_while_enabled() {
        // No session: kernel hooks are inert.
        if profiling_enabled() {
            return; // a parallel test holds a session; skip
        }
        let span = ProfileSpan::start();
        add_pairs(100);
        add_tiles(10);
        let p = span.finish(0);
        assert_eq!(p.pairs_scored, 0);
        assert_eq!(p.panel_tiles, 0);

        let _session = ProfilerSession::new();
        let span = ProfileSpan::start();
        add_pairs(100);
        add_pairs(23);
        add_tiles(10);
        let p = span.finish(4096);
        assert_eq!(p.pairs_scored, 123);
        assert_eq!(p.panel_tiles, 10);
        assert_eq!(p.bytes_charged, 4096);
    }

    #[test]
    fn cpu_clock_advances_under_load() {
        let span = ProfileSpan::start();
        // Busy work the optimizer can't remove.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1); // keep `acc` observable
        let p = span.finish(0);
        if cfg!(any(target_os = "linux", target_os = "android")) {
            assert!(p.cpu_ns > 0, "thread CPU clock did not advance");
        }
    }

    #[test]
    fn windows_are_deltas() {
        let _session = ProfilerSession::new();
        add_pairs(50);
        let span = ProfileSpan::start();
        add_pairs(7);
        let p = span.finish(0);
        assert_eq!(p.pairs_scored, 7, "baseline pairs must not leak into the window");
    }

    #[test]
    fn display_is_compact() {
        let p = QueryProfile {
            cpu_ns: 1_500_000,
            alloc_count: 3,
            alloc_bytes: 1024,
            pairs_scored: 99,
            panel_tiles: 4,
            bytes_charged: 2048,
        };
        let s = p.to_string();
        assert!(s.contains("cpu 1.500 ms"), "{s}");
        assert!(s.contains("pairs 99"), "{s}");
        assert!(s.contains("charged 2048 B"), "{s}");
    }
}

//! Log-linear (HDR-style) latency histograms.
//!
//! Values (nanoseconds, but any `u64` works) are bucketed exactly below 64
//! and into 32 linear sub-buckets per power of two above, giving a
//! worst-case relative quantile error of `1/32 ≈ 3.2%` while covering the
//! full `u64` range in 1920 fixed buckets (~15 KiB per histogram).
//! Recording is one `fetch_add` per bucket plus exact count/sum/min/max
//! maintenance — safe from any thread through `&self`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Values below this are bucketed exactly.
const EXACT: u64 = (SUBS as u64) * 2;
/// Highest index: shift 58, sub-bucket 63 → 58*32 + 63 = 1919.
const BUCKETS: usize = 60 * SUBS;

fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let bits = 64 - v.leading_zeros(); // >= SUB_BITS + 2
    let shift = bits - (SUB_BITS + 1);
    (shift as usize) * SUBS + (v >> shift) as usize
}

/// The smallest value mapping to bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    if idx < EXACT as usize {
        return idx as u64;
    }
    let shift = idx / SUBS - 1;
    ((idx % SUBS + SUBS) as u64) << shift
}

/// A representative value for bucket `idx` (midpoint of its range).
fn bucket_mid(idx: usize) -> u64 {
    if idx < EXACT as usize {
        return idx as u64;
    }
    let shift = idx / SUBS - 1;
    bucket_low(idx) + (1u64 << shift) / 2
}

/// A concurrent log-linear histogram with exact count/sum/min/max.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.quantile(0.50))
            .field("p95", &self.quantile(0.95))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, within ~3.2% relative error
    /// (and clamped to the exact observed min/max). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == n {
            return self.max();
        }
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(idx).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram into this one: bucket counts, count and
    /// sum add; min/max tighten. Both sides may be recorded into
    /// concurrently — the merge is then a point-in-time-ish snapshot with
    /// the same per-bucket consistency as `snapshot()`.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The non-empty buckets as `(low, mid, count)` rows, lowest value
    /// first. This is the raw shape behind the `cx.histograms` system
    /// table; `low` is the smallest value mapping to the bucket and `mid`
    /// its representative midpoint.
    pub fn nonzero_buckets(&self) -> Vec<BucketCount> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| BucketCount {
                    low: bucket_low(idx),
                    mid: bucket_mid(idx),
                    count,
                })
            })
            .collect()
    }

    /// A point-in-time summary of this histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// One non-empty histogram bucket: the value range it covers and how
/// many observations landed in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value mapping to this bucket.
    pub low: u64,
    /// Representative midpoint of the bucket's range.
    pub mid: u64,
    /// Number of observations in the bucket.
    pub count: u64,
}

/// A point-in-time histogram summary (all values in the recorded unit,
/// nanoseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl HistSnapshot {
    /// Millisecond helper for reports: `p(0.5)`, `p(0.95)`, `p(0.99)`.
    pub fn ms(ns: u64) -> f64 {
        ns as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0usize;
        let mut v = 1u64;
        loop {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at {v}");
            assert!(idx < BUCKETS);
            assert!(bucket_low(idx) <= v, "low({idx}) <= {v}");
            prev = idx;
            match v.checked_mul(3) {
                Some(tripled) => v = tripled / 2 + 1,
                None => break,
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_index(0), 0);
        // Exact region is exact.
        for v in 0..EXACT {
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
    }

    #[test]
    fn exact_stats() {
        let h = Histogram::new();
        for v in [5u64, 10, 15, 1_000_000, 42] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_000_072);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    /// Quantile accuracy vs exact sorted samples (the satellite-task
    /// regression test): deterministic pseudo-random samples spanning five
    /// orders of magnitude must agree with the exact empirical quantile
    /// within 5% relative error.
    #[test]
    fn quantile_accuracy_vs_exact() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            // splitmix64
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            // Log-uniform-ish over [1µs, 100ms] in ns.
            let r = next() % 100_000;
            let v = 1_000 + r * r / 100; // up to ~1e8 ns
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let approx = h.quantile(q) as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "q={q}: approx {approx} vs exact {exact} (rel {rel:.4})");
        }
        // p100 is the exact max.
        assert_eq!(h.quantile(1.0), *samples.last().unwrap());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10u64, 100, 1_000] {
            a.record(v);
        }
        for v in [5u64, 50_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 51_115);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 50_000);
        // Quantiles track the merged population.
        let q = a.quantile(1.0);
        assert_eq!(q, 50_000);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn nonzero_buckets_cover_all_observations() {
        let h = Histogram::new();
        for v in [3u64, 3, 700, 1_000_000] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 4);
        assert!(buckets.windows(2).all(|w| w[0].low < w[1].low), "sorted by low");
        assert_eq!(buckets[0].low, 3);
        assert_eq!(buckets[0].count, 2);
        for b in &buckets {
            assert!(b.low <= b.mid);
        }
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.max(), 3999);
    }
}

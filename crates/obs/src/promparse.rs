//! In-tree Prometheus text exposition format parser.
//!
//! Used as a lint: benches and CI render a [`crate::MetricsSnapshot`] to
//! text, parse it back with [`parse`], and fail loudly on any syntax the
//! real Prometheus scraper would reject — metric/label name charset,
//! label escaping, numeric values, `# TYPE` consistency.

use std::collections::HashSet;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in appearance order (including `quantile`).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// All sample lines, in order.
    pub samples: Vec<Sample>,
    /// Families declared with `# TYPE`.
    pub types: Vec<(String, String)>,
}

impl Exposition {
    /// The value of the sample matching `name` and all of `labels`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels.iter().all(|(k, v)| {
                        s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                    })
            })
            .map(|s| s.value)
    }

    /// All distinct sample names.
    pub fn names(&self) -> HashSet<&str> {
        self.samples.iter().map(|s| s.name.as_str()).collect()
    }

    /// True when a sample named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Parses a label body like `a="x",b="y\"z"` (no surrounding braces).
fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: invalid label name `{name}`"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut escaped = false;
        let mut closed = false;
        let mut consumed = 0;
        for (i, c) in rest.char_indices() {
            if escaped {
                match c {
                    'n' => value.push('\n'),
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    other => {
                        return Err(format!(
                            "line {line_no}: bad escape `\\{other}` in label value"
                        ))
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                consumed = i + 1;
                closed = true;
                break;
            } else {
                value.push(c);
            }
        }
        if !closed {
            return Err(format!("line {line_no}: unterminated label value"));
        }
        labels.push((name.to_string(), value));
        rest = rest[consumed..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: expected ',' between labels"));
        }
    }
    Ok(labels)
}

/// Parses (and thereby lints) a Prometheus text exposition document.
/// Returns every sample, or a description of the first syntax error with
/// its line number.
pub fn parse(text: &str) -> Result<Exposition, String> {
    const TYPES: &[&str] = &["counter", "gauge", "summary", "histogram", "untyped"];
    let mut exp = Exposition::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or_default();
                let kind = parts.next().unwrap_or_default().trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid TYPE metric name `{name}`"));
                }
                if !TYPES.contains(&kind) {
                    return Err(format!("line {line_no}: unknown metric type `{kind}`"));
                }
                if exp.types.iter().any(|(n, _)| n == name) {
                    return Err(format!("line {line_no}: duplicate TYPE for `{name}`"));
                }
                exp.types.push((name.to_string(), kind.to_string()));
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or_default();
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid HELP metric name `{name}`"));
                }
            }
            // Other comments are ignored.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, after) = match line.find(['{', ' ']) {
            Some(pos) => (&line[..pos], &line[pos..]),
            None => {
                return Err(format!("line {line_no}: sample without value: `{line}`"));
            }
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {line_no}: invalid metric name `{name_part}`"));
        }
        let (labels, value_part) = if let Some(rest) = after.strip_prefix('{') {
            let close = rest
                .rfind('}')
                .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
            (parse_labels(&rest[..close], line_no)?, rest[close + 1..].trim())
        } else {
            (Vec::new(), after.trim())
        };
        let mut fields = value_part.split_whitespace();
        let value_str = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: missing sample value"))?;
        let value = parse_value(value_str)
            .ok_or_else(|| format!("line {line_no}: invalid value `{value_str}`"))?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {line_no}: invalid timestamp `{ts}`"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {line_no}: trailing garbage after sample"));
        }
        exp.samples.push(Sample { name: name_part.to_string(), labels, value });
    }
    // Lint: every declared TYPE must have at least one sample in its
    // family (name, or name_sum/name_count/name{quantile} for summaries).
    for (name, _) in &exp.types {
        let has = exp.samples.iter().any(|s| {
            s.name == *name
                || s.name == format!("{name}_sum")
                || s.name == format!("{name}_count")
                || s.name == format!("{name}_bucket")
        });
        if !has {
            return Err(format!("TYPE `{name}` declared but no samples present"));
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let text = "\
# HELP up Whether the target is up
# TYPE up gauge
up 1
# TYPE reqs counter
reqs{method=\"get\",code=\"200\"} 1027 1395066363000
reqs{method=\"post\"} 3
";
        let exp = parse(text).unwrap();
        assert_eq!(exp.samples.len(), 3);
        assert_eq!(exp.value("up", &[]), Some(1.0));
        assert_eq!(exp.value("reqs", &[("method", "get"), ("code", "200")]), Some(1027.0));
        assert_eq!(exp.types.len(), 2);
    }

    #[test]
    fn parses_special_values_and_escapes() {
        let text = "g{k=\"a\\\"b\\\\c\\nd\"} +Inf\nn NaN\nm -Inf\n";
        let exp = parse(text).unwrap();
        assert_eq!(exp.samples[0].labels[0].1, "a\"b\\c\nd");
        assert!(exp.samples[0].value.is_infinite());
        assert!(exp.samples[1].value.is_nan());
    }

    #[test]
    fn rejects_bad_names_values_and_types() {
        assert!(parse("9bad 1\n").is_err());
        assert!(parse("ok{9bad=\"v\"} 1\n").is_err());
        assert!(parse("ok 1.2.3\n").is_err());
        assert!(parse("ok{k=\"v} 1\n").is_err());
        assert!(parse("# TYPE m flavor\nm 1\n").is_err());
        assert!(parse("# TYPE m counter\n").is_err(), "TYPE without samples");
        assert!(parse("ok\n").is_err(), "sample without value");
    }

    #[test]
    fn summary_family_satisfies_type_lint() {
        let text = "\
# TYPE lat summary
lat{quantile=\"0.5\"} 10
lat_sum 100
lat_count 7
";
        let exp = parse(text).unwrap();
        assert_eq!(exp.value("lat_count", &[]), Some(7.0));
        assert_eq!(exp.value("lat", &[("quantile", "0.5")]), Some(10.0));
    }
}

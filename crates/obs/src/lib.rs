//! Low-overhead observability for the context-analytics engine.
//!
//! Three layers, deliberately dependency-free so every crate in the
//! workspace can instrument itself without cycles:
//!
//! 1. **Query traces** ([`QueryTrace`], [`span`], [`install_trace`]) — a
//!    per-query record of timestamped, nested spans plus point-in-time
//!    events (retries, injected faults). The span API follows the same
//!    discipline as `cx_serve`'s `FaultPlan`: when tracing is disabled the
//!    cost of an instrumentation site is **one relaxed atomic load** — no
//!    allocation, no lock, no clock read. That property is regression
//!    tested through [`span_allocations`].
//! 2. **Histograms** ([`Histogram`]) — HDR-style log-linear latency
//!    histograms with bounded relative error (32 sub-buckets per power of
//!    two, ≤ ~3.2% quantile error) and exact count/sum/min/max, safe to
//!    record into concurrently from any thread.
//! 3. **Export** ([`MetricsSnapshot`]) — a flat registry of named metrics
//!    (counters, gauges, histogram summaries) serializable to the
//!    Prometheus text exposition format and to JSON, with an in-tree
//!    exposition-format parser ([`promparse`]) used as a lint by benches
//!    and CI.
//!
//! Tracing is enabled process-wide by holding a [`TracingSession`] (a
//! server holds one for its lifetime when configured with tracing on);
//! instrumentation sites attach to whatever trace is ambiently installed
//! on the current thread via [`install_trace`].

#![deny(missing_docs)]

pub mod export;
pub mod hist;
pub mod profile;
pub mod promparse;
pub mod ring;
pub mod systab;
pub mod trace;

pub use export::{Metric, MetricValue, MetricsSnapshot};
pub use hist::{BucketCount, HistSnapshot, Histogram};
pub use profile::{
    add_pairs, add_tiles, profiling_enabled, CountingAlloc, ProfileSpan, ProfilerSession,
    QueryProfile,
};
pub use ring::TraceRing;
pub use systab::{is_reserved_name, IncidentLog, IncidentRecord};
pub use trace::{
    event, install_trace, span, span_allocations, span_with, tracing_enabled, EventRecord,
    QueryTrace, Span, SpanRecord, TraceScope, TracingSession,
};

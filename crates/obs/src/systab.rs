//! The reserved `cx` system schema: naming rules shared by every layer,
//! plus the bounded incident log the watchdog appends to (queryable as
//! `cx.incidents`).
//!
//! This module is deliberately storage-agnostic: the actual
//! `SystemTableSource` trait (which materializes `Chunk`s) lives in
//! `cx_storage::systab`, and the providers that snapshot live server
//! state live in `cx_serve`. What belongs here is what *every* crate
//! needs to agree on — which names are reserved — and the pure-data
//! incident machinery.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The reserved schema name: user tables may not start with `cx.`.
pub const RESERVED_SCHEMA: &str = "cx";

/// True when `name` lives in the reserved system schema (`cx` itself or
/// any `cx.`-prefixed name).
pub fn is_reserved_name(name: &str) -> bool {
    name == RESERVED_SCHEMA || name.starts_with("cx.")
}

/// One structured watchdog event.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentRecord {
    /// Monotonically increasing sequence number (never reused, survives
    /// eviction from the bounded log).
    pub seq: u64,
    /// Capture time in milliseconds, from the server's injectable
    /// timestamp source (wall clock in production, a fake in tests).
    pub at_ms: u64,
    /// Incident kind: `p99_regression`, `queue_saturation`, `shed_burst`
    /// or `fault_burst`.
    pub kind: &'static str,
    /// Human-readable detail (which histogram, which counter, deltas).
    pub detail: String,
    /// The observed value that tripped the detector.
    pub value: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
}

/// A bounded FIFO of [`IncidentRecord`]s with a total-appended counter.
/// The watchdog appends; `cx.incidents` snapshots. Capacity 0 disables
/// retention (appends still count).
#[derive(Debug)]
pub struct IncidentLog {
    capacity: usize,
    total: AtomicU64,
    log: Mutex<VecDeque<IncidentRecord>>,
}

impl IncidentLog {
    /// A log retaining up to `capacity` incidents.
    pub fn new(capacity: usize) -> Self {
        IncidentLog { capacity, total: AtomicU64::new(0), log: Mutex::new(VecDeque::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<IncidentRecord>> {
        self.log.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an incident, evicting the oldest beyond capacity. Returns
    /// the assigned sequence number.
    pub fn append(
        &self,
        kind: &'static str,
        detail: String,
        value: f64,
        threshold: f64,
        at_ms: u64,
    ) -> u64 {
        let seq = self.total.fetch_add(1, Ordering::Relaxed);
        if self.capacity > 0 {
            let mut log = self.lock();
            if log.len() == self.capacity {
                log.pop_front();
            }
            log.push_back(IncidentRecord { seq, at_ms, kind, detail, value, threshold });
        }
        seq
    }

    /// The retained incidents, oldest first.
    pub fn recent(&self) -> Vec<IncidentRecord> {
        self.lock().iter().cloned().collect()
    }

    /// Number of retained incidents.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Total incidents ever appended (monotonic, survives eviction).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The configured retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_names() {
        assert!(is_reserved_name("cx"));
        assert!(is_reserved_name("cx.queries"));
        assert!(is_reserved_name("cx.anything.else"));
        assert!(!is_reserved_name("cxqueries"));
        assert!(!is_reserved_name("products"));
        assert!(!is_reserved_name("CX.queries"));
    }

    #[test]
    fn incident_log_bounds_and_sequences() {
        let log = IncidentLog::new(2);
        for i in 0..4 {
            let seq = log.append("shed_burst", format!("burst {i}"), i as f64, 1.0, 100 + i);
            assert_eq!(seq, i);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total(), 4);
        let recent = log.recent();
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[1].seq, 3);
        assert_eq!(recent[1].at_ms, 103);
        assert_eq!(recent[1].kind, "shed_burst");
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let log = IncidentLog::new(0);
        log.append("fault_burst", "x".into(), 9.0, 3.0, 1);
        assert!(log.is_empty());
        assert_eq!(log.total(), 1);
    }
}

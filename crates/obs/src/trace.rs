//! Per-query traces: timestamped nested spans plus point events.
//!
//! Ownership model: the server creates one [`QueryTrace`] per query (only
//! when tracing is on), installs it on the executing thread with
//! [`install_trace`], and instrumentation sites anywhere in the engine
//! attach spans with [`span`] / [`span_with`] without knowing about the
//! server. Cross-thread work done on a query's behalf (an MQO leader
//! sweeping for its followers) is attributed explicitly with
//! [`QueryTrace::add_span`] and a `shared = true` tag.
//!
//! When tracing is disabled — no [`TracingSession`] alive — every site
//! costs exactly one relaxed atomic load: [`span`] and [`event`] return
//! before touching thread-locals, clocks, or the heap. The global
//! [`span_allocations`] counter only moves when a span actually records,
//! which is what the overhead regression test pins to zero.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Count of live [`TracingSession`]s; tracing is on while nonzero.
static TRACING_SESSIONS: AtomicU32 = AtomicU32::new(0);

/// Total spans ever allocated (recorded) process-wide. Used by the
/// overhead regression test: with tracing off this must not move.
static SPAN_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Whether any [`TracingSession`] is alive. One relaxed load.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING_SESSIONS.load(Ordering::Relaxed) != 0
}

/// Total spans recorded process-wide since start.
pub fn span_allocations() -> u64 {
    SPAN_ALLOCS.load(Ordering::Relaxed)
}

/// RAII enablement of tracing: the process traces while at least one
/// session is alive. Servers configured with tracing hold one.
#[derive(Debug)]
pub struct TracingSession(());

impl TracingSession {
    /// Enables tracing for the lifetime of the returned guard.
    pub fn new() -> Self {
        TRACING_SESSIONS.fetch_add(1, Ordering::Relaxed);
        TracingSession(())
    }
}

impl Default for TracingSession {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TracingSession {
    fn drop(&mut self) {
        TRACING_SESSIONS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One recorded span: a named interval relative to the trace start.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Site name, e.g. `plan_cache`, `shared_sweep`.
    pub name: &'static str,
    /// Free-form detail, e.g. `hit`, `leader k=4`.
    pub detail: String,
    /// Start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth (0 = top-level lifecycle stage).
    pub depth: u16,
    /// True when the interval covers work shared across an MQO group and
    /// is attributed to every member (so per-member sums include it).
    pub shared: bool,
}

/// One point-in-time event (retry, injected fault, containment).
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name, e.g. `fault`, `retry`.
    pub name: &'static str,
    /// Free-form detail, e.g. the fault site label.
    pub detail: String,
    /// Offset from the trace's start, in nanoseconds.
    pub at_ns: u64,
}

#[derive(Debug)]
struct TraceInner {
    label: String,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    outcome: Option<String>,
    total_ns: u64,
    profile: Option<crate::profile::QueryProfile>,
}

/// A per-query trace: a shared, cloneable handle to the span list.
/// Created by the serving layer when tracing is enabled; finished with
/// the query's outcome and retained in a bounded ring.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    started: Instant,
    inner: Arc<Mutex<TraceInner>>,
}

impl QueryTrace {
    /// A new, empty trace labeled with the query's description.
    pub fn new(label: impl Into<String>) -> Self {
        QueryTrace {
            started: Instant::now(),
            inner: Arc::new(Mutex::new(TraceInner {
                label: label.into(),
                spans: Vec::new(),
                events: Vec::new(),
                outcome: None,
                total_ns: 0,
                profile: None,
            })),
        }
    }

    /// The instant this trace started (query admission into the server).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// The query label supplied at creation.
    pub fn label(&self) -> String {
        self.lock().label.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.started).as_nanos() as u64
    }

    /// Explicitly records a span (used for cross-thread attribution, e.g.
    /// an MQO leader crediting a shared sweep to every member's trace).
    pub fn add_span(
        &self,
        name: &'static str,
        detail: impl Into<String>,
        start: Instant,
        dur: Duration,
        depth: u16,
        shared: bool,
    ) {
        SPAN_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let rec = SpanRecord {
            name,
            detail: detail.into(),
            start_ns: self.offset_ns(start),
            dur_ns: dur.as_nanos() as u64,
            depth,
            shared,
        };
        self.lock().spans.push(rec);
    }

    /// Records a point event on this trace.
    pub fn add_event(&self, name: &'static str, detail: impl Into<String>) {
        let at_ns = self.offset_ns(Instant::now());
        self.lock().events.push(EventRecord { name, detail: detail.into(), at_ns });
    }

    /// Marks the trace complete with an outcome (`ok` or an error label)
    /// and freezes the end-to-end duration. Idempotent: the first call
    /// wins.
    pub fn finish(&self, outcome: impl Into<String>) {
        let total = self.offset_ns(Instant::now());
        let mut inner = self.lock();
        if inner.outcome.is_none() {
            inner.outcome = Some(outcome.into());
            inner.total_ns = total;
        }
    }

    /// The recorded outcome, if [`QueryTrace::finish`] was called.
    pub fn outcome(&self) -> Option<String> {
        self.lock().outcome.clone()
    }

    /// Attaches a resource profile (set by the serving layer when the
    /// opt-in profiler is on). The first call wins, matching `finish`.
    pub fn set_profile(&self, profile: crate::profile::QueryProfile) {
        let mut inner = self.lock();
        if inner.profile.is_none() {
            inner.profile = Some(profile);
        }
    }

    /// The attached resource profile, if the profiler was on.
    pub fn profile(&self) -> Option<crate::profile::QueryProfile> {
        self.lock().profile
    }

    /// End-to-end duration in nanoseconds (0 until finished).
    pub fn total_ns(&self) -> u64 {
        self.lock().total_ns
    }

    /// Snapshot of recorded spans, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Snapshot of recorded events, in recording order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.lock().events.clone()
    }

    /// Renders the span tree EXPLAIN-ANALYZE-style: one line per span,
    /// indented by depth, ordered by start offset, with durations in
    /// milliseconds, `[shared]` tags, and trailing events.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = format!(
            "query `{}` — {:.3} ms total ({})\n",
            inner.label,
            inner.total_ns as f64 / 1e6,
            inner.outcome.as_deref().unwrap_or("in flight"),
        );
        let mut spans: Vec<&SpanRecord> = inner.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_ns, s.depth));
        for s in spans {
            let indent = "  ".repeat(s.depth as usize + 1);
            let mut line = format!(
                "{indent}{:<24} {:>9.3} ms  @{:>9.3} ms",
                s.name,
                s.dur_ns as f64 / 1e6,
                s.start_ns as f64 / 1e6,
            );
            if !s.detail.is_empty() {
                line.push_str(&format!("  [{}]", s.detail));
            }
            if s.shared {
                line.push_str("  [shared]");
            }
            out.push_str(&line);
            out.push('\n');
        }
        for e in &inner.events {
            out.push_str(&format!(
                "  ! {:<22} @{:>9.3} ms  [{}]\n",
                e.name,
                e.at_ns as f64 / 1e6,
                e.detail
            ));
        }
        if let Some(p) = &inner.profile {
            out.push_str(&format!("  profile: {p}\n"));
        }
        out
    }

    /// Sum of top-level (`depth == 0`) span durations — the attributed
    /// portion of the query's wall time.
    pub fn attributed_ns(&self) -> u64 {
        self.lock().spans.iter().filter(|s| s.depth == 0).map(|s| s.dur_ns).sum()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<QueryTrace>> = const { RefCell::new(None) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// Restores the previously installed trace on drop.
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<QueryTrace>,
    prev_depth: u16,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        DEPTH.with(|d| d.set(self.prev_depth));
    }
}

/// Installs `trace` as the current thread's ambient trace until the
/// returned guard drops (`None` clears it, isolating callees). Nested
/// installs restore the previous trace — an MQO leader temporarily
/// installs each follower's trace around that follower's epilogue.
pub fn install_trace(trace: Option<&QueryTrace>) -> TraceScope {
    let prev = CURRENT.with(|c| c.borrow_mut().take());
    let prev_depth = DEPTH.with(|d| d.replace(0));
    CURRENT.with(|c| *c.borrow_mut() = trace.cloned());
    TraceScope { prev, prev_depth }
}

/// The trace ambiently installed on this thread, if any.
pub fn current_trace() -> Option<QueryTrace> {
    if !tracing_enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// An in-flight span guard: records into the ambient trace on drop.
/// Inert (and allocation-free) when tracing is off or no trace is
/// installed.
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    trace: QueryTrace,
    name: &'static str,
    detail: String,
    start: Instant,
    depth: u16,
    shared: bool,
}

impl Span {
    /// Tags this span as shared work attributed to multiple traces.
    pub fn shared(mut self) -> Self {
        if let Some(a) = self.0.as_mut() {
            a.shared = true;
        }
        self
    }

    /// Replaces the span's detail (e.g. once a cache hit/miss is known).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(a) = self.0.as_mut() {
            a.detail = detail.into();
        }
    }

    /// Whether this span will record (tracing on and a trace installed).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let dur = a.start.elapsed();
            DEPTH.with(|d| d.set(a.depth));
            let rec = SpanRecord {
                name: a.name,
                detail: a.detail,
                start_ns: a.trace.offset_ns(a.start),
                dur_ns: dur.as_nanos() as u64,
                depth: a.depth,
                shared: a.shared,
            };
            a.trace.lock().spans.push(rec);
        }
    }
}

/// Opens a span named `name` on the ambient trace. One relaxed load when
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, String::new)
}

/// Opens a span with a lazily computed detail string — the closure only
/// runs when the span will actually record.
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> Span {
    if !tracing_enabled() {
        return Span(None);
    }
    let Some(trace) = CURRENT.with(|c| c.borrow().clone()) else {
        return Span(None);
    };
    SPAN_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span(Some(ActiveSpan {
        trace,
        name,
        detail: detail(),
        start: Instant::now(),
        depth,
        shared: false,
    }))
}

/// Records a point event on the ambient trace (detail computed lazily).
/// One relaxed load when tracing is disabled.
#[inline]
pub fn event(name: &'static str, detail: impl FnOnce() -> String) {
    if !tracing_enabled() {
        return;
    }
    if let Some(trace) = CURRENT.with(|c| c.borrow().clone()) {
        trace.add_event(name, detail());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_do_not_record() {
        // No TracingSession alive in this test: spans must be inert.
        // (Runs in the same process as other tests that *do* enable
        // tracing, so only assert local behavior, not the global
        // counter — the dedicated overhead test owns that.)
        if tracing_enabled() {
            return; // another test's session is alive; skip
        }
        let t = QueryTrace::new("q");
        let _scope = install_trace(Some(&t));
        let s = span("stage");
        let recorded = s.is_recording();
        drop(s);
        event("e", || "detail".into());
        if tracing_enabled() {
            return; // a parallel test enabled tracing mid-flight; skip
        }
        assert!(!recorded);
        assert!(t.spans().is_empty());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let _session = TracingSession::new();
        let t = QueryTrace::new("nested");
        let scope = install_trace(Some(&t));
        {
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span_with("inner", || "detail".into());
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        drop(scope);
        t.finish("ok");
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.detail, "detail");
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.dur_ns <= outer.dur_ns);
        assert!(outer.start_ns + outer.dur_ns <= t.total_ns());
        assert_eq!(t.outcome().as_deref(), Some("ok"));
    }

    #[test]
    fn install_is_scoped_and_restores() {
        let _session = TracingSession::new();
        let a = QueryTrace::new("a");
        let b = QueryTrace::new("b");
        let _sa = install_trace(Some(&a));
        {
            let _sb = install_trace(Some(&b));
            let _s = span("in_b");
        }
        let _s = span("in_a");
        drop(_s);
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.spans()[0].name, "in_a");
        assert_eq!(b.spans()[0].name, "in_b");
    }

    #[test]
    fn explicit_shared_span_and_events() {
        let _session = TracingSession::new();
        let t = QueryTrace::new("member");
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        t.add_span("shared_sweep", "k=3", start, start.elapsed(), 0, true);
        t.add_event("fault", "sweep");
        t.finish("transient");
        let spans = t.spans();
        assert!(spans[0].shared);
        assert_eq!(t.events()[0].name, "fault");
        let r = t.render();
        assert!(r.contains("shared_sweep"), "{r}");
        assert!(r.contains("[shared]"), "{r}");
        assert!(r.contains("fault"), "{r}");
        assert!(r.contains("transient"), "{r}");
    }

    #[test]
    fn attributed_sums_top_level_only() {
        let t = QueryTrace::new("sum");
        let now = Instant::now();
        t.add_span("a", "", now, Duration::from_nanos(100), 0, false);
        t.add_span("b", "", now, Duration::from_nanos(50), 1, false);
        t.add_span("c", "", now, Duration::from_nanos(25), 0, true);
        assert_eq!(t.attributed_ns(), 125);
    }
}

//! A bounded ring of recent query traces.

use crate::trace::QueryTrace;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Keeps the `capacity` most recent finished traces; older traces are
/// evicted FIFO. `capacity == 0` disables retention entirely.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    /// A ring retaining up to `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        TraceRing { capacity, ring: Mutex::new(VecDeque::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<QueryTrace>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Pushes a finished trace, evicting the oldest beyond capacity.
    pub fn push(&self, trace: QueryTrace) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.lock().iter().cloned().collect()
    }

    /// The most recently pushed trace, if any.
    pub fn last(&self) -> Option<QueryTrace> {
        self.lock().back().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_eviction() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(QueryTrace::new(format!("q{i}")));
        }
        assert_eq!(ring.len(), 3);
        let labels: Vec<String> = ring.recent().iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["q2", "q3", "q4"]);
        assert_eq!(ring.last().unwrap().label(), "q4");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let ring = TraceRing::new(0);
        ring.push(QueryTrace::new("q"));
        assert!(ring.is_empty());
        assert!(ring.last().is_none());
    }
}

//! A flat metrics registry serializable to Prometheus text format and
//! JSON.
//!
//! The serving layer assembles a [`MetricsSnapshot`] on demand from its
//! live counters and histograms; benches and CI write the Prometheus
//! rendering next to their `BENCH_*.json` artifacts and lint it with
//! [`crate::promparse`].

use crate::hist::Histogram;

/// The value of one metric sample.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A distribution summary: quantile points plus exact count/sum.
    Summary {
        /// `(quantile, value)` points, e.g. `(0.5, 1.2e6)`.
        quantiles: Vec<(f64, f64)>,
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// One named metric with optional labels.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus-safe name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Label pairs, e.g. `[("site", "embed")]`.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: MetricValue,
}

/// An ordered collection of metrics captured at one point in time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
    stamp: Option<(u64, u64)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// All metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Stamps the snapshot with a capture time (milliseconds since an
    /// epoch chosen by the caller — wall clock in production, an injected
    /// fake in tests) and a monotonically increasing sequence number, so
    /// two diffed exports are orderable even when the clock is frozen.
    pub fn set_timestamp(&mut self, timestamp_ms: u64, sequence: u64) -> &mut Self {
        self.stamp = Some((timestamp_ms, sequence));
        self
    }

    /// The capture timestamp in milliseconds, if stamped.
    pub fn timestamp_ms(&self) -> Option<u64> {
        self.stamp.map(|(ts, _)| ts)
    }

    /// The capture sequence number, if stamped.
    pub fn sequence(&self) -> Option<u64> {
        self.stamp.map(|(_, seq)| seq)
    }

    /// Adds a counter.
    pub fn counter(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: u64,
    ) -> &mut Self {
        self.push(name, help, labels, MetricValue::Counter(value))
    }

    /// Adds a gauge.
    pub fn gauge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        self.push(name, help, labels, MetricValue::Gauge(value))
    }

    /// Adds a summary (p50/p95/p99 + count/sum) from a histogram, plus a
    /// companion `<name>_max` gauge carrying the exact maximum.
    pub fn summary_from_hist(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
    ) -> &mut Self {
        let snap = hist.snapshot();
        let quantiles = vec![
            (0.5, snap.p50 as f64),
            (0.95, snap.p95 as f64),
            (0.99, snap.p99 as f64),
        ];
        self.push(
            name,
            help,
            labels,
            MetricValue::Summary { quantiles, count: snap.count, sum: snap.sum as f64 },
        );
        let max_name = format!("{name}_max");
        self.push(&max_name, &format!("{help} (exact maximum)"), labels, MetricValue::Gauge(snap.max as f64))
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value,
        });
        self
    }

    /// The first sample matching `name` (any labels), as `f64`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| match &m.value {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Summary { sum, .. } => *sum,
        })
    }

    /// True when a sample named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.metrics.iter().any(|m| m.name == name)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per family, one
    /// sample line per metric, summaries expanded into `quantile`-labeled
    /// samples plus `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        if let Some((ts, seq)) = self.stamp {
            out.push_str("# HELP cx_obs_snapshot_timestamp_ms Snapshot capture time (ms)\n");
            out.push_str("# TYPE cx_obs_snapshot_timestamp_ms gauge\n");
            out.push_str(&format!("cx_obs_snapshot_timestamp_ms {ts}\n"));
            out.push_str("# HELP cx_obs_snapshot_sequence Snapshot sequence number\n");
            out.push_str("# TYPE cx_obs_snapshot_sequence counter\n");
            out.push_str(&format!("cx_obs_snapshot_sequence {seq}\n"));
        }
        let mut seen_header: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen_header.contains(&m.name.as_str()) {
                seen_header.push(&m.name);
                let kind = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Summary { .. } => "summary",
                };
                out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
                out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {}\n", m.name, fmt_labels(&m.labels, None), v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        fmt_labels(&m.labels, None),
                        fmt_f64(*v)
                    ));
                }
                MetricValue::Summary { quantiles, count, sum } => {
                    for (q, v) in quantiles {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            m.name,
                            fmt_labels(&m.labels, Some(*q)),
                            fmt_f64(*v)
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        fmt_labels(&m.labels, None),
                        fmt_f64(*sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        fmt_labels(&m.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON array of
    /// `{name, labels, type, value | {quantiles, count, sum}}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        if let Some((ts, seq)) = self.stamp {
            out.push_str(&format!("  \"timestamp_ms\": {ts},\n  \"sequence\": {seq},\n"));
        }
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let labels = m
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", escape_json(k), escape_json(v)))
                .collect::<Vec<_>>()
                .join(", ");
            let body = match &m.value {
                MetricValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
                MetricValue::Gauge(v) => {
                    format!("\"type\": \"gauge\", \"value\": {}", fmt_json_f64(*v))
                }
                MetricValue::Summary { quantiles, count, sum } => {
                    let qs = quantiles
                        .iter()
                        .map(|(q, v)| format!("\"p{}\": {}", (q * 100.0) as u32, fmt_json_f64(*v)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "\"type\": \"summary\", \"quantiles\": {{{qs}}}, \"count\": {count}, \"sum\": {}",
                        fmt_json_f64(*sum)
                    )
                }
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, {body}}}{}\n",
                escape_json(&m.name),
                if i + 1 == self.metrics.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn fmt_labels(labels: &[(String, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".into()
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promparse;

    fn sample_snapshot() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record(v);
        }
        let mut s = MetricsSnapshot::new();
        s.counter("cx_serve_queries_total", "Total queries served", &[], 42);
        s.counter(
            "cx_serve_faults_injected_total",
            "Injected faults",
            &[("site", "embed")],
            3,
        );
        s.gauge("cx_serve_plan_cache_hit_rate", "Plan cache hit rate", &[], 0.875);
        s.summary_from_hist("cx_serve_query_latency_ns", "End-to-end latency", &[], &h);
        s
    }

    #[test]
    fn prometheus_rendering_has_headers_and_samples() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# HELP cx_serve_queries_total Total queries served"));
        assert!(text.contains("# TYPE cx_serve_queries_total counter"));
        assert!(text.contains("cx_serve_queries_total 42"));
        assert!(text.contains("cx_serve_faults_injected_total{site=\"embed\"} 3"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("cx_serve_query_latency_ns_sum"));
        assert!(text.contains("cx_serve_query_latency_ns_count 4"));
        assert!(text.contains("cx_serve_query_latency_ns_max"));
    }

    #[test]
    fn prometheus_roundtrips_through_parser() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let parsed = promparse::parse(&text).expect("valid exposition format");
        assert_eq!(parsed.value("cx_serve_queries_total", &[]), Some(42.0));
        assert_eq!(
            parsed.value("cx_serve_faults_injected_total", &[("site", "embed")]),
            Some(3.0)
        );
        assert_eq!(parsed.value("cx_serve_query_latency_ns_count", &[]), Some(4.0));
        assert!(parsed
            .value("cx_serve_query_latency_ns", &[("quantile", "0.99")])
            .is_some());
    }

    #[test]
    fn json_rendering_is_structured() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"name\": \"cx_serve_queries_total\""));
        assert!(json.contains("\"value\": 42"));
        assert!(json.contains("\"site\": \"embed\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn timestamp_stamp_appears_in_both_renderings() {
        let mut s = sample_snapshot();
        s.set_timestamp(1_234_567, 9);
        assert_eq!(s.timestamp_ms(), Some(1_234_567));
        assert_eq!(s.sequence(), Some(9));
        let text = s.to_prometheus();
        let parsed = promparse::parse(&text).expect("stamped exposition parses");
        assert_eq!(parsed.value("cx_obs_snapshot_timestamp_ms", &[]), Some(1_234_567.0));
        assert_eq!(parsed.value("cx_obs_snapshot_sequence", &[]), Some(9.0));
        let json = s.to_json();
        assert!(json.contains("\"timestamp_ms\": 1234567"));
        assert!(json.contains("\"sequence\": 9"));
        // Unstamped snapshots render exactly as before.
        let bare = sample_snapshot();
        assert!(!bare.to_prometheus().contains("cx_obs_snapshot"));
        assert!(!bare.to_json().contains("timestamp_ms"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = MetricsSnapshot::new();
        s.gauge("g", "h", &[("k", "a\"b\\c")], 1.0);
        let text = s.to_prometheus();
        assert!(text.contains("g{k=\"a\\\"b\\\\c\"} 1"));
        promparse::parse(&text).expect("escaped labels parse");
    }
}

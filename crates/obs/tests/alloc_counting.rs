//! Allocation accounting through a real `#[global_allocator]`: with
//! [`CountingAlloc`] installed, a [`ProfileSpan`] attributes every heap
//! allocation made on the profiled thread, and the counters stay dark
//! (and free) when no profiler session is live.

use cx_obs::{CountingAlloc, ProfileSpan, ProfilerSession};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::system();

#[test]
fn profiled_span_counts_allocations_and_idle_span_does_not() {
    // No session: the allocator's fast path must record nothing.
    let idle = ProfileSpan::start();
    let ballast: Vec<u64> = (0..4096).collect();
    assert_eq!(ballast.len(), 4096);
    let idle = idle.finish(0);
    assert_eq!(idle.alloc_count, 0);
    assert_eq!(idle.alloc_bytes, 0);

    // Live session: the same work is attributed, with at least the
    // ballast's bytes on this thread's counters.
    let _session = ProfilerSession::new();
    let span = ProfileSpan::start();
    let ballast: Vec<u64> = (0..4096).collect();
    let strings: Vec<String> = (0..64).map(|i| format!("row-{i:04}")).collect();
    assert_eq!(ballast.len(), 4096);
    assert_eq!(strings.len(), 64);
    let profile = span.finish(7);
    assert!(profile.alloc_count >= 65, "vec + strings allocate: {profile:?}");
    assert!(
        profile.alloc_bytes >= 4096 * std::mem::size_of::<u64>() as u64,
        "ballast bytes attributed: {profile:?}"
    );
    assert_eq!(profile.bytes_charged, 7);

    // Counters are per-span: a fresh span starts from zero.
    let fresh = ProfileSpan::start();
    let fresh = fresh.finish(0);
    assert!(fresh.alloc_bytes < profile.alloc_bytes);
}

#[test]
fn allocations_on_other_threads_are_not_attributed() {
    let _session = ProfilerSession::new();
    let span = ProfileSpan::start();
    std::thread::scope(|s| {
        s.spawn(|| {
            let elsewhere: Vec<u8> = vec![0u8; 1 << 20];
            assert_eq!(elsewhere.len(), 1 << 20);
        });
    });
    let profile = span.finish(0);
    assert!(
        profile.alloc_bytes < 1 << 20,
        "the megabyte allocated off-thread must not land here: {profile:?}"
    );
}

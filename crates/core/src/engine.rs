//! The engine: statistics → optimization → physical planning → execution.

use crate::catalog::Catalog;
use crate::query::Query;
use cx_embed::{EmbeddingCache, EmbeddingModel};
use cx_exec::physical::display_physical;
use cx_exec::{collect_table, PhysicalOperator};
use cx_kb::KnowledgeBase;
use cx_optimizer::{
    create_physical_plan, estimate_cost, estimate_rows, Optimizer, OptimizerConfig,
    OptimizerContext, PhysicalPlannerEnv,
};
use cx_storage::{Result, Schema, Table};
use cx_vision::{ImageStore, ObjectDetector};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Optimizer feature switches (Figure 4's ladder toggles live here).
    pub optimizer: OptimizerConfig,
    /// Entry bound for the per-model embedding caches (`None` =
    /// unbounded, the experiment-friendly default). Long-lived servers set
    /// this so the caches CLOCK-evict instead of growing without limit.
    pub embedding_cache_capacity: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            optimizer: OptimizerConfig::all(),
            embedding_cache_capacity: None,
        }
    }
}

impl EngineConfig {
    /// A configuration with every optimization disabled (the "first tool at
    /// their disposal" baseline of Section V).
    pub fn unoptimized() -> Self {
        EngineConfig {
            optimizer: OptimizerConfig::none(),
            ..EngineConfig::default()
        }
    }
}

/// The outcome of executing a query.
pub struct QueryResult {
    /// Materialized result rows.
    pub table: Table,
    /// Wall time of optimize + plan + execute.
    pub elapsed: std::time::Duration,
    /// Names of optimizer rules that fired.
    pub rules_fired: Vec<String>,
    /// Optimizer's row estimate for the result (plan-quality signal).
    pub estimated_rows: f64,
    /// Optimizer's cost estimate for the executed plan (abstract ns).
    pub estimated_cost: f64,
}

/// An optimized logical plan plus the optimizer's by-products, ready to
/// lower with [`Engine::lower_plan`] — the unit a serving layer caches.
pub struct PlannedQuery {
    /// The optimized logical plan.
    pub plan: cx_exec::logical::LogicalPlan,
    /// Names of optimizer rules that fired.
    pub rules_fired: Vec<String>,
    /// Optimizer's row estimate for the result.
    pub estimated_rows: f64,
    /// Optimizer's cost estimate (abstract ns) — also the admission-control
    /// currency of `cx_serve`.
    pub estimated_cost: f64,
}

/// The context-rich analytical engine.
pub struct Engine {
    catalog: Catalog,
    config: EngineConfig,
    /// Embedding caches shared across queries (model name → cache), so the
    /// "prefetch/warm" state persists like a buffer pool would.
    caches: RwLock<HashMap<String, Arc<EmbeddingCache>>>,
    /// Memoized optimizer contexts for [`Self::estimate_plan_cost`],
    /// keyed by (catalog version, config). Building a context clones the
    /// stats and sample snapshots — fine once per optimization, wasteful
    /// for the prepared-statement path that re-costs a bound plan on
    /// every execute. A small set (not a single slot) so sessions running
    /// different optimizer configs concurrently don't evict each other;
    /// each context's interior selectivity memo is shared across calls,
    /// so repeated probes (same target, same threshold) are free.
    estimate_ctxs: RwLock<Vec<Arc<(u64, OptimizerConfig, OptimizerContext)>>>,
}

/// Most (catalog version, config) cost-estimation contexts kept resident.
const ESTIMATE_CTX_CAPACITY: usize = 8;

impl Engine {
    /// An engine with `config`.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            catalog: Catalog::new(),
            config,
            caches: RwLock::new(HashMap::new()),
            estimate_ctxs: RwLock::new(Vec::new()),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Replaces the optimizer configuration (between experiment runs).
    pub fn set_optimizer_config(&mut self, config: OptimizerConfig) {
        self.config.optimizer = config;
    }

    /// Registers a relational table.
    pub fn register_table(&self, name: impl Into<String>, table: Table) -> Result<()> {
        self.catalog.register_table(name, table)
    }

    /// Registers a knowledge base (exported as relation `<name>`).
    pub fn register_kb(&self, name: impl Into<String>, kb: KnowledgeBase) -> Result<()> {
        self.catalog.register_kb(name, kb)
    }

    /// Registers an image store (`<name>.meta`, `<name>.detections`).
    pub fn register_images(
        &self,
        name: impl Into<String>,
        store: ImageStore,
        detector: &ObjectDetector,
    ) -> Result<()> {
        self.catalog.register_images(name, store, detector)
    }

    /// Registers a representation model.
    pub fn register_model(&self, model: Arc<dyn EmbeddingModel>) {
        self.catalog.register_model(model);
    }

    /// Starts a query over table `name` (a registered user table or a
    /// reserved `cx.*` system table).
    pub fn table(&self, name: &str) -> Result<Query> {
        if let Some(table) = self.catalog.table(name) {
            let schema = Schema::new(table.schema().fields().to_vec());
            return Ok(Query::scan(name, schema));
        }
        if let Some(sys) = self.catalog.system_table(name) {
            let schema = Schema::new(sys.schema().fields().to_vec());
            return Ok(Query::scan(name, schema));
        }
        Err(cx_storage::Error::ColumnNotFound(format!("table {name}")))
    }

    /// The shared embedding cache for `model` (useful for prefetch
    /// experiments and hit-rate inspection).
    pub fn embedding_cache(&self, model: &str) -> Option<Arc<EmbeddingCache>> {
        if let Some(c) = self.caches.read().get(model) {
            return Some(c.clone());
        }
        let m = self.catalog.models().get(model)?;
        let cache = Arc::new(match self.config.embedding_cache_capacity {
            Some(cap) => EmbeddingCache::with_capacity(m, cap),
            None => EmbeddingCache::new(m),
        });
        self.caches.write().insert(model.to_string(), cache.clone());
        Some(cache)
    }

    /// The catalog's change version — bumped by every registration. Plans
    /// built against an older version are stale (see
    /// [`crate::Catalog::version`]).
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    fn optimizer_context(&self) -> OptimizerContext {
        self.optimizer_context_with(self.config.optimizer)
    }

    fn optimizer_context_with(&self, config: OptimizerConfig) -> OptimizerContext {
        let mut ctx = OptimizerContext::new(self.catalog.models().clone(), config);
        ctx.stats = self.catalog.stats_snapshot();
        ctx.samples = self.catalog.samples_snapshot();
        // Pre-seed shared caches so execution reuses optimizer sampling
        // work and prior queries' embeddings.
        for name in self.catalog.models().names() {
            if let Some(cache) = self.embedding_cache(&name) {
                ctx.caches.insert(name, cache);
            }
        }
        ctx
    }

    fn planner_env(&self) -> PhysicalPlannerEnv {
        let mut env = PhysicalPlannerEnv::new();
        for (name, table) in self.catalog.tables_snapshot() {
            env.register_table(name, table);
        }
        for (_, source) in self.catalog.system_tables_snapshot() {
            env.register_system_table(source);
        }
        env
    }

    /// Runs logical optimization (not lowering or execution) in `ctx`.
    fn optimize_in(&self, ctx: &OptimizerContext, query: &Query) -> PlannedQuery {
        let optimizer = Optimizer::new(ctx);
        let (plan, rules_fired) = optimizer.optimize(query.plan(), ctx);
        let estimated_rows = estimate_rows(&plan, ctx);
        let estimated_cost = estimate_cost(&plan, ctx);
        PlannedQuery { plan, rules_fired, estimated_rows, estimated_cost }
    }

    /// Optimizes `query` without lowering or executing it. The returned
    /// [`PlannedQuery`] can be lowered with [`Self::lower_plan`] — a
    /// serving layer caches the pair and skips both steps on repeats.
    pub fn optimize_query(&self, query: &Query) -> PlannedQuery {
        self.optimize_query_with(query, self.config.optimizer)
    }

    /// Like [`Self::optimize_query`], but under an explicit optimizer
    /// configuration — the hook per-session overrides (e.g. a session's
    /// own `recall_tolerance`) use without forking the engine.
    pub fn optimize_query_with(&self, query: &Query, config: OptimizerConfig) -> PlannedQuery {
        let _span = cx_obs::span("optimize");
        let ctx = self.optimizer_context_with(config);
        self.optimize_in(&ctx, query)
    }

    /// Estimates the execution cost (abstract ns) of an already-optimized
    /// plan, without re-running the optimizer. The prepared-statement path
    /// uses this at execute time: the template was optimized with
    /// placeholder slots (default selectivities), but admission control
    /// should weigh the plan with the *bound* literals, whose sampled
    /// selectivities can differ by orders of magnitude.
    pub fn estimate_plan_cost(
        &self,
        plan: &cx_exec::logical::LogicalPlan,
        config: OptimizerConfig,
    ) -> f64 {
        let version = self.catalog_version();
        if let Some(cached) = self
            .estimate_ctxs
            .read()
            .iter()
            .find(|c| c.0 == version && c.1 == config)
            .cloned()
        {
            return estimate_cost(plan, &cached.2);
        }
        let snapshot = Arc::new((version, config, self.optimizer_context_with(config)));
        {
            let mut ctxs = self.estimate_ctxs.write();
            // Stale-version entries can never hit again; newest first.
            ctxs.retain(|c| c.0 == version);
            ctxs.insert(0, snapshot.clone());
            ctxs.truncate(ESTIMATE_CTX_CAPACITY);
        }
        estimate_cost(plan, &snapshot.2)
    }

    /// Lowers an (optimized) logical plan into an executable operator
    /// tree. The tree is `Send + Sync` and re-executable: every
    /// `execute()` call re-runs it against the tables captured here.
    pub fn lower_plan(
        &self,
        plan: &cx_exec::logical::LogicalPlan,
    ) -> Result<Arc<dyn PhysicalOperator>> {
        self.lower_plan_with(plan, self.config.optimizer)
    }

    /// Like [`Self::lower_plan`], but under an explicit optimizer
    /// configuration (must match the one the plan was optimized with for
    /// the lowered strategies to agree with the plan's estimates).
    pub fn lower_plan_with(
        &self,
        plan: &cx_exec::logical::LogicalPlan,
        config: OptimizerConfig,
    ) -> Result<Arc<dyn PhysicalOperator>> {
        let _span = cx_obs::span("lower");
        let mut ctx = self.optimizer_context_with(config);
        let env = self.planner_env();
        create_physical_plan(plan, &mut ctx, &env)
    }

    /// Optimizes and builds the physical plan without executing (returns
    /// the operator tree plus the rule trace).
    pub fn plan(&self, query: &Query) -> Result<(Arc<dyn PhysicalOperator>, Vec<String>)> {
        let mut ctx = self.optimizer_context();
        let optimizer = Optimizer::new(&ctx);
        let (optimized, trace) = optimizer.optimize(query.plan(), &ctx);
        let env = self.planner_env();
        let physical = create_physical_plan(&optimized, &mut ctx, &env)?;
        Ok((physical, trace))
    }

    /// Executes `query` end to end.
    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        let start = Instant::now();
        let mut ctx = self.optimizer_context();
        let planned = self.optimize_in(&ctx, query);
        let env = self.planner_env();
        let physical = create_physical_plan(&planned.plan, &mut ctx, &env)?;
        let table = collect_table(physical.as_ref())?;
        Ok(QueryResult {
            table,
            elapsed: start.elapsed(),
            rules_fired: planned.rules_fired,
            estimated_rows: planned.estimated_rows,
            estimated_cost: planned.estimated_cost,
        })
    }

    /// EXPLAIN: the logical plan, the optimized plan with the rule trace,
    /// estimates, and the physical operator tree.
    pub fn explain(&self, query: &Query) -> Result<String> {
        let mut ctx = self.optimizer_context();
        let optimizer = Optimizer::new(&ctx);
        let (optimized, trace) = optimizer.optimize(query.plan(), &ctx);
        let rows = estimate_rows(&optimized, &ctx);
        let cost = estimate_cost(&optimized, &ctx);
        let env = self.planner_env();
        let physical = create_physical_plan(&optimized, &mut ctx, &env)?;
        let mut out = String::new();
        out.push_str("== logical plan ==\n");
        out.push_str(&query.plan().display_indent());
        out.push_str("== optimized plan ==\n");
        out.push_str(&optimized.display_indent());
        out.push_str(&format!("rules fired: {}\n", trace.join(", ")));
        out.push_str(&format!("estimated rows: {rows:.0}\n"));
        out.push_str(&format!("estimated cost: {cost:.0}\n"));
        out.push_str(&format!(
            "kernel dispatch: {}\n",
            cx_vector::simd::KernelDispatch::active().report()
        ));
        out.push_str("== physical plan ==\n");
        out.push_str(&display_physical(physical.as_ref()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::{ClusteredTextModel, HashNGramModel};
    use cx_exec::logical::{AggFunc, AggSpec, JoinType};
    use cx_expr::{col, lit};
    use cx_storage::{Column, DataType, Field, Scalar};

    fn engine_with_data() -> Engine {
        let engine = Engine::new(EngineConfig::default());
        let specs = cx_datagen::table1_clusters();
        let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
        engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
        engine.register_model(Arc::new(HashNGramModel::new(42)));
        let products = Table::from_columns(
            Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
            vec![
                Column::from_i64(vec![1, 2, 3, 4, 5]),
                Column::from_strings(["boots", "parka", "kitten", "sneakers", "coat"]),
                Column::from_f64(vec![30.0, 80.0, 10.0, 55.0, 25.0]),
            ],
        )
        .unwrap();
        engine.register_table("products", products).unwrap();

        let mut kb = KnowledgeBase::new();
        for item in ["boots", "sneakers", "oxfords"] {
            kb.assert_is_a(item, "shoes");
        }
        for item in ["parka", "coat", "windbreaker"] {
            kb.assert_is_a(item, "jacket");
        }
        kb.assert_is_a("shoes", "clothes");
        kb.assert_is_a("jacket", "clothes");
        kb.assert_is_a("kitten", "cat");
        engine.register_kb("kb", kb).unwrap();
        engine
    }

    #[test]
    fn relational_query_roundtrip() {
        let engine = engine_with_data();
        let q = engine
            .table("products")
            .unwrap()
            .filter(col("price").gt(lit(20.0)))
            .sort(&[("price", false)])
            .limit(2);
        let result = engine.execute(&q).unwrap();
        assert_eq!(result.table.num_rows(), 2);
        assert_eq!(result.table.row(0).unwrap()[1], Scalar::from("parka"));
    }

    #[test]
    fn semantic_filter_via_engine() {
        let engine = engine_with_data();
        let q = engine
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75);
        let result = engine.execute(&q).unwrap();
        // kitten is not clothing.
        assert_eq!(result.table.num_rows(), 4);
    }

    #[test]
    fn motivating_semantic_join_with_pushdown() {
        let engine = engine_with_data();
        let kb = engine
            .table("kb")
            .unwrap()
            .filter(col("category").eq(lit("clothes")));
        let q = engine
            .table("products")
            .unwrap()
            .semantic_join(kb, "name", "label", "m", 0.9)
            .filter(col("price").gt(lit(20.0)));
        let result = engine.execute(&q).unwrap();
        assert!(result.rules_fired.iter().any(|r| r.contains("push_filter")));
        // Matching rows all satisfy the predicate and are clothing items.
        assert!(result.table.num_rows() >= 4);
        let prices = result.table.column_by_name("price").unwrap();
        for p in prices.f64_values().unwrap() {
            assert!(*p > 20.0);
        }
    }

    #[test]
    fn explain_includes_all_sections() {
        let engine = engine_with_data();
        let q = engine
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.8)
            .filter(col("price").gt(lit(20.0)));
        let s = engine.explain(&q).unwrap();
        assert!(s.contains("== logical plan =="));
        assert!(s.contains("== optimized plan =="));
        assert!(s.contains("== physical plan =="));
        assert!(s.contains("rules fired:"));
        // Pushdown moved the relational filter below the semantic one.
        let opt_section = s.split("== optimized plan ==").nth(1).unwrap();
        let filter_pos = opt_section.find("Filter: (price > 20)").unwrap();
        let sem_pos = opt_section.find("SemanticFilter").unwrap();
        assert!(sem_pos < filter_pos, "semantic filter should be above:\n{s}");
    }

    #[test]
    fn aggregates_and_joins() {
        let engine = engine_with_data();
        let kb = engine.table("kb").unwrap();
        let q = engine
            .table("products")
            .unwrap()
            .join(kb, &[("name", "label")], JoinType::Inner)
            .aggregate(
                &["category"],
                vec![
                    AggSpec::count_star("n"),
                    AggSpec::new(AggFunc::Avg, "price", "avg_price"),
                ],
            )
            .sort(&[("category", true)]);
        let result = engine.execute(&q).unwrap();
        assert!(result.table.num_rows() >= 2);
        assert_eq!(result.table.schema().names(), vec!["category", "n", "avg_price"]);
    }

    #[test]
    fn unoptimized_config_still_correct() {
        let mut engine = engine_with_data();
        let build = |engine: &Engine| {
            let kb = engine
                .table("kb")
                .unwrap()
                .filter(col("category").eq(lit("clothes")));
            engine
                .table("products")
                .unwrap()
                .semantic_join(kb, "name", "label", "m", 0.9)
                .filter(col("price").gt(lit(20.0)))
        };
        let optimized = engine.execute(&build(&engine)).unwrap();
        engine.set_optimizer_config(OptimizerConfig::none());
        let naive = engine.execute(&build(&engine)).unwrap();
        assert!(naive.rules_fired.is_empty());
        assert_eq!(optimized.table.num_rows(), naive.table.num_rows());
    }

    #[test]
    fn unknown_table_errors() {
        let engine = Engine::new(EngineConfig::default());
        assert!(engine.table("missing").is_err());
    }

    #[test]
    fn engine_is_send_sync() {
        // The serving layer shares one `Arc<Engine>` across worker
        // threads; this is the compile-time audit that everything the
        // engine holds (catalog, caches, model registry) stays shareable.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<crate::Catalog>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<PlannedQuery>();
    }

    #[test]
    fn optimize_then_lower_matches_execute() {
        let engine = engine_with_data();
        let q = engine
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.75)
            .sort(&[("product_id", true)]);
        let direct = engine.execute(&q).unwrap();
        let planned = engine.optimize_query(&q);
        assert_eq!(planned.rules_fired, direct.rules_fired);
        assert_eq!(planned.estimated_cost, direct.estimated_cost);
        let physical = engine.lower_plan(&planned.plan).unwrap();
        let table = cx_exec::collect_table(physical.as_ref()).unwrap();
        assert_eq!(table.num_rows(), direct.table.num_rows());
        // Lowered plans are re-executable: run it again.
        let again = cx_exec::collect_table(physical.as_ref()).unwrap();
        assert_eq!(again.num_rows(), direct.table.num_rows());
    }

    #[test]
    fn per_call_config_overrides_tier_selection() {
        // A session-level recall tolerance must flow through
        // optimize/lower without touching the engine's own config: the
        // same big join lowers exact by default and quantized under the
        // override.
        let engine = Engine::new(EngineConfig::default());
        engine.register_model(Arc::new(HashNGramModel::new(42)));
        let rows = 100_000i64;
        let big = Table::from_columns(
            Schema::new(vec![Field::new("k", DataType::Utf8)]),
            vec![Column::from_strings((0..rows).map(|i| format!("k{i}")))],
        )
        .unwrap();
        engine.register_table("big", big).unwrap();
        let q = engine.table("big").unwrap().semantic_join(
            engine.table("big").unwrap(),
            "k",
            "k",
            "hash-ngram",
            0.9,
        );
        let mut tolerant = engine.config().optimizer;
        tolerant.recall_tolerance = 5e-2;
        tolerant.semantic_index_selection = false;
        let mut exact = tolerant;
        exact.recall_tolerance = 0.0;
        let planned = engine.optimize_query_with(&q, tolerant);
        let quantized = engine.lower_plan_with(&planned.plan, tolerant).unwrap();
        assert!(
            cx_exec::physical::display_physical(quantized.as_ref()).contains("quant=int8"),
            "{}",
            cx_exec::physical::display_physical(quantized.as_ref())
        );
        let planned = engine.optimize_query_with(&q, exact);
        let plain = engine.lower_plan_with(&planned.plan, exact).unwrap();
        assert!(!cx_exec::physical::display_physical(plain.as_ref()).contains("quant="));
        // The engine's own config is untouched.
        assert_eq!(engine.config().optimizer.recall_tolerance, 0.0);
    }

    #[test]
    fn bounded_engine_caches_evict() {
        let config = EngineConfig {
            embedding_cache_capacity: Some(2),
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        engine.register_model(Arc::new(HashNGramModel::new(42)));
        let cache = engine.embedding_cache("hash-ngram").unwrap();
        assert_eq!(cache.capacity(), Some(2));
        for t in ["a", "b", "c", "d"] {
            cache.get(t);
        }
        assert!(cache.len() <= 2);
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn cache_shared_across_queries() {
        let engine = engine_with_data();
        let q = engine
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", 0.8);
        engine.execute(&q).unwrap();
        let cache = engine.embedding_cache("m").unwrap();
        let after_first = cache.model().stats().invocations();
        engine.execute(&q).unwrap();
        // Second run reuses every embedding.
        assert_eq!(cache.model().stats().invocations(), after_first);
    }
}

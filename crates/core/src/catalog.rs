//! The polystore catalog: tables, knowledge bases, image stores, models.

use cx_embed::{EmbeddingModel, ModelRegistry};
use cx_kb::KnowledgeBase;
use cx_storage::{Error, Result, SystemTableSource, Table, TableStats};
use cx_vision::{ImageStore, ObjectDetector};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cap on sampled values kept per string column for semantic selectivity
/// estimation.
const SAMPLE_CAP: usize = 256;

/// The engine's source registry.
///
/// Knowledge bases and image stores register alongside plain tables: their
/// relational exports become scannable sources (`<name>` for the KB's
/// label/category relation, `<name>.meta` / `<name>.detections` for image
/// stores), which is how the engine realizes the paper's polystore view —
/// one declarative surface over heterogeneous sources.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    stats: RwLock<HashMap<String, TableStats>>,
    samples: RwLock<HashMap<(String, String), Vec<String>>>,
    kbs: RwLock<HashMap<String, Arc<KnowledgeBase>>>,
    image_stores: RwLock<HashMap<String, Arc<ImageStore>>>,
    system_tables: RwLock<HashMap<String, Arc<dyn SystemTableSource>>>,
    models: Arc<ModelRegistry>,
    /// Bumped on every registration (tables, KBs, images, models). Cached
    /// plans are valid only for the version they were built against:
    /// re-registering a table changes both its contents and its statistics,
    /// so a plan cache keyed on this version self-invalidates.
    version: AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relational table, computing statistics and string
    /// samples for the optimizer.
    pub fn register_table(&self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if cx_obs::is_reserved_name(&name) {
            return Err(Error::InvalidArgument(format!(
                "table name `{name}` is reserved for the cx system schema"
            )));
        }
        let stats = TableStats::compute(&table)?;
        let mut samples = Vec::new();
        for field in table.schema().fields() {
            if field.data_type == cx_storage::DataType::Utf8 {
                let col = table.column_by_name(&field.name)?;
                let values = col.utf8_values()?;
                let stride = ((values.len() / SAMPLE_CAP).max(1)) | 1;
                let sample: Vec<String> =
                    values.iter().step_by(stride).take(SAMPLE_CAP).cloned().collect();
                samples.push(((name.clone(), field.name.clone()), sample));
            }
        }
        self.stats.write().insert(name.clone(), stats);
        let mut sample_map = self.samples.write();
        for (key, sample) in samples {
            sample_map.insert(key, sample);
        }
        self.tables.write().insert(name, Arc::new(table));
        // Release pairs with the Acquire in `version()`: a reader that
        // observes the new version also observes the registration writes
        // above, so a plan tagged with a version can never have been built
        // from older catalog state than that version names.
        self.version.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// The catalog's change version (see the field docs). Acquire pairs
    /// with the Release bump in the registration paths.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Registers a knowledge base; its `(label, category)` export becomes
    /// the scannable relation `<name>`.
    pub fn register_kb(&self, name: impl Into<String>, kb: KnowledgeBase) -> Result<()> {
        let name = name.into();
        let export = kb.label_category_table()?;
        self.kbs.write().insert(name.clone(), Arc::new(kb));
        self.register_table(name, export)
    }

    /// Registers an image store: `<name>.meta` (metadata only, no model
    /// cost) and `<name>.detections` (runs `detector` over every image —
    /// the expensive path whose placement the optimizer is meant to avoid
    /// when a date filter exists; see the Figure 2 experiment).
    pub fn register_images(
        &self,
        name: impl Into<String>,
        store: ImageStore,
        detector: &ObjectDetector,
    ) -> Result<()> {
        let name = name.into();
        let meta = store.metadata_table()?;
        let detections = detector.detections_table(store.images())?;
        self.image_stores.write().insert(name.clone(), Arc::new(store));
        self.register_table(format!("{name}.meta"), meta)?;
        self.register_table(format!("{name}.detections"), detections)
    }

    /// Registers a representation model.
    pub fn register_model(&self, model: Arc<dyn EmbeddingModel>) {
        self.models.register(model);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Registers a live system-table source under the reserved `cx.*`
    /// schema. Re-registering the same name replaces the source (a new
    /// server over the same engine takes over its telemetry tables).
    pub fn register_system_table(&self, source: Arc<dyn SystemTableSource>) -> Result<()> {
        let name = source.name().to_string();
        if !name.starts_with("cx.") {
            return Err(Error::InvalidArgument(format!(
                "system table `{name}` must live in the reserved cx schema"
            )));
        }
        self.system_tables.write().insert(name, source);
        self.version.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Resolves a system-table source.
    pub fn system_table(&self, name: &str) -> Option<Arc<dyn SystemTableSource>> {
        self.system_tables.read().get(name).cloned()
    }

    /// Snapshot of all system-table sources (for the physical planner).
    pub fn system_tables_snapshot(&self) -> HashMap<String, Arc<dyn SystemTableSource>> {
        self.system_tables.read().clone()
    }

    /// Registered system-table names, sorted.
    pub fn system_table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.system_tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves a table.
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(name).cloned()
    }

    /// Resolves a knowledge base.
    pub fn kb(&self, name: &str) -> Option<Arc<KnowledgeBase>> {
        self.kbs.read().get(name).cloned()
    }

    /// Resolves an image store.
    pub fn images(&self, name: &str) -> Option<Arc<ImageStore>> {
        self.image_stores.read().get(name).cloned()
    }

    /// The model registry.
    pub fn models(&self) -> &Arc<ModelRegistry> {
        &self.models
    }

    /// Statistics snapshot for the optimizer.
    pub fn stats_snapshot(&self) -> HashMap<String, TableStats> {
        self.stats.read().clone()
    }

    /// Sample snapshot for the optimizer.
    pub fn samples_snapshot(&self) -> HashMap<(String, String), Vec<String>> {
        self.samples.read().clone()
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of all tables (for the physical planner).
    pub fn tables_snapshot(&self) -> HashMap<String, Arc<Table>> {
        self.tables.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_storage::{Column, DataType, Field, Schema};
    use cx_vision::{DetectorNoise, SyntheticImage};

    fn table() -> Table {
        Table::from_columns(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_strings(["a", "b"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn register_table_collects_stats_and_samples() {
        let c = Catalog::new();
        c.register_table("t", table()).unwrap();
        assert!(c.table("t").is_some());
        let stats = c.stats_snapshot();
        assert_eq!(stats["t"].row_count, 2);
        let samples = c.samples_snapshot();
        assert_eq!(samples[&("t".to_string(), "name".to_string())].len(), 2);
        assert!(!samples.contains_key(&("t".to_string(), "id".to_string())));
    }

    #[test]
    fn version_bumps_on_every_registration() {
        let c = Catalog::new();
        assert_eq!(c.version(), 0);
        c.register_table("t", table()).unwrap();
        let v1 = c.version();
        assert!(v1 > 0);
        // Re-registering (contents/stats change) bumps again.
        c.register_table("t", table()).unwrap();
        assert!(c.version() > v1);
        let v2 = c.version();
        c.register_model(Arc::new(cx_embed::HashNGramModel::new(1)));
        assert!(c.version() > v2);
        let v3 = c.version();
        let mut kb = KnowledgeBase::new();
        kb.assert_is_a("boots", "shoes");
        c.register_kb("kb", kb).unwrap();
        assert!(c.version() > v3);
    }

    #[derive(Debug)]
    struct OneRow {
        schema: Arc<cx_storage::Schema>,
    }

    impl OneRow {
        fn new() -> Self {
            OneRow { schema: Arc::new(Schema::new(vec![Field::required("v", DataType::Int64)])) }
        }
    }

    impl SystemTableSource for OneRow {
        fn name(&self) -> &str {
            "cx.onerow"
        }
        fn schema(&self) -> Arc<cx_storage::Schema> {
            self.schema.clone()
        }
        fn snapshot(&self) -> Result<Vec<cx_storage::Chunk>> {
            Ok(vec![cx_storage::Chunk::new(
                self.schema.clone(),
                vec![Column::from_i64(vec![7])],
            )?])
        }
    }

    #[test]
    fn reserved_schema_is_enforced() {
        let c = Catalog::new();
        let err = c.register_table("cx.queries", table()).unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
        assert!(c.register_system_table(Arc::new(OneRow::new())).is_ok());
        assert!(c.system_table("cx.onerow").is_some());
        assert_eq!(c.system_table_names(), vec!["cx.onerow".to_string()]);
        // System tables live in their own namespace, not the user one.
        assert!(c.table("cx.onerow").is_none());
        // A source outside the reserved schema is rejected.
        #[derive(Debug)]
        struct BadName(Arc<cx_storage::Schema>);
        impl SystemTableSource for BadName {
            fn name(&self) -> &str {
                "products"
            }
            fn schema(&self) -> Arc<cx_storage::Schema> {
                self.0.clone()
            }
            fn snapshot(&self) -> Result<Vec<cx_storage::Chunk>> {
                Ok(vec![])
            }
        }
        let bad = BadName(Arc::new(Schema::new(vec![Field::required("v", DataType::Int64)])));
        assert!(c.register_system_table(Arc::new(bad)).is_err());
    }

    #[test]
    fn system_table_registration_bumps_version() {
        let c = Catalog::new();
        let v0 = c.version();
        c.register_system_table(Arc::new(OneRow::new())).unwrap();
        assert!(c.version() > v0);
    }

    #[test]
    fn register_kb_exposes_relation() {
        let c = Catalog::new();
        let mut kb = KnowledgeBase::new();
        kb.assert_is_a("boots", "shoes");
        c.register_kb("kb", kb).unwrap();
        assert!(c.kb("kb").is_some());
        let t = c.table("kb").unwrap();
        assert_eq!(t.schema().names(), vec!["label", "category"]);
    }

    #[test]
    fn register_images_exposes_meta_and_detections() {
        let c = Catalog::new();
        let mut store = ImageStore::new();
        store.add(SyntheticImage {
            id: 1,
            date_taken: 1000,
            source: "review".into(),
            latent_objects: vec!["boots".into()],
        });
        let det = ObjectDetector::with_noise("d", 1, DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 });
        c.register_images("imgs", store, &det).unwrap();
        assert!(c.table("imgs.meta").is_some());
        let d = c.table("imgs.detections").unwrap();
        assert_eq!(d.num_rows(), 1);
        assert_eq!(det.invocations(), 1);
        assert_eq!(
            c.table_names(),
            vec!["imgs.detections".to_string(), "imgs.meta".to_string()]
        );
    }
}

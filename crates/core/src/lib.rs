//! The context-rich analytical engine — the paper's primary contribution.
//!
//! "We envision an analytical engine that declaratively combines
//! context-rich processing with traditional data sources to hide from the
//! user the complexity of logical and physical optimization, underlying
//! hardware, and resulting on-the-fly data integration." (Section I)
//!
//! This crate assembles every substrate into that engine:
//!
//! * [`Catalog`] — the polystore surface: relational tables, knowledge
//!   bases (exported as relations), image stores with simulated detection,
//!   and named representation models,
//! * [`Query`] — the declarative builder mixing relational verbs
//!   (`filter`, `join`, `aggregate`, …) with the paper's semantic verbs
//!   (`semantic_filter`, `semantic_join`, `semantic_group_by`),
//! * [`Engine`] — end-to-end processing: statistics, holistic logical
//!   optimization, cost-based physical planning, vectorized execution,
//!   and EXPLAIN with the rule trace,
//! * [`hardware_bridge`] — maps optimized plans onto simulated
//!   heterogeneous topologies (Section VI / Figure 5).
//!
//! ```
//! use context_engine::{Engine, EngineConfig};
//! use cx_expr::{col, lit};
//! use cx_storage::{Column, Field, Schema, Table, DataType};
//! use cx_embed::HashNGramModel;
//! use std::sync::Arc;
//!
//! let mut engine = Engine::new(EngineConfig::default());
//! engine.register_model(Arc::new(HashNGramModel::new(42)));
//! let products = Table::from_columns(
//!     Schema::new(vec![
//!         Field::new("name", DataType::Utf8),
//!         Field::new("price", DataType::Float64),
//!     ]),
//!     vec![
//!         Column::from_strings(["boots", "mug", "boots"]),
//!         Column::from_f64(vec![30.0, 8.0, 55.0]),
//!     ],
//! ).unwrap();
//! engine.register_table("products", products).unwrap();
//!
//! let query = engine.table("products").unwrap()
//!     .filter(col("price").gt(lit(20.0)))
//!     .semantic_filter("name", "boots", "hash-ngram", 0.99);
//! let result = engine.execute(&query).unwrap();
//! assert_eq!(result.table.num_rows(), 2);
//! ```

pub mod catalog;
pub mod engine;
pub mod hardware_bridge;
pub mod query;

pub use catalog::Catalog;
pub use engine::{Engine, EngineConfig, PlannedQuery, QueryResult};
pub use hardware_bridge::{plan_on_topology, HardwareReport};
pub use query::Query;

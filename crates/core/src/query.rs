//! The declarative query builder.
//!
//! Users say *what* (Section II's requirement), mixing relational and
//! semantic verbs; the engine decides *how*.

use cx_exec::logical::{
    AggSpec, JoinType, LimitCount, LogicalPlan, SemanticJoinSpec, SemanticTarget, SortKey,
};
use cx_expr::Expr;
use cx_storage::Schema;
use std::sync::Arc;

/// Default name of the appended similarity column of semantic joins.
pub const DEFAULT_SCORE_COLUMN: &str = "similarity";

/// A query under construction: a thin, fluent wrapper over
/// [`LogicalPlan`]. Obtain one from [`crate::Engine::table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    plan: LogicalPlan,
}

impl Query {
    /// A query scanning `source` with the given schema (normally built via
    /// [`crate::Engine::table`], which resolves the schema for you).
    pub fn scan(source: impl Into<String>, schema: Schema) -> Self {
        Query {
            plan: LogicalPlan::Scan {
                source: source.into(),
                schema: Arc::new(schema),
            },
        }
    }

    /// Wraps an existing logical plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        Query { plan }
    }

    /// The underlying logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// Keeps rows satisfying `predicate`.
    pub fn filter(self, predicate: Expr) -> Self {
        Query {
            plan: LogicalPlan::Filter { predicate, input: Box::new(self.plan) },
        }
    }

    /// Projects expressions under output names.
    pub fn select(self, exprs: Vec<(Expr, &str)>) -> Self {
        Query {
            plan: LogicalPlan::Project {
                exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
                input: Box::new(self.plan),
            },
        }
    }

    /// Projects plain columns by name.
    pub fn select_columns(self, names: &[&str]) -> Self {
        let exprs = names
            .iter()
            .map(|n| (Expr::Column(n.to_string()), n.to_string()))
            .collect();
        Query {
            plan: LogicalPlan::Project { exprs, input: Box::new(self.plan) },
        }
    }

    /// Equi-joins with `other` on `(left, right)` column pairs.
    pub fn join(self, other: Query, on: &[(&str, &str)], join_type: JoinType) -> Self {
        Query {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                on: on
                    .iter()
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .collect(),
                join_type,
            },
        }
    }

    /// Cartesian product with `other`.
    pub fn cross_join(self, other: Query) -> Self {
        Query {
            plan: LogicalPlan::CrossJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Semantic select (Section IV): keep rows whose `column` is within
    /// `threshold` cosine similarity of `target` under `model`.
    pub fn semantic_filter(self, column: &str, target: &str, model: &str, threshold: f32) -> Self {
        Query {
            plan: LogicalPlan::SemanticFilter {
                input: Box::new(self.plan),
                column: column.to_string(),
                target: SemanticTarget::Text(target.to_string()),
                model: model.to_string(),
                threshold,
            },
        }
    }

    /// Semantic select whose probe text is a prepared-statement parameter:
    /// `slot` is bound to a UTF8 value at execute time. The query can only
    /// run through a prepared handle (or after
    /// [`LogicalPlan::bind_params`]).
    pub fn semantic_filter_param(
        self,
        column: &str,
        slot: usize,
        model: &str,
        threshold: f32,
    ) -> Self {
        Query {
            plan: LogicalPlan::SemanticFilter {
                input: Box::new(self.plan),
                column: column.to_string(),
                target: SemanticTarget::Param(slot),
                model: model.to_string(),
                threshold,
            },
        }
    }

    /// Semantic join (Section IV): embedding-space threshold join; appends
    /// a [`DEFAULT_SCORE_COLUMN`] similarity column.
    pub fn semantic_join(
        self,
        other: Query,
        left_column: &str,
        right_column: &str,
        model: &str,
        threshold: f32,
    ) -> Self {
        self.semantic_join_scored(
            other,
            left_column,
            right_column,
            model,
            threshold,
            DEFAULT_SCORE_COLUMN,
        )
    }

    /// Semantic join with an explicit score-column name.
    pub fn semantic_join_scored(
        self,
        other: Query,
        left_column: &str,
        right_column: &str,
        model: &str,
        threshold: f32,
        score_column: &str,
    ) -> Self {
        Query {
            plan: LogicalPlan::SemanticJoin {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                spec: SemanticJoinSpec {
                    left_column: left_column.to_string(),
                    right_column: right_column.to_string(),
                    model: model.to_string(),
                    threshold,
                    score_column: score_column.to_string(),
                },
            },
        }
    }

    /// Semantic group-by (Section IV): clusters `column` by model
    /// similarity and aggregates per cluster.
    pub fn semantic_group_by(
        self,
        column: &str,
        model: &str,
        threshold: f32,
        aggs: Vec<AggSpec>,
    ) -> Self {
        Query {
            plan: LogicalPlan::SemanticGroupBy {
                input: Box::new(self.plan),
                column: column.to_string(),
                model: model.to_string(),
                threshold,
                aggs,
            },
        }
    }

    /// Hash aggregation over `group_by` keys.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Self {
        Query {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by: group_by.iter().map(|s| s.to_string()).collect(),
                aggs,
            },
        }
    }

    /// Sorts by `(column, ascending)` keys.
    pub fn sort(self, keys: &[(&str, bool)]) -> Self {
        Query {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys: keys
                    .iter()
                    .map(|(c, asc)| SortKey { column: c.to_string(), ascending: *asc })
                    .collect(),
            },
        }
    }

    /// First `n` rows.
    pub fn limit(self, n: usize) -> Self {
        Query {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                n: LimitCount::Fixed(n),
            },
        }
    }

    /// First `$slot` rows: a limit whose count is a prepared-statement
    /// parameter, bound to a non-negative Int64 at execute time.
    pub fn limit_param(self, slot: usize) -> Self {
        Query {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                n: LimitCount::Param(slot),
            },
        }
    }

    /// Duplicate elimination over all columns.
    pub fn distinct(self) -> Self {
        Query {
            plan: LogicalPlan::Distinct { input: Box::new(self.plan) },
        }
    }

    /// Concatenates with `other` (schemas must match).
    pub fn union(self, other: Query) -> Self {
        Query {
            plan: LogicalPlan::Union { inputs: vec![self.plan, other.plan] },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::logical::AggFunc;
    use cx_expr::{col, lit};
    use cx_storage::{DataType, Field};

    fn q() -> Query {
        Query::scan(
            "products",
            Schema::new(vec![
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ]),
        )
    }

    #[test]
    fn fluent_composition_builds_expected_tree() {
        let query = q()
            .filter(col("price").gt(lit(20.0)))
            .semantic_filter("name", "clothes", "m", 0.9)
            .limit(5);
        let s = query.plan().display_indent();
        assert!(s.starts_with("Limit: 5"));
        assert!(s.contains("SemanticFilter"));
        assert!(s.contains("Filter: (price > 20)"));
        assert!(s.contains("Scan: products"));
    }

    #[test]
    fn semantic_join_appends_default_score() {
        let kb = Query::scan(
            "kb",
            Schema::new(vec![Field::new("label", DataType::Utf8)]),
        );
        let query = q().semantic_join(kb, "name", "label", "m", 0.85);
        let schema = query.plan().schema().unwrap();
        assert!(schema.contains(DEFAULT_SCORE_COLUMN));
    }

    #[test]
    fn aggregate_and_select() {
        let query = q()
            .aggregate(&["name"], vec![AggSpec::new(AggFunc::Avg, "price", "avg_price")])
            .select(vec![(col("avg_price").mul(lit(2.0)), "double")]);
        assert_eq!(query.plan().schema().unwrap().names(), vec!["double"]);
    }

    #[test]
    fn select_columns_shorthand() {
        let query = q().select_columns(&["price"]);
        assert_eq!(query.plan().schema().unwrap().names(), vec!["price"]);
    }
}

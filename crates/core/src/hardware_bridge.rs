//! Bridges optimized logical plans onto simulated hardware topologies.
//!
//! Section VI asks how to "provision these resources correctly, how to
//! place, split, and schedule the execution". This module linearizes an
//! optimized plan into operator resource profiles (flops/bytes derived
//! from the cardinality and cost models) and runs the placement optimizer
//! plus the execution simulator over a device topology — producing the
//! estimated-vs-simulated comparison the Figure 5 experiment reports.

use cx_exec::logical::LogicalPlan;
use cx_hardware::placement::place_single_device;
use cx_hardware::{place_pipeline, simulate_plan, OperatorClass, OperatorProfile, PlacementPlan, SimulationResult, Topology};
use cx_optimizer::{estimate_rows, OptimizerContext};

/// Estimated bytes per row (schema width proxy).
fn row_bytes(plan: &LogicalPlan) -> u64 {
    plan.schema().map(|s| s.len() as u64 * 16).unwrap_or(64)
}

/// Maps a plan node to its operator class and per-row flop weight.
fn classify(plan: &LogicalPlan) -> (OperatorClass, f64) {
    match plan {
        LogicalPlan::Scan { .. } => (OperatorClass::Scan, 4.0),
        LogicalPlan::Filter { .. } => (OperatorClass::Filter, 8.0),
        LogicalPlan::Project { .. } => (OperatorClass::Filter, 4.0),
        LogicalPlan::Join { .. } => (OperatorClass::HashJoin, 80.0),
        LogicalPlan::CrossJoin { .. } => (OperatorClass::HashJoin, 200.0),
        // Semantic operators: inference-dominated, flops per row covers the
        // embedding (dim 100 MACs × subword fan-in) plus kernel work.
        LogicalPlan::SemanticFilter { .. } => (OperatorClass::ModelInference, 60_000.0),
        LogicalPlan::SemanticJoin { .. } => (OperatorClass::SimilaritySearch, 120_000.0),
        LogicalPlan::SemanticGroupBy { .. } => (OperatorClass::SimilaritySearch, 90_000.0),
        LogicalPlan::Aggregate { .. } => (OperatorClass::Aggregate, 40.0),
        LogicalPlan::Sort { .. } => (OperatorClass::Sort, 60.0),
        LogicalPlan::Limit { .. } | LogicalPlan::Distinct { .. } | LogicalPlan::Union { .. } => {
            (OperatorClass::Scan, 2.0)
        }
    }
}

/// Linearizes `plan` into a bottom-up pipeline of operator profiles.
///
/// Bushy plans are flattened in post-order — a simplification (the
/// simulator models a single execution lane), adequate for studying
/// placement trade-offs.
pub fn profile_pipeline(plan: &LogicalPlan, ctx: &OptimizerContext) -> Vec<OperatorProfile> {
    let mut out = Vec::new();
    walk(plan, ctx, &mut out);
    out
}

fn walk(plan: &LogicalPlan, ctx: &OptimizerContext, out: &mut Vec<OperatorProfile>) {
    for child in plan.children() {
        walk(child, ctx, out);
    }
    let rows_out = estimate_rows(plan, ctx).max(1.0);
    let rows_in: f64 = plan
        .children()
        .iter()
        .map(|c| estimate_rows(c, ctx))
        .sum::<f64>()
        .max(1.0);
    let (class, flops_per_row) = classify(plan);
    out.push(OperatorProfile::new(
        class,
        rows_in * flops_per_row,
        (rows_in as u64).saturating_mul(row_bytes(plan)),
        (rows_out as u64).saturating_mul(row_bytes(plan)),
    ));
}

/// The outcome of planning a query on a topology.
#[derive(Debug, Clone)]
pub struct HardwareReport {
    /// Optimal heterogeneous placement.
    pub placement: PlacementPlan,
    /// Best single-device baseline.
    pub single_device: Option<PlacementPlan>,
    /// Simulated execution of the optimal placement.
    pub simulated: SimulationResult,
}

impl HardwareReport {
    /// Speedup of heterogeneous placement over the single-device baseline.
    pub fn speedup_vs_single(&self) -> Option<f64> {
        self.single_device
            .as_ref()
            .map(|s| s.total_ns / self.placement.total_ns)
    }
}

/// Places the (optimized) `plan` onto `topology`; `None` when the pipeline
/// cannot run there at all.
pub fn plan_on_topology(
    plan: &LogicalPlan,
    ctx: &OptimizerContext,
    topology: &Topology,
    seed: u64,
) -> Option<HardwareReport> {
    let pipeline = profile_pipeline(plan, ctx);
    let placement = place_pipeline(&pipeline, topology)?;
    let single_device = place_single_device(&pipeline, topology);
    let simulated = simulate_plan(&placement, topology, seed);
    Some(HardwareReport { placement, single_device, simulated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_embed::ModelRegistry;
    use cx_exec::logical::SemanticJoinSpec;
    use cx_expr::{col, lit};
    use cx_optimizer::OptimizerConfig;
    use cx_storage::{DataType, Field, Schema};
    use std::sync::Arc;

    fn ctx() -> OptimizerContext {
        OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all())
    }

    fn semantic_plan() -> LogicalPlan {
        let products = LogicalPlan::Scan {
            source: "p".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ])),
        };
        let kb = LogicalPlan::Scan {
            source: "kb".into(),
            schema: Arc::new(Schema::new(vec![Field::new("label", DataType::Utf8)])),
        };
        LogicalPlan::Filter {
            predicate: col("price").gt(lit(20.0)),
            input: Box::new(LogicalPlan::SemanticJoin {
                left: Box::new(products),
                right: Box::new(kb),
                spec: SemanticJoinSpec {
                    left_column: "name".into(),
                    right_column: "label".into(),
                    model: "m".into(),
                    threshold: 0.9,
                    score_column: "sim".into(),
                },
            }),
        }
    }

    #[test]
    fn pipeline_profile_covers_all_nodes() {
        let c = ctx();
        let plan = semantic_plan();
        let pipeline = profile_pipeline(&plan, &c);
        assert_eq!(pipeline.len(), plan.node_count());
        // The semantic join stage dominates flops.
        let max = pipeline
            .iter()
            .max_by(|a, b| a.flops.partial_cmp(&b.flops).unwrap())
            .unwrap();
        assert_eq!(max.class, OperatorClass::SimilaritySearch);
    }

    #[test]
    fn heterogeneous_beats_cpu_only_for_semantic_plans() {
        let c = ctx();
        let plan = semantic_plan();
        let cpu = plan_on_topology(&plan, &c, &Topology::cpu_only(), 1).unwrap();
        let het = plan_on_topology(&plan, &c, &Topology::cpu_gpu_tpu(), 1).unwrap();
        assert!(het.placement.total_ns <= cpu.placement.total_ns);
        // Simulation stays near the estimate.
        let rel = (het.simulated.total_ns - het.placement.total_ns).abs() / het.placement.total_ns;
        assert!(rel < 0.15, "rel {rel}");
    }

    #[test]
    fn speedup_reported() {
        let c = ctx();
        let plan = semantic_plan();
        let het = plan_on_topology(&plan, &c, &Topology::cpu_gpu_tpu(), 1).unwrap();
        let speedup = het.speedup_vs_single().unwrap();
        assert!(speedup >= 1.0, "speedup {speedup}");
    }
}

//! The name-resolved expression AST and its builder API.

use cx_storage::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// Whether the operator is boolean conjunction/disjunction.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression over named columns.
///
/// Constructed fluently: `col("price").gt(lit(20.0)).and(col("type").eq(lit("shoes")))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A constant.
    Literal(Scalar),
    /// A prepared-statement placeholder (`$slot`), bound to a concrete
    /// [`Scalar`] at execute time via [`Expr::bind_params`] (or the
    /// physical-plan rebinding path). An unbound parameter cannot be
    /// evaluated.
    Parameter(usize),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// NULL test (never NULL itself).
    IsNull(Box<Expr>),
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// A literal.
pub fn lit(value: impl Into<Scalar>) -> Expr {
    Expr::Literal(value.into())
}

/// A prepared-statement parameter placeholder for `slot` (displayed as
/// `$slot`).
pub fn param(slot: usize) -> Expr {
    Expr::Parameter(slot)
}

#[allow(clippy::should_implement_trait)]
impl Expr {
    fn binary(self, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinOp::Eq, other)
    }
    /// `self != other`
    pub fn not_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::NotEq, other)
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinOp::Lt, other)
    }
    /// `self <= other`
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::LtEq, other)
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinOp::Gt, other)
    }
    /// `self >= other`
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinOp::GtEq, other)
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinOp::And, other)
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinOp::Or, other)
    }
    /// `self + other`
    pub fn add(self, other: Expr) -> Expr {
        self.binary(BinOp::Add, other)
    }
    /// `self - other`
    pub fn sub(self, other: Expr) -> Expr {
        self.binary(BinOp::Sub, other)
    }
    /// `self * other`
    pub fn mul(self, other: Expr) -> Expr {
        self.binary(BinOp::Mul, other)
    }
    /// `self / other`
    pub fn div(self, other: Expr) -> Expr {
        self.binary(BinOp::Div, other)
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// The set of column names the expression references.
    pub fn referenced_columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(name) => {
                out.insert(name.clone());
            }
            Expr::Literal(_) | Expr::Parameter(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(inner) | Expr::IsNull(inner) => inner.collect_columns(out),
        }
    }

    /// Collects every parameter slot referenced by the expression into
    /// `out`.
    pub fn collect_params(&self, out: &mut BTreeSet<usize>) {
        match self {
            Expr::Parameter(slot) => {
                out.insert(*slot);
            }
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
            Expr::Not(inner) | Expr::IsNull(inner) => inner.collect_params(out),
        }
    }

    /// Whether the expression contains any [`Expr::Parameter`].
    pub fn has_params(&self) -> bool {
        match self {
            Expr::Parameter(_) => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => left.has_params() || right.has_params(),
            Expr::Not(inner) | Expr::IsNull(inner) => inner.has_params(),
        }
    }

    /// Substitutes every [`Expr::Parameter`] with the matching value from
    /// `params` (slot `i` takes `params[i]`). Errors on out-of-range slots.
    pub fn bind_params(&self, params: &[Scalar]) -> cx_storage::Result<Expr> {
        Ok(match self {
            Expr::Parameter(slot) => Expr::Literal(
                params
                    .get(*slot)
                    .cloned()
                    .ok_or_else(|| missing_param(*slot, params.len()))?,
            ),
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind_params(params)?),
                right: Box::new(right.bind_params(params)?),
            },
            Expr::Not(inner) => Expr::Not(Box::new(inner.bind_params(params)?)),
            Expr::IsNull(inner) => Expr::IsNull(Box::new(inner.bind_params(params)?)),
        })
    }

    /// Replaces every [`Expr::Literal`] with an [`Expr::Parameter`] whose
    /// slot is the literal's position in `out`, appending the lifted
    /// scalar values to `out` in encounter order (left before right,
    /// outer before inner operands are never reordered). This is the
    /// inverse of [`Expr::bind_params`]:
    /// `e.lift_literals(&mut v).bind_params(&v) == e` for any
    /// parameter-free expression.
    ///
    /// Intended for auto-parameterization of ad-hoc statements, so the
    /// caller must ensure the expression has no pre-existing
    /// [`Expr::Parameter`]s (their slots would collide with the lifted
    /// ones); existing parameters are passed through unchanged.
    pub fn lift_literals(&self, out: &mut Vec<Scalar>) -> Expr {
        match self {
            Expr::Literal(scalar) => {
                let slot = out.len();
                out.push(scalar.clone());
                Expr::Parameter(slot)
            }
            Expr::Column(_) | Expr::Parameter(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.lift_literals(out)),
                right: Box::new(right.lift_literals(out)),
            },
            Expr::Not(inner) => Expr::Not(Box::new(inner.lift_literals(out))),
            Expr::IsNull(inner) => Expr::IsNull(Box::new(inner.lift_literals(out))),
        }
    }

    /// Rewrites column references through `map` (names absent from the map
    /// are left untouched). Used by pushdown and data-induced-predicate
    /// rules to move predicates across renaming boundaries.
    pub fn rename_columns(&self, map: &std::collections::HashMap<String, String>) -> Expr {
        match self {
            Expr::Column(name) => match map.get(name) {
                Some(new) => Expr::Column(new.clone()),
                None => self.clone(),
            },
            Expr::Literal(_) | Expr::Parameter(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.rename_columns(map)),
                right: Box::new(right.rename_columns(map)),
            },
            Expr::Not(inner) => Expr::Not(Box::new(inner.rename_columns(map))),
            Expr::IsNull(inner) => Expr::IsNull(Box::new(inner.rename_columns(map))),
        }
    }

    /// Splits a conjunction into its AND-ed factors
    /// (`a AND (b AND c)` → `[a, b, c]`).
    pub fn split_conjunction(&self) -> Vec<Expr> {
        match self {
            Expr::Binary { op: BinOp::And, left, right } => {
                let mut out = left.split_conjunction();
                out.extend(right.split_conjunction());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// AND-combines a list of predicates (`None` if empty).
    pub fn conjunction(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(exprs.into_iter().fold(first, |acc, e| acc.and(e)))
    }
}

/// The error for a parameter slot with no bound value.
pub(crate) fn missing_param(slot: usize, provided: usize) -> cx_storage::Error {
    cx_storage::Error::InvalidArgument(format!(
        "parameter ${slot} has no bound value ({provided} provided)"
    ))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(Scalar::Utf8(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(slot) => write!(f, "${slot}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(inner) => write!(f, "NOT ({inner})"),
            Expr::IsNull(inner) => write!(f, "({inner}) IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let e = col("price").gt(lit(20.0)).and(col("type").eq(lit("shoes")));
        assert_eq!(e.to_string(), "((price > 20) AND (type = 'shoes'))");
    }

    #[test]
    fn referenced_columns() {
        let e = col("a").add(col("b")).gt(lit(1i64)).or(col("a").is_null());
        let cols = e.referenced_columns();
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn split_and_rebuild_conjunction() {
        let e = col("a").gt(lit(1i64)).and(col("b").lt(lit(2i64))).and(col("c").eq(lit(3i64)));
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        let rebuilt = Expr::conjunction(parts).unwrap();
        assert_eq!(rebuilt, e);
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn parameters_display_collect_and_bind() {
        let e = col("price").gt(param(1)).and(col("name").eq(param(0)));
        assert_eq!(e.to_string(), "((price > $1) AND (name = $0))");
        assert!(e.has_params());
        let mut slots = BTreeSet::new();
        e.collect_params(&mut slots);
        assert_eq!(slots.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        let bound = e.bind_params(&[Scalar::from("boots"), Scalar::Float64(9.5)]).unwrap();
        assert_eq!(
            bound,
            col("price").gt(lit(9.5)).and(col("name").eq(lit("boots")))
        );
        assert!(!bound.has_params());
        // Out-of-range slot errors instead of silently passing through.
        assert!(e.bind_params(&[Scalar::from("boots")]).is_err());
    }

    #[test]
    fn lift_literals_roundtrips_through_bind() {
        let e = col("price")
            .gt(lit(20.0))
            .and(col("name").eq(lit("boots")))
            .or(col("n").add(lit(2i64)).is_null());
        let mut lifted = Vec::new();
        let template = e.lift_literals(&mut lifted);
        assert_eq!(
            lifted,
            vec![Scalar::Float64(20.0), Scalar::from("boots"), Scalar::Int64(2)]
        );
        // Every literal became a slot, in encounter order.
        assert_eq!(
            template.to_string(),
            "(((price > $0) AND (name = $1)) OR ((n + $2)) IS NULL)"
        );
        // Lift ∘ bind is the identity.
        assert_eq!(template.bind_params(&lifted).unwrap(), e);
        // Literal-free expressions lift to themselves.
        let plain = col("a").eq(col("b"));
        let mut none = Vec::new();
        assert_eq!(plain.lift_literals(&mut none), plain);
        assert!(none.is_empty());
    }

    #[test]
    fn or_is_not_split() {
        let e = col("a").gt(lit(1i64)).or(col("b").lt(lit(2i64)));
        assert_eq!(e.split_conjunction().len(), 1);
    }
}

//! Scalar expressions for the context-rich analytical engine.
//!
//! Expressions are written against column *names* ([`Expr`]), bound against a
//! concrete [`cx_storage::Schema`] into index-resolved [`BoundExpr`]s, and
//! evaluated vectorized over [`cx_storage::Chunk`]s.
//!
//! ```
//! use cx_expr::{col, lit};
//! use cx_storage::{Chunk, Column, Field, Schema, DataType};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::new(vec![Field::new("price", DataType::Float64)]));
//! let chunk = Chunk::new(schema.clone(), vec![Column::from_f64(vec![5.0, 25.0])]).unwrap();
//!
//! let pred = col("price").gt(lit(20.0));
//! let bound = pred.bind(&schema).unwrap();
//! let mask = cx_expr::eval_predicate(&bound, &chunk).unwrap();
//! assert_eq!(mask.set_indices(), vec![1]);
//! ```

pub mod bind;
pub mod eval;
pub mod expr;
pub mod fold;
pub mod selectivity;

pub use bind::BoundExpr;
pub use eval::{eval, eval_predicate};
pub use expr::{col, lit, param, BinOp, Expr};
pub use fold::fold_constants;
pub use selectivity::estimate_selectivity;

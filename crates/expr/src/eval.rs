//! Vectorized expression evaluation over chunks.
//!
//! Null semantics follow SQL: comparisons and arithmetic propagate NULL,
//! AND/OR use Kleene three-valued logic, and predicates fold NULL to false
//! when producing selection masks.

use crate::bind::BoundExpr;
use crate::expr::BinOp;
use cx_storage::{Bitmap, Chunk, Column, DataType, Error, Result};

/// Evaluates a bound expression over a chunk, producing one column with the
/// chunk's row count.
pub fn eval(expr: &BoundExpr, chunk: &Chunk) -> Result<Column> {
    match expr {
        BoundExpr::Column { index, .. } => Ok(chunk.column(*index)?.clone()),
        BoundExpr::Literal(v) => Ok(Column::repeat(
            v,
            chunk.num_rows(),
            v.data_type().unwrap_or(DataType::Bool),
        )),
        BoundExpr::Parameter { slot } => Err(Error::InvalidArgument(format!(
            "cannot evaluate unbound parameter ${slot}; bind it first"
        ))),
        BoundExpr::Binary { op, left, right, data_type } => {
            let l = eval(left, chunk)?;
            let r = eval(right, chunk)?;
            eval_binary(*op, &l, &r, *data_type)
        }
        BoundExpr::Not(inner) => {
            let v = eval(inner, chunk)?;
            let (bools, validity) = as_bool_parts(&v)?;
            Ok(Column::Bool {
                values: bools.iter().map(|b| !b).collect(),
                validity,
            })
        }
        BoundExpr::IsNull(inner) => {
            let v = eval(inner, chunk)?;
            let values = (0..v.len()).map(|i| !v.is_valid(i)).collect();
            Ok(Column::Bool { values, validity: None })
        }
    }
}

/// Evaluates a boolean predicate into a selection [`Bitmap`]: set where the
/// predicate is true and non-NULL.
pub fn eval_predicate(expr: &BoundExpr, chunk: &Chunk) -> Result<Bitmap> {
    let col = eval(expr, chunk)?;
    let (bools, _) = as_bool_parts(&col)?;
    Ok(Bitmap::from_bools(
        bools.iter().enumerate().map(|(i, &b)| b && col.is_valid(i)),
    ))
}

fn as_bool_parts(col: &Column) -> Result<(&[bool], Option<Bitmap>)> {
    match col {
        Column::Bool { values, validity } => Ok((values, validity.clone())),
        other => Err(Error::TypeMismatch {
            expected: "BOOL".into(),
            actual: other.data_type().to_string(),
        }),
    }
}

fn eval_binary(op: BinOp, left: &Column, right: &Column, out_type: DataType) -> Result<Column> {
    if op.is_logical() {
        return eval_logical(op, left, right);
    }
    if op.is_comparison() {
        return eval_comparison(op, left, right);
    }
    eval_arithmetic(op, left, right, out_type)
}

/// Kleene AND/OR.
fn eval_logical(op: BinOp, left: &Column, right: &Column) -> Result<Column> {
    let (lv, _) = as_bool_parts(left)?;
    let (rv, _) = as_bool_parts(right)?;
    let n = lv.len();
    let mut values = Vec::with_capacity(n);
    let mut validity = Bitmap::new(0, false);
    let mut has_null = false;
    for i in 0..n {
        let l = if left.is_valid(i) { Some(lv[i]) } else { None };
        let r = if right.is_valid(i) { Some(rv[i]) } else { None };
        let out = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("non-logical op in eval_logical"),
        };
        match out {
            Some(b) => {
                values.push(b);
                validity.push(true);
            }
            None => {
                values.push(false);
                validity.push(false);
                has_null = true;
            }
        }
    }
    Ok(Column::Bool {
        values,
        validity: if has_null { Some(validity) } else { None },
    })
}

fn eval_comparison(op: BinOp, left: &Column, right: &Column) -> Result<Column> {
    let n = left.len();
    // Fast typed paths for the hot combinations; fall back to scalar
    // comparison otherwise.
    let cmp_ok = |ord: std::cmp::Ordering| -> bool {
        use std::cmp::Ordering::*;
        match op {
            BinOp::Eq => ord == Equal,
            BinOp::NotEq => ord != Equal,
            BinOp::Lt => ord == Less,
            BinOp::LtEq => ord != Greater,
            BinOp::Gt => ord == Greater,
            BinOp::GtEq => ord != Less,
            _ => unreachable!("non-comparison op"),
        }
    };

    let mut values = Vec::with_capacity(n);
    let mut validity = Bitmap::new(0, false);
    let mut has_null = false;
    let mut push = |out: Option<bool>, values: &mut Vec<bool>| match out {
        Some(b) => {
            values.push(b);
            validity.push(true);
        }
        None => {
            values.push(false);
            validity.push(false);
            has_null = true;
        }
    };

    match (left, right) {
        (Column::Int64 { values: lv, .. }, Column::Int64 { values: rv, .. }) => {
            for i in 0..n {
                let out = (left.is_valid(i) && right.is_valid(i)).then(|| cmp_ok(lv[i].cmp(&rv[i])));
                push(out, &mut values);
            }
        }
        (Column::Float64 { values: lv, .. }, Column::Float64 { values: rv, .. }) => {
            for i in 0..n {
                let out = if left.is_valid(i) && right.is_valid(i) {
                    lv[i].partial_cmp(&rv[i]).map(cmp_ok)
                } else {
                    None
                };
                push(out, &mut values);
            }
        }
        (Column::Utf8 { values: lv, .. }, Column::Utf8 { values: rv, .. }) => {
            for i in 0..n {
                let out = (left.is_valid(i) && right.is_valid(i)).then(|| cmp_ok(lv[i].cmp(&rv[i])));
                push(out, &mut values);
            }
        }
        _ => {
            for i in 0..n {
                let out = if left.is_valid(i) && right.is_valid(i) {
                    left.get(i).partial_cmp_sql(&right.get(i)).map(cmp_ok)
                } else {
                    None
                };
                push(out, &mut values);
            }
        }
    }
    Ok(Column::Bool {
        values,
        validity: if has_null { Some(validity) } else { None },
    })
}

fn eval_arithmetic(op: BinOp, left: &Column, right: &Column, out_type: DataType) -> Result<Column> {
    let n = left.len();
    // An all-NULL operand (e.g. an untyped NULL literal, which materializes
    // as a null Bool column) makes every output row NULL regardless of the
    // other side: short-circuit before demanding numeric storage.
    if left.null_count() == n || right.null_count() == n {
        return Ok(Column::nulls(out_type, n));
    }
    let lf = numeric_as_f64(left)?;
    let rf = numeric_as_f64(right)?;
    let mut validity = Bitmap::new(0, false);
    let mut has_null = false;
    let mut out_f = Vec::with_capacity(n);
    for i in 0..n {
        if !left.is_valid(i) || !right.is_valid(i) {
            out_f.push(0.0);
            validity.push(false);
            has_null = true;
            continue;
        }
        let (a, b) = (lf[i], rf[i]);
        let v = match op {
            BinOp::Add => Some(a + b),
            BinOp::Sub => Some(a - b),
            BinOp::Mul => Some(a * b),
            // SQL engines raise on division by zero; for an analytical
            // pipeline NULL is friendlier and keeps evaluation total.
            BinOp::Div => (b != 0.0).then(|| a / b),
            _ => unreachable!("non-arithmetic op"),
        };
        match v {
            Some(v) => {
                out_f.push(v);
                validity.push(true);
            }
            None => {
                out_f.push(0.0);
                validity.push(false);
                has_null = true;
            }
        }
    }
    let validity = if has_null { Some(validity) } else { None };
    Ok(match out_type {
        DataType::Float64 => Column::Float64 { values: out_f, validity },
        DataType::Int64 => Column::Int64 {
            values: out_f.iter().map(|v| *v as i64).collect(),
            validity,
        },
        DataType::Timestamp => Column::Timestamp {
            values: out_f.iter().map(|v| *v as i64).collect(),
            validity,
        },
        other => {
            return Err(Error::TypeMismatch {
                expected: "numeric output".into(),
                actual: other.to_string(),
            })
        }
    })
}

fn numeric_as_f64(col: &Column) -> Result<Vec<f64>> {
    Ok(match col {
        Column::Int64 { values, .. } | Column::Timestamp { values, .. } => {
            values.iter().map(|&v| v as f64).collect()
        }
        Column::Float64 { values, .. } => values.clone(),
        other => {
            return Err(Error::TypeMismatch {
                expected: "numeric column".into(),
                actual: other.data_type().to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_storage::Scalar;
    use crate::expr::{col, lit, Expr};
    use cx_storage::{Field, Schema};
    use std::sync::Arc;

    fn chunk() -> Chunk {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ]));
        Chunk::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3, 4]),
                Column::from_f64(vec![10.0, 25.0, 30.0, 5.0]),
                Column::from_strings(["a", "b", "a", "c"]),
            ],
        )
        .unwrap()
    }

    fn run(e: Expr) -> Column {
        let c = chunk();
        let b = e.bind(&Schema::new(c.schema().fields().to_vec())).unwrap();
        eval(&b, &c).unwrap()
    }

    fn run_pred(e: Expr) -> Vec<usize> {
        let c = chunk();
        let b = e.bind(&Schema::new(c.schema().fields().to_vec())).unwrap();
        eval_predicate(&b, &c).unwrap().set_indices()
    }

    #[test]
    fn comparisons() {
        assert_eq!(run_pred(col("price").gt(lit(20.0))), vec![1, 2]);
        assert_eq!(run_pred(col("name").eq(lit("a"))), vec![0, 2]);
        assert_eq!(run_pred(col("id").lt_eq(lit(2i64))), vec![0, 1]);
        // Cross-type numeric comparison.
        assert_eq!(run_pred(col("id").gt_eq(lit(3.0))), vec![2, 3]);
    }

    #[test]
    fn logic() {
        let e = col("price").gt(lit(20.0)).and(col("name").eq(lit("a")));
        assert_eq!(run_pred(e), vec![2]);
        let e = col("price").gt(lit(29.0)).or(col("id").eq(lit(1i64)));
        assert_eq!(run_pred(e), vec![0, 2]);
        let e = col("name").eq(lit("a")).not();
        assert_eq!(run_pred(e), vec![1, 3]);
    }

    #[test]
    fn arithmetic() {
        let c = run(col("price").mul(lit(2.0)));
        assert_eq!(c.f64_values().unwrap(), &[20.0, 50.0, 60.0, 10.0]);
        let c = run(col("id").add(col("id")));
        assert_eq!(c.i64_values().unwrap(), &[2, 4, 6, 8]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let c = run(col("price").div(col("id").sub(col("id"))));
        assert_eq!(c.null_count(), 4);
    }

    #[test]
    fn null_propagation_in_comparison() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let chunk = Chunk::new(
            schema.clone(),
            vec![Column::Int64 {
                values: vec![1, 2, 3],
                validity: Some(Bitmap::from_bools([true, false, true])),
            }],
        )
        .unwrap();
        let b = col("x").gt(lit(0i64)).bind(&schema).unwrap();
        // NULL row is excluded from the mask.
        assert_eq!(eval_predicate(&b, &chunk).unwrap().set_indices(), vec![0, 2]);
        // But IS NULL sees it.
        let b = col("x").is_null().bind(&schema).unwrap();
        assert_eq!(eval_predicate(&b, &chunk).unwrap().set_indices(), vec![1]);
    }

    #[test]
    fn kleene_or_with_null() {
        // (x > 0) OR (x IS NULL): NULL OR TRUE must be TRUE.
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let chunk = Chunk::new(
            schema.clone(),
            vec![Column::Int64 {
                values: vec![5, 0],
                validity: Some(Bitmap::from_bools([false, true])),
            }],
        )
        .unwrap();
        let b = col("x")
            .gt(lit(0i64))
            .or(col("x").is_null())
            .bind(&schema)
            .unwrap();
        assert_eq!(eval_predicate(&b, &chunk).unwrap().set_indices(), vec![0]);
    }

    #[test]
    fn literal_broadcast() {
        let c = run(lit(7i64));
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(3), Scalar::Int64(7));
    }
}

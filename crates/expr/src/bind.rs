//! Binding name-resolved expressions against a schema.

use crate::expr::{BinOp, Expr};
use cx_storage::{DataType, Error, Result, Scalar, Schema};

/// An expression with column references resolved to positions and the output
/// type inferred. Produced by [`Expr::bind`].
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Column at position `index` with type `data_type`.
    Column { index: usize, data_type: DataType },
    Literal(Scalar),
    /// A prepared-statement placeholder surviving into the bound tree.
    /// Its type is unknown until a value is bound (like an untyped NULL);
    /// evaluation fails until [`BoundExpr::bind_params`] replaces it.
    Parameter { slot: usize },
    Binary {
        op: BinOp,
        left: Box<BoundExpr>,
        right: Box<BoundExpr>,
        /// The inferred result type of the operation.
        data_type: DataType,
    },
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
}

impl BoundExpr {
    /// The output type of the expression, when statically known.
    ///
    /// Untyped NULL literals report `None`; every other node has a type.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            BoundExpr::Column { data_type, .. } => Some(*data_type),
            BoundExpr::Literal(s) => s.data_type(),
            BoundExpr::Parameter { .. } => None,
            BoundExpr::Binary { data_type, .. } => Some(*data_type),
            BoundExpr::Not(_) | BoundExpr::IsNull(_) => Some(DataType::Bool),
        }
    }

    /// Whether the bound tree still contains unbound parameters.
    pub fn has_params(&self) -> bool {
        match self {
            BoundExpr::Parameter { .. } => true,
            BoundExpr::Column { .. } | BoundExpr::Literal(_) => false,
            BoundExpr::Binary { left, right, .. } => left.has_params() || right.has_params(),
            BoundExpr::Not(inner) | BoundExpr::IsNull(inner) => inner.has_params(),
        }
    }

    /// Substitutes every parameter with its value from `params` (slot `i`
    /// takes `params[i]`). Binary result types are **re-inferred** from
    /// the now-concrete operand types — at bind time a parameter is
    /// untyped (like an untyped NULL), so e.g. `int_col * $0` was typed
    /// by `int_col` alone; binding `$0 = 0.5` must widen the multiply to
    /// Float64, exactly as the equivalent literal expression would have
    /// been typed. Errors on out-of-range slots and on bindings that make
    /// the expression ill-typed (a string in an arithmetic position).
    pub fn bind_params(&self, params: &[Scalar]) -> Result<BoundExpr> {
        Ok(match self {
            BoundExpr::Parameter { slot } => BoundExpr::Literal(
                params
                    .get(*slot)
                    .cloned()
                    .ok_or_else(|| crate::expr::missing_param(*slot, params.len()))?,
            ),
            BoundExpr::Column { .. } | BoundExpr::Literal(_) => self.clone(),
            BoundExpr::Binary { op, left, right, .. } => {
                let left = left.bind_params(params)?;
                let right = right.bind_params(params)?;
                let data_type = infer_binary_type(*op, &left, &right)?;
                BoundExpr::Binary {
                    op: *op,
                    left: Box::new(left),
                    right: Box::new(right),
                    data_type,
                }
            }
            BoundExpr::Not(inner) => BoundExpr::Not(Box::new(inner.bind_params(params)?)),
            BoundExpr::IsNull(inner) => BoundExpr::IsNull(Box::new(inner.bind_params(params)?)),
        })
    }
}

impl Expr {
    /// Resolves column names against `schema` and type-checks the tree.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        match self {
            Expr::Column(name) => {
                let index = schema.index_of(name)?;
                let data_type = schema.field_at(index)?.data_type;
                Ok(BoundExpr::Column { index, data_type })
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Parameter(slot) => Ok(BoundExpr::Parameter { slot: *slot }),
            Expr::Binary { op, left, right } => {
                let left = left.bind(schema)?;
                let right = right.bind(schema)?;
                let data_type = infer_binary_type(*op, &left, &right)?;
                Ok(BoundExpr::Binary {
                    op: *op,
                    left: Box::new(left),
                    right: Box::new(right),
                    data_type,
                })
            }
            Expr::Not(inner) => {
                let inner = inner.bind(schema)?;
                expect_bool(&inner, "NOT")?;
                Ok(BoundExpr::Not(Box::new(inner)))
            }
            Expr::IsNull(inner) => Ok(BoundExpr::IsNull(Box::new(inner.bind(schema)?))),
        }
    }
}

fn expect_bool(expr: &BoundExpr, what: &str) -> Result<()> {
    match expr.data_type() {
        Some(DataType::Bool) | None => Ok(()),
        Some(t) => Err(Error::TypeMismatch {
            expected: format!("BOOL operand for {what}"),
            actual: t.to_string(),
        }),
    }
}

fn infer_binary_type(op: BinOp, left: &BoundExpr, right: &BoundExpr) -> Result<DataType> {
    let lt = left.data_type();
    let rt = right.data_type();
    if op.is_logical() {
        expect_bool(left, "AND/OR")?;
        expect_bool(right, "AND/OR")?;
        return Ok(DataType::Bool);
    }
    if op.is_comparison() {
        // Untyped NULL compares with anything.
        let (lt, rt) = match (lt, rt) {
            (None, _) | (_, None) => return Ok(DataType::Bool),
            (Some(l), Some(r)) => (l, r),
        };
        let compatible = lt == rt || DataType::common_numeric(lt, rt).is_some();
        if !compatible {
            return Err(Error::TypeMismatch {
                expected: lt.to_string(),
                actual: rt.to_string(),
            });
        }
        return Ok(DataType::Bool);
    }
    // Arithmetic.
    let (lt, rt) = match (lt, rt) {
        (None, other) | (other, None) => {
            let t = other.ok_or_else(|| {
                Error::InvalidArgument("arithmetic on two untyped NULLs".into())
            })?;
            (t, t)
        }
        (Some(l), Some(r)) => (l, r),
    };
    DataType::common_numeric(lt, rt).ok_or_else(|| Error::TypeMismatch {
        expected: format!("numeric operands for {op}"),
        actual: format!("{lt} {op} {rt}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use cx_storage::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("name", DataType::Utf8),
            Field::new("active", DataType::Bool),
        ])
    }

    #[test]
    fn binds_columns_to_indices() {
        let b = col("price").bind(&schema()).unwrap();
        assert_eq!(b, BoundExpr::Column { index: 1, data_type: DataType::Float64 });
        assert!(col("missing").bind(&schema()).is_err());
    }

    #[test]
    fn comparison_types() {
        let b = col("id").gt(lit(1.5)).bind(&schema()).unwrap();
        assert_eq!(b.data_type(), Some(DataType::Bool));
        // String vs number comparison is rejected at bind time.
        assert!(col("name").gt(lit(1i64)).bind(&schema()).is_err());
        // NULL compares with anything.
        assert!(col("name").eq(Expr::Literal(Scalar::Null)).bind(&schema()).is_ok());
    }

    #[test]
    fn arithmetic_types() {
        let b = col("id").add(col("price")).bind(&schema()).unwrap();
        assert_eq!(b.data_type(), Some(DataType::Float64));
        assert!(col("name").add(lit(1i64)).bind(&schema()).is_err());
    }

    #[test]
    fn logical_operands_must_be_bool() {
        assert!(col("active").and(col("active")).bind(&schema()).is_ok());
        assert!(col("id").and(col("active")).bind(&schema()).is_err());
        assert!(col("id").not().bind(&schema()).is_err());
        assert!(col("active").not().bind(&schema()).is_ok());
    }

    #[test]
    fn is_null_is_bool_for_any_input() {
        let b = col("name").is_null().bind(&schema()).unwrap();
        assert_eq!(b.data_type(), Some(DataType::Bool));
    }

    #[test]
    fn binding_reinfers_binary_types() {
        use crate::expr::param;
        // At bind time the parameter is untyped, so `id * $0` adopts the
        // column's Int64; binding a Float64 must widen the multiply to
        // Float64 — exactly the type the equivalent literal expression
        // gets — or prepared results would truncate where ad-hoc ones
        // don't.
        let template = col("id").mul(param(0)).bind(&schema()).unwrap();
        assert!(template.has_params());
        assert_eq!(template.data_type(), Some(DataType::Int64));
        let bound = template.bind_params(&[Scalar::Float64(0.5)]).unwrap();
        assert_eq!(bound.data_type(), Some(DataType::Float64));
        let adhoc = col("id").mul(crate::expr::lit(0.5)).bind(&schema()).unwrap();
        assert_eq!(bound, adhoc);
        // Int binding keeps the integer type.
        let bound = template.bind_params(&[Scalar::Int64(2)]).unwrap();
        assert_eq!(bound.data_type(), Some(DataType::Int64));
        // A binding that makes the expression ill-typed errors instead of
        // evaluating garbage.
        assert!(template.bind_params(&[Scalar::from("nope")]).is_err());
    }
}

//! Constant folding: pre-evaluates literal-only sub-expressions.

use crate::expr::{BinOp, Expr};
use cx_storage::Scalar;

/// Rewrites `expr` with literal-only sub-trees evaluated, plus boolean
/// short-circuit identities (`x AND true → x`, `x OR true → true`, ...).
///
/// Folding is conservative: anything that cannot be evaluated without a row
/// (column refs, NULL-typed arithmetic) is left untouched, so
/// `eval(fold(e)) == eval(e)` on every chunk.
pub fn fold_constants(expr: &Expr) -> Expr {
    match expr {
        // Parameters are runtime-bound values: folding never sees them.
        Expr::Column(_) | Expr::Literal(_) | Expr::Parameter(_) => expr.clone(),
        Expr::Binary { op, left, right } => {
            let left = fold_constants(left);
            let right = fold_constants(right);
            if let (Expr::Literal(l), Expr::Literal(r)) = (&left, &right) {
                if let Some(v) = eval_literal_binary(*op, l, r) {
                    return Expr::Literal(v);
                }
            }
            // Boolean identities.
            match op {
                BinOp::And => {
                    if is_true(&left) {
                        return right;
                    }
                    if is_true(&right) {
                        return left;
                    }
                    if is_false(&left) || is_false(&right) {
                        return Expr::Literal(Scalar::Bool(false));
                    }
                }
                BinOp::Or => {
                    if is_false(&left) {
                        return right;
                    }
                    if is_false(&right) {
                        return left;
                    }
                    if is_true(&left) || is_true(&right) {
                        return Expr::Literal(Scalar::Bool(true));
                    }
                }
                _ => {}
            }
            Expr::Binary {
                op: *op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::Not(inner) => {
            let inner = fold_constants(inner);
            match &inner {
                Expr::Literal(Scalar::Bool(b)) => Expr::Literal(Scalar::Bool(!b)),
                Expr::Not(nested) => (**nested).clone(),
                _ => Expr::Not(Box::new(inner)),
            }
        }
        Expr::IsNull(inner) => {
            let inner = fold_constants(inner);
            match &inner {
                Expr::Literal(Scalar::Null) => Expr::Literal(Scalar::Bool(true)),
                Expr::Literal(_) => Expr::Literal(Scalar::Bool(false)),
                _ => Expr::IsNull(Box::new(inner)),
            }
        }
    }
}

fn is_true(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Scalar::Bool(true)))
}

fn is_false(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Scalar::Bool(false)))
}

fn eval_literal_binary(op: BinOp, l: &Scalar, r: &Scalar) -> Option<Scalar> {
    if l.is_null() || r.is_null() {
        // NULL propagation for comparison/arithmetic; Kleene cases are left
        // to runtime for simplicity (they are rare in folded positions).
        return if op.is_logical() { None } else { Some(Scalar::Null) };
    }
    if op.is_comparison() {
        let ord = l.partial_cmp_sql(r)?;
        use std::cmp::Ordering::*;
        let b = match op {
            BinOp::Eq => ord == Equal,
            BinOp::NotEq => ord != Equal,
            BinOp::Lt => ord == Less,
            BinOp::LtEq => ord != Greater,
            BinOp::Gt => ord == Greater,
            BinOp::GtEq => ord != Less,
            _ => unreachable!(),
        };
        return Some(Scalar::Bool(b));
    }
    if op.is_logical() {
        let (a, b) = (l.as_bool()?, r.as_bool()?);
        return Some(Scalar::Bool(match op {
            BinOp::And => a && b,
            BinOp::Or => a || b,
            _ => unreachable!(),
        }));
    }
    // Arithmetic: preserve Int64 when both sides are Int64 (matching the
    // binder's inferred output type), otherwise compute in f64.
    match (l, r) {
        (Scalar::Int64(a), Scalar::Int64(b)) => Some(match op {
            BinOp::Add => Scalar::Int64(a.wrapping_add(*b)),
            BinOp::Sub => Scalar::Int64(a.wrapping_sub(*b)),
            BinOp::Mul => Scalar::Int64(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Scalar::Null
                } else {
                    Scalar::Int64((*a as f64 / *b as f64) as i64)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            Some(match op {
                BinOp::Add => Scalar::Float64(a + b),
                BinOp::Sub => Scalar::Float64(a - b),
                BinOp::Mul => Scalar::Float64(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Scalar::Null
                    } else {
                        Scalar::Float64(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn folds_literal_arithmetic() {
        let e = lit(2i64).add(lit(3i64)).mul(lit(4i64));
        assert_eq!(fold_constants(&e), lit(20i64));
        let e = lit(1.0).div(lit(4.0));
        assert_eq!(fold_constants(&e), lit(0.25));
    }

    #[test]
    fn folds_literal_comparison() {
        let e = lit(2i64).gt(lit(3i64));
        assert_eq!(fold_constants(&e), lit(false));
        let e = lit("a").lt(lit("b"));
        assert_eq!(fold_constants(&e), lit(true));
    }

    #[test]
    fn boolean_identities() {
        let p = col("x").gt(lit(1i64));
        assert_eq!(fold_constants(&p.clone().and(lit(true))), p);
        assert_eq!(fold_constants(&p.clone().and(lit(false))), lit(false));
        assert_eq!(fold_constants(&p.clone().or(lit(false))), p);
        assert_eq!(fold_constants(&p.clone().or(lit(true))), lit(true));
    }

    #[test]
    fn double_negation() {
        let p = col("x").gt(lit(1i64));
        assert_eq!(fold_constants(&p.clone().not().not()), p);
        assert_eq!(fold_constants(&lit(true).not()), lit(false));
    }

    #[test]
    fn is_null_of_literals() {
        assert_eq!(fold_constants(&lit(5i64).is_null()), lit(false));
        assert_eq!(
            fold_constants(&Expr::Literal(Scalar::Null).is_null()),
            lit(true)
        );
    }

    #[test]
    fn null_propagation() {
        let e = Expr::Literal(Scalar::Null).add(lit(1i64));
        assert_eq!(fold_constants(&e), Expr::Literal(Scalar::Null));
        let e = lit(0i64).div(lit(0i64));
        assert_eq!(fold_constants(&e), Expr::Literal(Scalar::Null));
    }

    #[test]
    fn leaves_columns_alone() {
        let e = col("x").add(lit(1i64)).gt(lit(2i64).mul(lit(3i64)));
        let folded = fold_constants(&e);
        assert_eq!(folded, col("x").add(lit(1i64)).gt(lit(6i64)));
    }
}

//! Predicate selectivity estimation from table statistics.
//!
//! These estimates drive filter pushdown ordering and join-order decisions
//! in the holistic optimizer. They follow the classic System-R defaults
//! with histogram refinement where stats are available.

use crate::expr::{BinOp, Expr};
use cx_storage::{Scalar, TableStats};

/// Default selectivity when nothing is known about a predicate.
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity for equality with unknown distinct count.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// Estimates the fraction of rows satisfying `expr` given `stats`.
///
/// Returns a value in `[0, 1]`. Unknown predicates fall back to
/// [`DEFAULT_SELECTIVITY`].
pub fn estimate_selectivity(expr: &Expr, stats: Option<&TableStats>) -> f64 {
    est(expr, stats).clamp(0.0, 1.0)
}

fn est(expr: &Expr, stats: Option<&TableStats>) -> f64 {
    match expr {
        Expr::Literal(Scalar::Bool(true)) => 1.0,
        Expr::Literal(Scalar::Bool(false)) => 0.0,
        Expr::Binary { op: BinOp::And, left, right } => {
            // Independence assumption.
            est(left, stats) * est(right, stats)
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            let (l, r) = (est(left, stats), est(right, stats));
            // Inclusion-exclusion under independence.
            l + r - l * r
        }
        Expr::Not(inner) => 1.0 - est(inner, stats),
        Expr::IsNull(inner) => {
            if let (Expr::Column(name), Some(stats)) = (inner.as_ref(), stats) {
                if let Some(cs) = stats.column(name) {
                    if stats.row_count > 0 {
                        return cs.null_count as f64 / stats.row_count as f64;
                    }
                }
            }
            0.05
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            estimate_comparison(*op, left, right, stats)
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn estimate_comparison(op: BinOp, left: &Expr, right: &Expr, stats: Option<&TableStats>) -> f64 {
    // Normalize to (column OP literal).
    let (name, literal, op) = match (left, right) {
        (Expr::Column(name), Expr::Literal(v)) => (name, v, op),
        (Expr::Literal(v), Expr::Column(name)) => (name, v, flip(op)),
        _ => return DEFAULT_SELECTIVITY,
    };
    let Some(stats) = stats else {
        return default_for(op);
    };
    let Some(cs) = stats.column(name) else {
        return default_for(op);
    };

    match op {
        BinOp::Eq => {
            if cs.distinct_count > 0 {
                1.0 / cs.distinct_count as f64
            } else {
                DEFAULT_EQ_SELECTIVITY
            }
        }
        BinOp::NotEq => {
            if cs.distinct_count > 0 {
                1.0 - 1.0 / cs.distinct_count as f64
            } else {
                1.0 - DEFAULT_EQ_SELECTIVITY
            }
        }
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let Some(x) = literal.as_f64() else {
                return default_for(op);
            };
            let Some(h) = &cs.histogram else {
                return default_for(op);
            };
            let below = h.fraction_below(x);
            match op {
                BinOp::Lt | BinOp::LtEq => below,
                BinOp::Gt | BinOp::GtEq => 1.0 - below,
                _ => unreachable!(),
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

fn default_for(op: BinOp) -> f64 {
    match op {
        BinOp::Eq => DEFAULT_EQ_SELECTIVITY,
        BinOp::NotEq => 1.0 - DEFAULT_EQ_SELECTIVITY,
        _ => DEFAULT_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use cx_storage::{Column, Field, Schema, Table};

    fn stats() -> TableStats {
        let table = Table::from_columns(
            Schema::new(vec![
                Field::new("v", cx_storage::DataType::Int64),
                Field::new("cat", cx_storage::DataType::Utf8),
            ]),
            vec![
                Column::from_i64((0..100).collect()),
                Column::from_strings((0..100).map(|i| format!("c{}", i % 4))),
            ],
        )
        .unwrap();
        TableStats::compute(&table).unwrap()
    }

    #[test]
    fn range_uses_histogram() {
        let s = stats();
        let sel = estimate_selectivity(&col("v").lt(lit(50i64)), Some(&s));
        assert!((sel - 0.5).abs() < 0.06, "got {sel}");
        let sel = estimate_selectivity(&col("v").gt(lit(90i64)), Some(&s));
        assert!(sel < 0.15, "got {sel}");
        // Flipped literal side.
        let sel = estimate_selectivity(&lit(50i64).gt(col("v")), Some(&s));
        assert!((sel - 0.5).abs() < 0.06, "got {sel}");
    }

    #[test]
    fn equality_uses_distinct_count() {
        let s = stats();
        let sel = estimate_selectivity(&col("cat").eq(lit("c1")), Some(&s));
        assert!((sel - 0.25).abs() < 1e-9, "got {sel}");
        let sel = estimate_selectivity(&col("cat").not_eq(lit("c1")), Some(&s));
        assert!((sel - 0.75).abs() < 1e-9);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = stats();
        let e = col("v").lt(lit(50i64)).and(col("cat").eq(lit("c1")));
        let sel = estimate_selectivity(&e, Some(&s));
        assert!((sel - 0.125).abs() < 0.05, "got {sel}");
    }

    #[test]
    fn disjunction_inclusion_exclusion() {
        let s = stats();
        let e = col("v").lt(lit(50i64)).or(col("v").gt_eq(lit(50i64)));
        let sel = estimate_selectivity(&e, Some(&s));
        assert!(sel > 0.7, "got {sel}");
    }

    #[test]
    fn fallbacks_without_stats() {
        assert_eq!(
            estimate_selectivity(&col("x").eq(lit(1i64)), None),
            DEFAULT_EQ_SELECTIVITY
        );
        assert_eq!(
            estimate_selectivity(&col("x").gt(lit(1i64)), None),
            DEFAULT_SELECTIVITY
        );
        assert_eq!(estimate_selectivity(&lit(true), None), 1.0);
        assert_eq!(estimate_selectivity(&lit(false), None), 0.0);
    }

    #[test]
    fn not_inverts() {
        let s = stats();
        let sel = estimate_selectivity(&col("v").lt(lit(50i64)).not(), Some(&s));
        assert!((sel - 0.5).abs() < 0.06);
    }
}

//! Property and fuzz tests for the SQL front-end:
//!
//! * **round-trip** — a seeded grammar generator produces random valid
//!   statements; `parse → print → parse` must yield an identical AST
//!   (the canonical printing is the fixed point of the grammar),
//! * **fuzz** — token/byte mutations of valid statements must never
//!   panic the lexer, parser, or binder: every failure is a typed
//!   [`SqlError`] with a line/column position,
//! * **golden errors** — the ten most common mistakes produce exactly
//!   the messages we document.
//!
//! The fuzz budget honors `SQL_FUZZ_MS` (milliseconds; CI sets 30000),
//! with a floor of 2000 iterations so a fast clock still exercises the
//! corpus.

use cx_sql::{bind, parse, SchemaProvider, SqlError};
use cx_storage::{DataType, Field, Schema};
use std::time::{Duration, Instant};

/// xorshift64*: deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

struct Fixture;

impl SchemaProvider for Fixture {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        match name {
            "products" => Some(Schema::new(vec![
                Field::new("product_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("price", DataType::Float64),
            ])),
            "labels" => Some(Schema::new(vec![
                Field::new("label_id", DataType::Int64),
                Field::new("label", DataType::Utf8),
            ])),
            _ => None,
        }
    }

    fn model_names(&self) -> Vec<String> {
        vec!["m".to_string()]
    }
}

const COLUMNS: [&str; 3] = ["product_id", "name", "price"];
const PROBES: [&str; 4] = ["shoes", "winter boots", "it''s warm", "pets"];
const THRESHOLDS: [&str; 4] = ["0.25", "0.5", "0.75", "0.9"];

fn gen_scalar_expr(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 {
        return match rng.below(7) {
            0 => rng.pick(&COLUMNS).to_string(),
            1 => format!("{}", rng.below(200) as i64 - 100),
            2 => format!("{}.{}", rng.below(90), rng.below(10)),
            3 => format!("'{}'", rng.pick(&PROBES)),
            4 => rng.pick(&["TRUE", "FALSE", "NULL"]).to_string(),
            5 => format!("${}", rng.below(3)),
            _ => format!("products.{}", rng.pick(&COLUMNS)),
        };
    }
    let left = gen_scalar_expr(rng, depth - 1);
    let right = gen_scalar_expr(rng, depth - 1);
    let op = rng.pick(&["+", "-", "*", "/"]);
    format!("({left} {op} {right})")
}

fn gen_predicate(rng: &mut Rng, depth: usize) -> String {
    if depth == 0 {
        return match rng.below(4) {
            0 => {
                let l = gen_scalar_expr(rng, 1);
                let r = gen_scalar_expr(rng, 1);
                let op = rng.pick(&["=", "!=", "<", "<=", ">", ">="]);
                format!("{l} {op} {r}")
            }
            1 => format!(
                "{} IS {}NULL",
                rng.pick(&COLUMNS),
                rng.pick(&["", "NOT "]),
            ),
            2 => {
                let col = rng.pick(&COLUMNS);
                let probe = rng.pick(&PROBES);
                let using = if rng.below(2) == 0 { " USING m" } else { "" };
                let t = rng.pick(&THRESHOLDS);
                if rng.below(2) == 0 {
                    format!("{col} SEMANTIC LIKE '{probe}'{using} ({t})")
                } else {
                    format!("{col} SEMANTIC LIKE '{probe}'{using} ({}, {t})", rng.below(9) + 1)
                }
            }
            _ => format!("NOT ({})", gen_predicate(rng, 0)),
        };
    }
    let l = gen_predicate(rng, depth - 1);
    let r = gen_predicate(rng, depth - 1);
    format!("({l} {} {r})", rng.pick(&["AND", "OR"]))
}

fn gen_select(rng: &mut Rng) -> String {
    let mut sql = String::from("SELECT ");
    let group_by = rng.below(4) == 0;
    if group_by {
        // Keep the select list consistent with the grammar: key + aggs.
        let key = rng.pick(&COLUMNS);
        sql.push_str(key);
        match rng.below(3) {
            0 => sql.push_str(", COUNT(*)"),
            1 => sql.push_str(", SUM(price) AS total"),
            _ => sql.push_str(", COUNT(*), AVG(price) AS mean"),
        }
        sql.push_str(" FROM products GROUP BY ");
        if rng.below(3) == 0 {
            sql.push_str(&format!("SEMANTIC {key} ({})", rng.pick(&THRESHOLDS)));
        } else {
            sql.push_str(key);
        }
    } else {
        match rng.below(3) {
            0 => sql.push('*'),
            1 => sql.push_str(rng.pick(&COLUMNS)),
            _ => {
                let depth = rng.below(2) + 1;
                let e = gen_scalar_expr(rng, depth);
                sql.push_str(&format!("{e} AS v, name"));
            }
        }
        if rng.below(3) == 0 {
            sql.push_str(" FROM products AS p");
        } else {
            sql.push_str(" FROM products");
        }
        match rng.below(5) {
            0 => sql.push_str(&format!(
                " {} JOIN labels ON product_id = label_id",
                rng.pick(&["INNER", "LEFT", "SEMI", "ANTI"]),
            )),
            1 => sql.push_str(" CROSS JOIN labels"),
            2 => sql.push_str(&format!(
                " SEMANTIC JOIN labels ON SIM(name, label) {} {}{}",
                rng.pick(&[">", ">="]),
                rng.pick(&THRESHOLDS),
                rng.pick(&["", " SCORE closeness"]),
            )),
            _ => {}
        }
        if rng.below(2) == 0 {
            let depth = rng.below(3);
            sql.push_str(&format!(" WHERE {}", gen_predicate(rng, depth)));
        }
    }
    if rng.below(3) == 0 {
        sql.push_str(&format!(
            " ORDER BY {} {}",
            rng.pick(&COLUMNS),
            rng.pick(&["ASC", "DESC"]),
        ));
    }
    if rng.below(3) == 0 {
        sql.push_str(&format!(" LIMIT {}", rng.below(20)));
    }
    sql
}

fn gen_statement(rng: &mut Rng) -> String {
    match rng.below(8) {
        0 => format!("EXPLAIN {}", gen_select(rng)),
        1 => format!("EXPLAIN ANALYZE {}", gen_select(rng)),
        2 => format!("PREPARE stmt_{} AS {}", rng.below(10), gen_select(rng)),
        3 => format!(
            "EXECUTE stmt_{} ({}, '{}', {}.5)",
            rng.below(10),
            rng.below(100),
            rng.pick(&PROBES),
            rng.below(10),
        ),
        4 => format!("{} UNION ALL {}", gen_select(rng), gen_select(rng)),
        _ => gen_select(rng),
    }
}

#[test]
fn parse_print_parse_is_identity() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for i in 0..1500 {
        let sql = gen_statement(&mut rng);
        let ast1 = match parse(&sql) {
            Ok(ast) => ast,
            Err(e) => panic!("generator produced invalid SQL (iteration {i}): {sql}\n  {e}"),
        };
        let printed = ast1.to_string();
        let ast2 = match parse(&printed) {
            Ok(ast) => ast,
            Err(e) => panic!("canonical print does not reparse (iteration {i}):\n  original: {sql}\n  printed: {printed}\n  {e}"),
        };
        assert_eq!(
            ast1, ast2,
            "round-trip changed the AST (iteration {i}):\n  original: {sql}\n  printed: {printed}"
        );
        // And the printing is a fixed point: print(parse(print(x))) == print(x).
        assert_eq!(printed, ast2.to_string(), "printing is not canonical (iteration {i})");
    }
}

/// Mutate a valid statement at the byte level: deletions, duplications,
/// splices, and injected metacharacters.
fn mutate(rng: &mut Rng, sql: &str) -> String {
    let mut bytes: Vec<u8> = sql.bytes().collect();
    for _ in 0..(rng.below(4) + 1) {
        if bytes.is_empty() {
            break;
        }
        match rng.below(5) {
            0 => {
                let at = rng.below(bytes.len());
                bytes.remove(at);
            }
            1 => {
                let at = rng.below(bytes.len());
                let junk = b"'()$,.<>=!*;--\x00\xff\xc3";
                bytes.insert(at, junk[rng.below(junk.len())]);
            }
            2 => {
                let a = rng.below(bytes.len());
                let b = rng.below(bytes.len());
                bytes.swap(a, b);
            }
            3 => {
                let at = rng.below(bytes.len());
                let len = (rng.below(8) + 1).min(bytes.len() - at);
                let slice: Vec<u8> = bytes[at..at + len].to_vec();
                bytes.splice(at..at, slice);
            }
            _ => {
                let at = rng.below(bytes.len());
                let cut = (rng.below(12) + 1).min(bytes.len() - at);
                bytes.drain(at..at + cut);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzz_never_panics_only_typed_errors() {
    let budget_ms: u64 = std::env::var("SQL_FUZZ_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let deadline = Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut rng = Rng(0xf022_0000_0000_0001_u64 ^ 0x9e37_79b9);
    let mut iterations = 0u64;
    let mut parse_errors = 0u64;
    let mut bind_errors = 0u64;
    while iterations < 2000 || start.elapsed() < deadline {
        let valid = gen_statement(&mut rng);
        let mutated = mutate(&mut rng, &valid);
        // Any panic below fails the test; errors must be typed SqlErrors
        // carrying a 1-based position.
        match parse(&mutated) {
            Ok(stmt) => match bind(&stmt, &Fixture) {
                Ok(_) => {}
                Err(e) => {
                    bind_errors += 1;
                    check_error(&e, &mutated);
                }
            },
            Err(e) => {
                parse_errors += 1;
                check_error(&e, &mutated);
            }
        }
        iterations += 1;
    }
    // The mutator must actually be producing garbage, not no-ops.
    assert!(parse_errors > iterations / 10, "{parse_errors}/{iterations} parse errors");
    assert!(bind_errors > 0, "no bind errors in {iterations} iterations");
}

fn check_error(e: &SqlError, input: &str) {
    assert!(e.line >= 1 && e.col >= 1, "unpositioned error for {input:?}: {e}");
    let msg = e.to_string();
    assert!(
        msg.contains("error at line"),
        "error display lost its position for {input:?}: {msg}"
    );
}

/// The ten most common mistakes, golden-tested: these exact messages are
/// part of the front-end's contract.
#[test]
fn golden_error_messages() {
    let cases: [(&str, &str); 10] = [
        (
            "SELEC * FROM products",
            "parse error at line 1, column 1: expected `SELECT`, `EXPLAIN`, `PREPARE`, or \
             `EXECUTE`, found `SELEC`",
        ),
        (
            "SELECT * FROM",
            "parse error at line 1, column 14: expected a table name, found end of statement",
        ),
        (
            "SELECT * FROM products WHERE name = 'boo",
            "lex error at line 1, column 37: unterminated string literal",
        ),
        (
            "SELECT name FROM products UNION SELECT label FROM labels",
            "parse error at line 1, column 27: plain `UNION` is not supported; use `UNION ALL` \
             (add DISTINCT in an outer query to deduplicate)",
        ),
        (
            "SELECT nope FROM products",
            "bind error at line 1, column 8: unknown column `nope`",
        ),
        (
            "SELECT * FROM nope",
            "bind error at line 1, column 15: unknown table `nope`",
        ),
        (
            "SELECT product_id FROM products AS a CROSS JOIN products AS b",
            "bind error at line 1, column 8: column `product_id` is ambiguous (appears in `a` \
             and `b`); qualify it",
        ),
        (
            "SELECT * FROM products WHERE price ! 3",
            "lex error at line 1, column 36: unexpected character `!` (did you mean `!=`?)",
        ),
        (
            "SELECT * FROM products WHERE price > 1 OR name SEMANTIC LIKE 'x' (0.5)",
            "bind error at line 1, column 48: SEMANTIC LIKE must be a top-level AND conjunct of \
             the WHERE clause",
        ),
        (
            "SELECT * FROM products WHERE price > $1",
            "bind error at line 1, column 38: parameter slots must be contiguous starting at \
             $0; missing $0",
        ),
    ];
    for (sql, want) in cases {
        let got = first_error(sql);
        assert_eq!(got.to_string(), want, "golden mismatch for {sql:?}");
    }
}

fn first_error(sql: &str) -> SqlError {
    match parse(sql) {
        Err(e) => e,
        Ok(stmt) => match bind(&stmt, &Fixture) {
            Err(e) => e,
            Ok(_) => panic!("expected an error for {sql:?}"),
        },
    }
}


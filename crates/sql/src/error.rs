//! Typed SQL errors with source positions.
//!
//! Every failure in the front-end — lexing, parsing, binding — carries the
//! 1-based line/column of the offending token so callers can point at the
//! exact spot in the statement. The `Display` form is golden-tested in
//! `tests/property.rs`; change the wording deliberately.

use std::fmt;

/// Which stage of the front-end rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Tokenizer failure (bad character, unterminated string, malformed number).
    Lex,
    /// Grammar failure (unexpected token).
    Parse,
    /// Name/semantic resolution failure (unknown table, ambiguous column, ...).
    Bind,
}

impl SqlErrorKind {
    fn label(self) -> &'static str {
        match self {
            SqlErrorKind::Lex => "lex",
            SqlErrorKind::Parse => "parse",
            SqlErrorKind::Bind => "bind",
        }
    }
}

/// A front-end error, pinned to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    pub kind: SqlErrorKind,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (in characters) of the offending token.
    pub col: u32,
    pub message: String,
}

impl SqlError {
    pub fn new(kind: SqlErrorKind, line: u32, col: u32, message: impl Into<String>) -> Self {
        SqlError { kind, line, col, message: message.into() }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at line {}, column {}: {}",
            self.kind.label(),
            self.line,
            self.col,
            self.message
        )
    }
}

impl std::error::Error for SqlError {}

//! # cx-sql — SQL front-end with semantic extensions
//!
//! A zero-dependency recursive-descent SQL front-end for the context-rich
//! analytical engine: lexer → parser → AST → binder → [`LogicalPlan`].
//! The dialect is classic single-block SQL plus the paper's semantic
//! operators:
//!
//! ```sql
//! SELECT name, price FROM products
//! WHERE price > 40 AND name SEMANTIC LIKE 'winter boots' USING m (10, 0.35)
//! ORDER BY price DESC LIMIT 5
//!
//! SELECT name, label, similarity FROM products
//! SEMANTIC JOIN labels ON SIM(name, label) >= 0.3
//!
//! SELECT name, cluster_id, COUNT(*) FROM products
//! GROUP BY SEMANTIC name USING m (0.4)
//! ```
//!
//! Plus `$n` parameters (0-based, matching the engine), `PREPARE name AS
//! ...` / `EXECUTE name (...)`, `EXPLAIN [ANALYZE]`, and `UNION ALL`.
//!
//! Semantics pinned down by the differential harness (every statement is
//! bit-identical to its hand-built `Query` twin):
//!
//! - `SEMANTIC LIKE 'probe' (k, t)` lowers to a `SemanticFilter` with
//!   inclusive threshold `t`, with `k` as a `Limit` directly above it
//!   (bounds the number of matching rows).
//! - `SIM(a, b) > t` and `>= t` both lower to the engine's inclusive
//!   `cos >= t` threshold.
//! - `USING model` is optional when exactly one model is registered.
//! - Join name collisions follow the engine: the right side's duplicate
//!   columns are reachable as `right.<name>` (or via the table alias).
//!
//! The binder is deliberately engine-agnostic: it sees the catalog through
//! the [`SchemaProvider`] trait, so `cx_serve` can feed it the live
//! `Engine` (including `cx.*` system tables) while tests use fixtures.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

mod binder;

pub use ast::Statement;
pub use binder::{bind, bind_query, Bound, BoundQuery, SchemaProvider};
pub use error::{SqlError, SqlErrorKind};
pub use parser::parse;

use cx_exec::logical::LogicalPlan;

/// Parse and bind in one step: SQL text → bound plan.
pub fn plan(sql: &str, provider: &dyn SchemaProvider) -> Result<Bound, SqlError> {
    bind(&parse(sql)?, provider)
}

/// Convenience for the common case: a plain query with no parameters.
/// Errors (without a position) if the statement is anything else.
pub fn plan_query(sql: &str, provider: &dyn SchemaProvider) -> Result<LogicalPlan, SqlError> {
    match plan(sql, provider)? {
        Bound::Query(q) if q.param_count == 0 => Ok(q.plan),
        Bound::Query(q) => Err(SqlError::new(
            SqlErrorKind::Bind,
            1,
            1,
            format!(
                "statement expects {} parameter(s); use PREPARE/EXECUTE to bind them",
                q.param_count
            ),
        )),
        _ => Err(SqlError::new(
            SqlErrorKind::Bind,
            1,
            1,
            "expected a plain SELECT statement",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_exec::logical::{AggSpec, JoinType, LimitCount, LogicalPlan, SemanticTarget};
    use cx_expr::col;
    use cx_storage::{DataType, Field, Scalar, Schema};

    struct Fixture;

    impl SchemaProvider for Fixture {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            match name {
                "products" => Some(Schema::new(vec![
                    Field::new("product_id", DataType::Int64),
                    Field::new("name", DataType::Utf8),
                    Field::new("price", DataType::Float64),
                ])),
                "labels" => Some(Schema::new(vec![
                    Field::new("label_id", DataType::Int64),
                    Field::new("label", DataType::Utf8),
                ])),
                "cx.queries" => Some(Schema::new(vec![
                    Field::new("query_id", DataType::Int64),
                    Field::new("status", DataType::Utf8),
                ])),
                _ => None,
            }
        }

        fn model_names(&self) -> Vec<String> {
            vec!["m".to_string()]
        }
    }

    fn q(sql: &str) -> LogicalPlan {
        plan_query(sql, &Fixture).unwrap()
    }

    fn bind_fail(sql: &str) -> SqlError {
        match plan(sql, &Fixture) {
            Err(e) => e,
            Ok(b) => panic!("expected bind failure, got {b:?}"),
        }
    }

    #[test]
    fn simple_select_star_is_a_bare_scan() {
        assert!(matches!(q("SELECT * FROM products"), LogicalPlan::Scan { .. }));
    }

    #[test]
    fn filter_project_order_limit() {
        let plan = q(
            "SELECT name, price FROM products WHERE price > 40 AND name != 'x' \
             ORDER BY price DESC LIMIT 3",
        );
        // Limit(Sort(Project(Filter(Scan)))) — sort above project because
        // price is projected.
        let LogicalPlan::Limit { input, n } = plan else { panic!("no limit: {plan:?}") };
        assert_eq!(n, LimitCount::Fixed(3));
        let LogicalPlan::Sort { input, keys } = *input else { panic!() };
        assert_eq!(keys.len(), 1);
        assert!(!keys[0].ascending);
        let LogicalPlan::Project { exprs, input } = *input else { panic!() };
        assert_eq!(exprs.len(), 2);
        let LogicalPlan::Filter { predicate, .. } = *input else { panic!() };
        assert_eq!(
            predicate,
            col("price").gt(cx_expr::lit(40i64)).and(col("name").not_eq(cx_expr::lit("x")))
        );
    }

    #[test]
    fn semantic_like_lowers_with_k_as_limit() {
        let plan = q("SELECT * FROM products WHERE name SEMANTIC LIKE 'boots' (5, 0.4)");
        let LogicalPlan::Limit { input, n } = plan else { panic!() };
        assert_eq!(n, LimitCount::Fixed(5));
        let LogicalPlan::SemanticFilter { column, target, model, threshold, .. } = *input else {
            panic!()
        };
        assert_eq!(column, "name");
        assert_eq!(target, SemanticTarget::Text("boots".into()));
        assert_eq!(model, "m");
        assert_eq!(threshold, 0.4f32);
    }

    #[test]
    fn semantic_join_defaults_and_aliases() {
        let plan = q(
            "SELECT * FROM products AS p SEMANTIC JOIN labels AS l \
             ON SIM(p.name, l.label) >= 0.3",
        );
        let LogicalPlan::SemanticJoin { spec, .. } = plan else { panic!("{plan:?}") };
        assert_eq!(spec.left_column, "name");
        assert_eq!(spec.right_column, "label");
        assert_eq!(spec.score_column, "similarity");
        assert_eq!(spec.threshold, 0.3f32);
    }

    #[test]
    fn join_collision_renames_like_the_engine() {
        // Self-join: right side's product_id becomes right.product_id.
        let plan = q(
            "SELECT b.product_id FROM products AS a \
             INNER JOIN products AS b ON a.product_id = b.product_id",
        );
        let LogicalPlan::Project { exprs, input } = plan else { panic!("{plan:?}") };
        assert_eq!(exprs[0].1, "right.product_id");
        let LogicalPlan::Join { on, join_type, .. } = *input else { panic!() };
        assert_eq!(join_type, JoinType::Inner);
        assert_eq!(on, vec![("product_id".to_string(), "product_id".to_string())]);
    }

    #[test]
    fn group_by_matches_natural_output_without_projection() {
        let plan = q("SELECT name, COUNT(*) FROM products GROUP BY name");
        let LogicalPlan::Aggregate { group_by, aggs, .. } = plan else { panic!("{plan:?}") };
        assert_eq!(group_by, vec!["name".to_string()]);
        assert_eq!(aggs, vec![AggSpec::count_star("count")]);
    }

    #[test]
    fn reordered_group_output_projects() {
        let plan = q("SELECT COUNT(*) AS n, name FROM products GROUP BY name");
        let LogicalPlan::Project { exprs, .. } = plan else { panic!("{plan:?}") };
        assert_eq!(exprs[0].1, "n");
        assert_eq!(exprs[1].1, "name");
    }

    #[test]
    fn semantic_group_by_exposes_cluster_id() {
        let plan =
            q("SELECT name, cluster_id, COUNT(*) FROM products GROUP BY SEMANTIC name (0.4)");
        let LogicalPlan::SemanticGroupBy { column, model, threshold, aggs, .. } = plan else {
            panic!("{plan:?}")
        };
        assert_eq!(column, "name");
        assert_eq!(model, "m");
        assert_eq!(threshold, 0.4f32);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn system_tables_resolve() {
        let plan = q("SELECT status FROM cx.queries WHERE query_id >= 0");
        let LogicalPlan::Project { input, .. } = plan else { panic!("{plan:?}") };
        let LogicalPlan::Filter { input, .. } = *input else { panic!() };
        let LogicalPlan::Scan { source, .. } = *input else { panic!() };
        assert_eq!(source, "cx.queries");
    }

    #[test]
    fn union_all_hoists_tail_order_and_limit() {
        let plan = q(
            "SELECT name FROM products UNION ALL SELECT label AS name FROM labels \
             ORDER BY name ASC LIMIT 4",
        );
        let LogicalPlan::Limit { input, .. } = plan else { panic!("{plan:?}") };
        let LogicalPlan::Sort { input, .. } = *input else { panic!() };
        assert!(matches!(*input, LogicalPlan::Union { .. }));
    }

    #[test]
    fn params_flow_through_and_must_be_contiguous() {
        let Bound::Prepare { name, query } =
            plan("PREPARE p AS SELECT * FROM products WHERE price > $0 LIMIT $1", &Fixture)
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "p");
        assert_eq!(query.param_count, 2);
        let e = bind_fail("SELECT * FROM products WHERE price > $1");
        assert!(e.to_string().contains("missing $0"), "{e}");
    }

    #[test]
    fn execute_binds_literals() {
        let Bound::Execute { name, args } =
            plan("EXECUTE p ('boots', -2, 0.5)", &Fixture).unwrap()
        else {
            panic!()
        };
        assert_eq!(name, "p");
        assert_eq!(
            args,
            vec![Scalar::Utf8("boots".into()), Scalar::Int64(-2), Scalar::Float64(0.5)]
        );
    }

    #[test]
    fn nested_semantic_like_is_rejected() {
        let e = bind_fail(
            "SELECT * FROM products WHERE price > 1 OR name SEMANTIC LIKE 'x' (0.5)",
        );
        assert!(e.to_string().contains("top-level AND conjunct"), "{e}");
    }

    #[test]
    fn ambiguity_and_unknowns_are_positioned() {
        let e = bind_fail("SELECT nope FROM products");
        assert_eq!((e.line, e.col), (1, 8));
        assert!(e.to_string().contains("unknown column `nope`"));
        let e = bind_fail(
            "SELECT product_id FROM products AS a CROSS JOIN products AS b",
        );
        assert!(e.to_string().contains("ambiguous"), "{e}");
        let e = bind_fail("SELECT * FROM nope");
        assert!(e.to_string().contains("unknown table `nope`"), "{e}");
    }

    #[test]
    fn sort_below_projection_when_key_projected_away() {
        let plan = q("SELECT name FROM products ORDER BY price ASC");
        let LogicalPlan::Project { input, .. } = plan else { panic!("{plan:?}") };
        assert!(matches!(*input, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn explain_and_analyze_parse() {
        assert!(matches!(
            plan("EXPLAIN SELECT * FROM products", &Fixture).unwrap(),
            Bound::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            plan("EXPLAIN ANALYZE SELECT * FROM products", &Fixture).unwrap(),
            Bound::Explain { analyze: true, .. }
        ));
    }
}

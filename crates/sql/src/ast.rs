//! Abstract syntax tree for the SQL dialect, with a canonical printer.
//!
//! The printer (`Display`) emits a canonical form — uppercase keywords,
//! fully parenthesized expressions, explicit `ASC`/`DESC` — that the parser
//! accepts back. The property suite asserts `parse(print(ast)) == ast` for
//! generated statements, which pins parser and printer to each other.
//!
//! Spans are positional metadata only: [`Span`] compares equal to every
//! other span, so two ASTs that differ only in source positions are `==`.
//! This is what makes the round-trip property expressible as plain
//! `assert_eq!` even though reprinting moves every token.

use std::fmt;

pub use cx_exec::logical::{AggFunc, JoinType};
pub use cx_expr::BinOp;

/// A 1-based source position. Equality is intentionally vacuous (see module
/// docs); spans exist to point errors at source, not to distinguish ASTs.
#[derive(Debug, Clone, Copy, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

/// A possibly-qualified column reference (`price`, `p.price`,
/// `cx.queries.ts` — the qualifier is everything before the last dot).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
    pub span: Span,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A literal value as written. Integer/float distinction is preserved so the
/// binder can lower to `Scalar::Int64` vs `Scalar::Float64` exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            // `{:?}` keeps the decimal point (`1.0`, not `1`) so the
            // reparse stays a float.
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// The probe of a `SEMANTIC LIKE`: a string literal or a `$n` parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Probe {
    Text(String),
    Param(u32),
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Probe::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Probe::Param(n) => write!(f, "${n}"),
        }
    }
}

/// Scalar-valued (or boolean-valued) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column(ColumnRef),
    Literal { value: Literal, span: Span },
    /// `$n` placeholder. Slots are 0-based, matching the engine's
    /// `Expr::Parameter` convention.
    Param { slot: u32, span: Span },
    Binary { op: BinOp, left: Box<AstExpr>, right: Box<AstExpr> },
    Not(Box<AstExpr>),
    IsNull { expr: Box<AstExpr>, negated: bool },
    /// `col SEMANTIC LIKE probe [USING model] (k, threshold)` — the paper's
    /// semantic-select predicate. Only valid as a top-level `AND` conjunct
    /// of `WHERE` (enforced by the binder).
    SemanticLike {
        column: ColumnRef,
        probe: Probe,
        model: Option<String>,
        /// Optional match bound; lowers to a `Limit` directly above the
        /// `SemanticFilter`.
        k: Option<u64>,
        threshold: f64,
        span: Span,
    },
}

impl AstExpr {
    pub fn span(&self) -> Span {
        match self {
            AstExpr::Column(c) => c.span,
            AstExpr::Literal { span, .. }
            | AstExpr::Param { span, .. }
            | AstExpr::SemanticLike { span, .. } => *span,
            AstExpr::Binary { left, .. } => left.span(),
            AstExpr::Not(e) | AstExpr::IsNull { expr: e, .. } => e.span(),
        }
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "=",
        BinOp::NotEq => "!=",
        BinOp::Lt => "<",
        BinOp::LtEq => "<=",
        BinOp::Gt => ">",
        BinOp::GtEq => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column(c) => write!(f, "{c}"),
            AstExpr::Literal { value, .. } => write!(f, "{value}"),
            AstExpr::Param { slot, .. } => write!(f, "${slot}"),
            AstExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op_str(*op))
            }
            AstExpr::Not(e) => write!(f, "(NOT {e})"),
            AstExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            AstExpr::SemanticLike { column, probe, model, k, threshold, .. } => {
                write!(f, "{column} SEMANTIC LIKE {probe}")?;
                if let Some(m) = model {
                    write!(f, " USING {m}")?;
                }
                match k {
                    Some(k) => write!(f, " ({k}, {threshold:?})"),
                    None => write!(f, " ({threshold:?})"),
                }
            }
        }
    }
}

/// One entry of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — must be the only item.
    Star,
    Expr { expr: AstExpr, alias: Option<String> },
    /// `COUNT(*)`, `SUM(col)`, ... with an optional `AS` alias.
    Agg { func: AggFunc, column: Option<ColumnRef>, alias: Option<String>, span: Span },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => f.write_str("*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            SelectItem::Agg { func, column, alias, .. } => {
                match (func, column) {
                    (AggFunc::CountStar, _) => f.write_str("COUNT(*)")?,
                    (func, Some(c)) => write!(f, "{func}({c})")?,
                    (func, None) => write!(f, "{func}()")?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A table in `FROM` or a join: dotted name plus optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
    pub span: Span,
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// A join step, applied left-to-right after `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum Join {
    /// `[INNER|LEFT|SEMI|ANTI] JOIN t ON a = b [AND c = d ...]`
    Relational { join_type: JoinType, table: TableRef, on: Vec<(ColumnRef, ColumnRef)> },
    /// `CROSS JOIN t`
    Cross { table: TableRef },
    /// `SEMANTIC JOIN t [USING model] ON SIM(l, r) >= threshold [SCORE name]`
    Semantic {
        table: TableRef,
        model: Option<String>,
        left: ColumnRef,
        right: ColumnRef,
        /// `>` vs `>=` as written. Both lower to the engine's inclusive
        /// threshold; the distinction is kept for faithful reprinting.
        strict: bool,
        threshold: f64,
        /// `SCORE name` — name of the appended similarity column.
        score: Option<String>,
        span: Span,
    },
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Join::Relational { join_type, table, on } => {
                write!(f, "{join_type} JOIN {table} ON ")?;
                for (i, (l, r)) in on.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{l} = {r}")?;
                }
                Ok(())
            }
            Join::Cross { table } => write!(f, "CROSS JOIN {table}"),
            Join::Semantic { table, model, left, right, strict, threshold, score, .. } => {
                write!(f, "SEMANTIC JOIN {table}")?;
                if let Some(m) = model {
                    write!(f, " USING {m}")?;
                }
                write!(
                    f,
                    " ON SIM({left}, {right}) {} {threshold:?}",
                    if *strict { ">" } else { ">=" }
                )?;
                if let Some(s) = score {
                    write!(f, " SCORE {s}")?;
                }
                Ok(())
            }
        }
    }
}

/// `GROUP BY` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    Columns(Vec<ColumnRef>),
    /// `GROUP BY SEMANTIC col [USING model] (threshold)` — on-the-fly
    /// clustering by embedding similarity.
    Semantic { column: ColumnRef, model: Option<String>, threshold: f64, span: Span },
}

impl fmt::Display for GroupBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupBy::Columns(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
            GroupBy::Semantic { column, model, threshold, .. } => {
                write!(f, "SEMANTIC {column}")?;
                if let Some(m) = model {
                    write!(f, " USING {m}")?;
                }
                write!(f, " ({threshold:?})")
            }
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub column: ColumnRef,
    pub ascending: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.column, if self.ascending { "ASC" } else { "DESC" })
    }
}

/// `LIMIT n` or `LIMIT $n`.
#[derive(Debug, Clone, PartialEq)]
pub enum LimitClause {
    Fixed(u64),
    Param { slot: u32, span: Span },
}

impl fmt::Display for LimitClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitClause::Fixed(n) => write!(f, "{n}"),
            LimitClause::Param { slot, .. } => write!(f, "${slot}"),
        }
    }
}

/// One `SELECT` block (a union member, or the whole query).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub selection: Option<AstExpr>,
    pub group_by: Option<GroupBy>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<LimitClause>,
    pub span: Span,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// A query: one `SELECT`, or several glued with `UNION ALL`.
///
/// In a multi-member union, `ORDER BY`/`LIMIT` parse into the last member
/// (the grammar is per-select) and the binder hoists them to apply to the
/// whole union — the standard SQL reading of the unparenthesized text.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExpr {
    pub selects: Vec<Select>,
}

impl fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.selects.iter().enumerate() {
            if i > 0 {
                f.write_str(" UNION ALL ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// A full statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(QueryExpr),
    Explain { analyze: bool, query: QueryExpr },
    Prepare { name: String, query: QueryExpr, span: Span },
    /// `EXECUTE name (lit, ...)` — arguments must be literals.
    Execute { name: String, args: Vec<AstExpr>, span: Span },
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Explain { analyze, query } => {
                write!(f, "EXPLAIN {}{query}", if *analyze { "ANALYZE " } else { "" })
            }
            Statement::Prepare { name, query, .. } => write!(f, "PREPARE {name} AS {query}"),
            Statement::Execute { name, args, .. } => {
                write!(f, "EXECUTE {name}")?;
                if !args.is_empty() {
                    f.write_str(" (")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

//! Hand-rolled SQL tokenizer.
//!
//! Zero dependencies, char-at-a-time, tracks 1-based line/column for every
//! token so parse and bind errors can point at the source. Keywords are not
//! distinguished here — the parser matches `Word` tokens case-insensitively
//! and keeps a reserved-word list, which keeps the lexer trivially total:
//! any ASCII word lexes, only structure can be wrong.

use crate::error::{SqlError, SqlErrorKind};

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case preserved; parser matches uppercase).
    Word(String),
    /// Integer literal. Stored unsigned; unary minus is applied by the parser.
    Int(u64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    Str(String),
    /// `$n` parameter placeholder (0-based slot index, as in the engine).
    Param(u32),
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Dot,
    /// End of input. Always the final token; simplifies the parser.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in "expected X, found {desc}" errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::Int(v) => format!("number `{v}`"),
            TokenKind::Float(v) => format!("number `{v}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::Param(n) => format!("parameter `${n}`"),
            TokenKind::Eq => "`=`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::LtEq => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::GtEq => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Eof => "end of statement".into(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, line: u32, col: u32, msg: impl Into<String>) -> SqlError {
        SqlError::new(SqlErrorKind::Lex, line, col, msg)
    }
}

/// Tokenize `src` into a token vector terminated by `Eof`.
///
/// Supports `-- line comments`, single-quoted strings with `''` escapes,
/// integer / float literals (with optional exponent), `$n` parameters, and
/// the operator set of the grammar (`= != <> < <= > >= + - * / ( ) , .`).
pub fn tokenize(src: &str) -> Result<Vec<Token>, SqlError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `--` comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('-') => {
                    // Lookahead for a second '-' without consuming on miss:
                    // clone the iterator (cheap — it's a &str cursor).
                    let mut ahead = lx.chars.clone();
                    ahead.next();
                    if ahead.next() == Some('-') {
                        while let Some(c) = lx.peek() {
                            lx.bump();
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let (line, col) = (lx.line, lx.col);
        let Some(c) = lx.peek() else {
            out.push(Token { kind: TokenKind::Eof, line, col });
            return Ok(out);
        };
        let kind = match c {
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut w = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        w.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Word(w)
            }
            '0'..='9' => lex_number(&mut lx, line, col)?,
            '\'' => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        Some('\'') => {
                            if lx.peek() == Some('\'') {
                                lx.bump();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(lx.err(line, col, "unterminated string literal"));
                        }
                    }
                }
                TokenKind::Str(s)
            }
            '$' => {
                lx.bump();
                let mut digits = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_digit() {
                        digits.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                if digits.is_empty() {
                    return Err(lx.err(line, col, "expected a slot number after `$`"));
                }
                let n: u32 = digits
                    .parse()
                    .map_err(|_| lx.err(line, col, format!("parameter `${digits}` is out of range")))?;
                TokenKind::Param(n)
            }
            '=' => {
                lx.bump();
                TokenKind::Eq
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    TokenKind::NotEq
                } else {
                    return Err(lx.err(line, col, "unexpected character `!` (did you mean `!=`?)"));
                }
            }
            '<' => {
                lx.bump();
                match lx.peek() {
                    Some('=') => {
                        lx.bump();
                        TokenKind::LtEq
                    }
                    Some('>') => {
                        lx.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            '+' => {
                lx.bump();
                TokenKind::Plus
            }
            '-' => {
                lx.bump();
                TokenKind::Minus
            }
            '*' => {
                lx.bump();
                TokenKind::Star
            }
            '/' => {
                lx.bump();
                TokenKind::Slash
            }
            '(' => {
                lx.bump();
                TokenKind::LParen
            }
            ')' => {
                lx.bump();
                TokenKind::RParen
            }
            ',' => {
                lx.bump();
                TokenKind::Comma
            }
            '.' => {
                lx.bump();
                TokenKind::Dot
            }
            ';' => {
                // A single trailing semicolon is tolerated; anything after it
                // is rejected by the parser (which expects Eof next).
                lx.bump();
                continue;
            }
            other => {
                return Err(lx.err(line, col, format!("unexpected character `{other}`")));
            }
        };
        out.push(Token { kind, line, col });
    }
}

fn lex_number(lx: &mut Lexer<'_>, line: u32, col: u32) -> Result<TokenKind, SqlError> {
    let mut text = String::new();
    let mut is_float = false;
    while let Some(c) = lx.peek() {
        if c.is_ascii_digit() {
            text.push(c);
            lx.bump();
        } else {
            break;
        }
    }
    if lx.peek() == Some('.') {
        // `1.max` style method calls don't exist in this grammar, but
        // `t.col` after an integer can't appear either, so a dot directly
        // after digits is always a decimal point when followed by a digit.
        let mut ahead = lx.chars.clone();
        ahead.next();
        if matches!(ahead.next(), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            lx.bump();
            while let Some(c) = lx.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
        }
    }
    if matches!(lx.peek(), Some('e') | Some('E')) {
        let mut ahead = lx.chars.clone();
        ahead.next();
        let next = ahead.next();
        let next2 = ahead.next();
        let exp_ok = matches!(next, Some(d) if d.is_ascii_digit())
            || (matches!(next, Some('+') | Some('-'))
                && matches!(next2, Some(d) if d.is_ascii_digit()));
        if exp_ok {
            is_float = true;
            text.push('e');
            lx.bump();
            if matches!(lx.peek(), Some('+') | Some('-')) {
                text.push(lx.peek().unwrap());
                lx.bump();
            }
            while let Some(c) = lx.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
        }
    }
    if is_float {
        let v: f64 = text
            .parse()
            .map_err(|_| lx.err(line, col, format!("malformed number `{text}`")))?;
        Ok(TokenKind::Float(v))
    } else {
        let v: u64 = text
            .parse()
            .map_err(|_| lx.err(line, col, format!("integer `{text}` is out of range")))?;
        Ok(TokenKind::Int(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_strings_params() {
        assert_eq!(
            kinds("SELECT x1 FROM t WHERE a = 'it''s' AND b >= 1.5e3 OR c != $2"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Word("x1".into()),
                TokenKind::Word("FROM".into()),
                TokenKind::Word("t".into()),
                TokenKind::Word("WHERE".into()),
                TokenKind::Word("a".into()),
                TokenKind::Eq,
                TokenKind::Str("it's".into()),
                TokenKind::Word("AND".into()),
                TokenKind::Word("b".into()),
                TokenKind::GtEq,
                TokenKind::Float(1500.0),
                TokenKind::Word("OR".into()),
                TokenKind::Word("c".into()),
                TokenKind::NotEq,
                TokenKind::Param(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = tokenize("SELECT *\nFROM t").unwrap();
        let from = &toks[2];
        assert_eq!(from.kind, TokenKind::Word("FROM".into()));
        assert_eq!((from.line, from.col), (2, 1));
        let t = &toks[3];
        assert_eq!((t.line, t.col), (2, 6));
    }

    #[test]
    fn comments_and_semicolon() {
        assert_eq!(
            kinds("SELECT 1 -- trailing comment\n;"),
            vec![TokenKind::Word("SELECT".into()), TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn dotted_names_stay_tokens() {
        assert_eq!(
            kinds("cx.queries"),
            vec![
                TokenKind::Word("cx".into()),
                TokenKind::Dot,
                TokenKind::Word("queries".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_errors_have_positions() {
        let e = tokenize("SELECT 'open").unwrap_err();
        assert_eq!((e.line, e.col), (1, 8));
        assert!(e.to_string().contains("unterminated string"));
        let e = tokenize("a # b").unwrap_err();
        assert_eq!((e.line, e.col), (1, 3));
    }
}

//! Recursive-descent parser over the token stream.
//!
//! Keywords are matched case-insensitively; a fixed reserved-word list keeps
//! identifiers unambiguous (a column may not be named `select`). The parser
//! never panics on any token stream — the fuzz suite feeds it mutated
//! streams and asserts every outcome is `Ok` or a positioned `SqlError`.

use crate::ast::*;
use crate::error::{SqlError, SqlErrorKind};
use crate::lexer::{tokenize, Token, TokenKind};

/// Words that cannot be used as bare identifiers (tables, columns, aliases).
const RESERVED: &[&str] = &[
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "INNER",
    "LEFT", "SEMI", "ANTI", "CROSS", "ON", "AND", "OR", "NOT", "IS", "NULL", "TRUE", "FALSE",
    "AS", "SEMANTIC", "LIKE", "USING", "SIM", "UNION", "ALL", "PREPARE", "EXECUTE", "EXPLAIN",
    "ANALYZE", "ASC", "DESC", "SCORE", "COUNT", "SUM", "MIN", "MAX", "AVG",
];

/// Parse one statement (an optional trailing `;` is tolerated by the lexer).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        // The token vector always ends with Eof; pos never passes it.
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, tok: &Token, msg: impl Into<String>) -> SqlError {
        SqlError::new(SqlErrorKind::Parse, tok.line, tok.col, msg)
    }

    fn err_expected(&self, what: &str) -> SqlError {
        let tok = self.peek();
        self.err_at(tok, format!("expected {what}, found {}", tok.kind.describe()))
    }

    /// Uppercased keyword text of the current token, if it is a word.
    fn peek_word(&self) -> Option<String> {
        match &self.peek().kind {
            TokenKind::Word(w) => Some(w.to_ascii_uppercase()),
            _ => None,
        }
    }

    fn at_word(&self, kw: &str) -> bool {
        self.peek_word().as_deref() == Some(kw)
    }

    /// Consume `kw` if present; report whether it was.
    fn eat_word(&mut self, kw: &str) -> bool {
        if self.at_word(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, kw: &str) -> Result<Token, SqlError> {
        if self.at_word(kw) {
            Ok(self.bump())
        } else {
            Err(self.err_expected(&format!("`{kw}`")))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> Result<Token, SqlError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err_expected(what))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err_expected("end of statement"))
        }
    }

    /// A bare (non-reserved) identifier. Case is preserved.
    fn ident(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        match &self.peek().kind {
            TokenKind::Word(w) => {
                if RESERVED.contains(&w.to_ascii_uppercase().as_str()) {
                    let tok = self.peek();
                    Err(self.err_at(
                        tok,
                        format!("expected {what}, found reserved word `{w}`"),
                    ))
                } else {
                    let t = self.bump();
                    let TokenKind::Word(w) = t.kind else { unreachable!() };
                    Ok((w, Span { line: t.line, col: t.col }))
                }
            }
            _ => Err(self.err_expected(what)),
        }
    }

    /// A dotted name (`t`, `cx.queries`), returned joined with `.`.
    fn dotted_name(&mut self, what: &str) -> Result<(String, Span), SqlError> {
        let (mut name, span) = self.ident(what)?;
        while self.peek().kind == TokenKind::Dot {
            self.bump();
            let (part, _) = self.ident(what)?;
            name.push('.');
            name.push_str(&part);
        }
        Ok((name, span))
    }

    /// A column reference: everything before the last dot is the qualifier.
    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let (dotted, span) = self.dotted_name("a column name")?;
        match dotted.rfind('.') {
            Some(i) => Ok(ColumnRef {
                qualifier: Some(dotted[..i].to_string()),
                name: dotted[i + 1..].to_string(),
                span,
            }),
            None => Ok(ColumnRef { qualifier: None, name: dotted, span }),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek_word().as_deref() {
            Some("SELECT") => Ok(Statement::Query(self.query_expr()?)),
            Some("EXPLAIN") => {
                self.bump();
                let analyze = self.eat_word("ANALYZE");
                Ok(Statement::Explain { analyze, query: self.query_expr()? })
            }
            Some("PREPARE") => {
                let t = self.bump();
                let span = Span { line: t.line, col: t.col };
                let (name, _) = self.ident("a statement name")?;
                self.expect_word("AS")?;
                Ok(Statement::Prepare { name, query: self.query_expr()?, span })
            }
            Some("EXECUTE") => {
                let t = self.bump();
                let span = Span { line: t.line, col: t.col };
                let (name, _) = self.ident("a statement name")?;
                let mut args = Vec::new();
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            args.push(self.literal_expr()?);
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_kind(TokenKind::RParen, "`)` to close the argument list")?;
                }
                Ok(Statement::Execute { name, args, span })
            }
            _ => Err(self.err_expected("`SELECT`, `EXPLAIN`, `PREPARE`, or `EXECUTE`")),
        }
    }

    fn query_expr(&mut self) -> Result<QueryExpr, SqlError> {
        let mut selects = vec![self.select()?];
        while self.at_word("UNION") {
            let union_tok = self.bump();
            if !self.eat_word("ALL") {
                return Err(self.err_at(
                    &union_tok,
                    "plain `UNION` is not supported; use `UNION ALL` \
                     (add DISTINCT in an outer query to deduplicate)",
                ));
            }
            selects.push(self.select()?);
        }
        Ok(QueryExpr { selects })
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        let t = self.expect_word("SELECT")?;
        let span = Span { line: t.line, col: t.col };
        let distinct = self.eat_word("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            items.push(self.select_item()?);
        }
        self.expect_word("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        while let Some(j) = self.join_step()? {
            joins.push(j);
        }
        let selection = if self.eat_word("WHERE") { Some(self.expr()?) } else { None };
        let group_by = if self.at_word("GROUP") {
            self.bump();
            self.expect_word("BY")?;
            Some(self.group_by()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.at_word("ORDER") {
            self.bump();
            self.expect_word("BY")?;
            loop {
                let column = self.column_ref()?;
                let ascending = if self.eat_word("DESC") { false } else { self.eat_word("ASC"); true };
                order_by.push(OrderKey { column, ascending });
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_word("LIMIT") {
            match self.peek().kind.clone() {
                TokenKind::Int(n) => {
                    self.bump();
                    Some(LimitClause::Fixed(n))
                }
                TokenKind::Param(slot) => {
                    let t = self.bump();
                    Some(LimitClause::Param { slot, span: Span { line: t.line, col: t.col } })
                }
                _ => return Err(self.err_expected("a row count or `$n` after `LIMIT`")),
            }
        } else {
            None
        };
        Ok(Select { distinct, items, from, joins, selection, group_by, order_by, limit, span })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.peek().kind == TokenKind::Star {
            self.bump();
            return Ok(SelectItem::Star);
        }
        if let Some(w) = self.peek_word() {
            let func = match w.as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                let t = self.bump();
                let span = Span { line: t.line, col: t.col };
                self.expect_kind(TokenKind::LParen, "`(` after the aggregate function")?;
                let (func, column) = if func == AggFunc::Count && self.peek().kind == TokenKind::Star
                {
                    self.bump();
                    (AggFunc::CountStar, None)
                } else {
                    (func, Some(self.column_ref()?))
                };
                self.expect_kind(TokenKind::RParen, "`)` to close the aggregate")?;
                let alias =
                    if self.eat_word("AS") { Some(self.ident("an alias after `AS`")?.0) } else { None };
                return Ok(SelectItem::Agg { func, column, alias, span });
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_word("AS") { Some(self.ident("an alias after `AS`")?.0) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let (name, span) = self.dotted_name("a table name")?;
        let alias = if self.eat_word("AS") {
            Some(self.ident("an alias after `AS`")?.0)
        } else if let Some(w) = self.peek_word() {
            // Bare alias: any non-reserved word directly after the table.
            if RESERVED.contains(&w.as_str()) { None } else { Some(self.ident("an alias")?.0) }
        } else {
            None
        };
        Ok(TableRef { name, alias, span })
    }

    /// One join clause, or `None` when the next token starts another clause.
    fn join_step(&mut self) -> Result<Option<Join>, SqlError> {
        let join_type = match self.peek_word().as_deref() {
            Some("JOIN") => Some(JoinType::Inner),
            Some("INNER") => Some(JoinType::Inner),
            Some("LEFT") => Some(JoinType::Left),
            Some("SEMI") => Some(JoinType::LeftSemi),
            Some("ANTI") => Some(JoinType::LeftAnti),
            Some("CROSS") => {
                self.bump();
                self.expect_word("JOIN")?;
                let table = self.table_ref()?;
                return Ok(Some(Join::Cross { table }));
            }
            Some("SEMANTIC") => {
                // Disambiguate from a future clause starting with SEMANTIC:
                // here it can only be SEMANTIC JOIN.
                let t = self.bump();
                let span = Span { line: t.line, col: t.col };
                self.expect_word("JOIN")?;
                let table = self.table_ref()?;
                let model =
                    if self.eat_word("USING") { Some(self.ident("a model name")?.0) } else { None };
                self.expect_word("ON")?;
                self.expect_word("SIM")?;
                self.expect_kind(TokenKind::LParen, "`(` after `SIM`")?;
                let left = self.column_ref()?;
                self.expect_kind(TokenKind::Comma, "`,` between the SIM columns")?;
                let right = self.column_ref()?;
                self.expect_kind(TokenKind::RParen, "`)` to close `SIM(...)`")?;
                let strict = match self.peek().kind {
                    TokenKind::Gt => {
                        self.bump();
                        true
                    }
                    TokenKind::GtEq => {
                        self.bump();
                        false
                    }
                    _ => return Err(self.err_expected("`>` or `>=` after `SIM(...)`")),
                };
                let threshold = self.number("a similarity threshold")?;
                let score =
                    if self.eat_word("SCORE") { Some(self.ident("a score column name")?.0) } else { None };
                return Ok(Some(Join::Semantic {
                    table,
                    model,
                    left,
                    right,
                    strict,
                    threshold,
                    score,
                    span,
                }));
            }
            _ => None,
        };
        let Some(join_type) = join_type else { return Ok(None) };
        if !self.eat_word("JOIN") {
            self.bump(); // INNER / LEFT / SEMI / ANTI
            self.expect_word("JOIN")?;
        }
        let table = self.table_ref()?;
        self.expect_word("ON")?;
        let mut on = Vec::new();
        loop {
            let l = self.column_ref()?;
            self.expect_kind(TokenKind::Eq, "`=` in the join condition")?;
            let r = self.column_ref()?;
            on.push((l, r));
            if !self.eat_word("AND") {
                break;
            }
        }
        Ok(Some(Join::Relational { join_type, table, on }))
    }

    fn group_by(&mut self) -> Result<GroupBy, SqlError> {
        if self.at_word("SEMANTIC") {
            let t = self.bump();
            let span = Span { line: t.line, col: t.col };
            let column = self.column_ref()?;
            let model =
                if self.eat_word("USING") { Some(self.ident("a model name")?.0) } else { None };
            self.expect_kind(TokenKind::LParen, "`(` before the cluster threshold")?;
            let threshold = self.number("a cluster threshold")?;
            self.expect_kind(TokenKind::RParen, "`)` after the cluster threshold")?;
            return Ok(GroupBy::Semantic { column, model, threshold, span });
        }
        let mut cols = vec![self.column_ref()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            cols.push(self.column_ref()?);
        }
        Ok(GroupBy::Columns(cols))
    }

    /// A literal (with optional unary minus) — `EXECUTE` arguments.
    fn literal_expr(&mut self) -> Result<AstExpr, SqlError> {
        let tok = self.peek().clone();
        let expr = self.primary()?;
        match &expr {
            AstExpr::Literal { .. } => Ok(expr),
            _ => Err(self.err_at(&tok, "EXECUTE arguments must be literals")),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, SqlError> {
        let neg = if self.peek().kind == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        let v = match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.bump();
                n as f64
            }
            TokenKind::Float(x) => {
                self.bump();
                x
            }
            _ => return Err(self.err_expected(what)),
        };
        Ok(if neg { -v } else { v })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_word("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_word("AND") {
            let right = self.not_expr()?;
            left = AstExpr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr, SqlError> {
        if self.eat_word("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr, SqlError> {
        let left = self.additive()?;
        let op = match self.peek().kind {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::NotEq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::LtEq => Some(BinOp::LtEq),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::GtEq => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        if self.at_word("IS") {
            self.bump();
            let negated = self.eat_word("NOT");
            self.expect_word("NULL")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        if self.at_word("SEMANTIC") {
            let t = self.bump();
            let span = Span { line: t.line, col: t.col };
            self.expect_word("LIKE")?;
            let AstExpr::Column(column) = left else {
                return Err(self.err_at(
                    &t,
                    "the left side of SEMANTIC LIKE must be a plain column",
                ));
            };
            let probe = match self.peek().kind.clone() {
                TokenKind::Str(s) => {
                    self.bump();
                    Probe::Text(s)
                }
                TokenKind::Param(slot) => {
                    self.bump();
                    Probe::Param(slot)
                }
                _ => return Err(self.err_expected("a probe string or `$n` after `SEMANTIC LIKE`")),
            };
            let model =
                if self.eat_word("USING") { Some(self.ident("a model name")?.0) } else { None };
            self.expect_kind(TokenKind::LParen, "`(` before the SEMANTIC LIKE threshold")?;
            let first = self.number("a match count or threshold")?;
            let (k, threshold) = if self.peek().kind == TokenKind::Comma {
                self.bump();
                if first < 0.0 || first.fract() != 0.0 {
                    return Err(self.err_at(&t, format!("match count k must be a non-negative integer, got {first}")));
                }
                (Some(first as u64), self.number("a similarity threshold")?)
            } else {
                (None, first)
            };
            self.expect_kind(TokenKind::RParen, "`)` to close the SEMANTIC LIKE clause")?;
            return Ok(AstExpr::SemanticLike { column, probe, model, k, threshold, span });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr, SqlError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<AstExpr, SqlError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.primary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<AstExpr, SqlError> {
        let tok = self.peek().clone();
        let span = Span { line: tok.line, col: tok.col };
        match tok.kind {
            TokenKind::Minus => {
                self.bump();
                // Unary minus folds into the literal, so `-5` is one AST
                // node and round-trips exactly.
                let inner = self.peek().clone();
                match inner.kind {
                    TokenKind::Int(n) => {
                        self.bump();
                        // i64::MIN's magnitude exceeds i64::MAX by one.
                        if n > i64::MAX as u64 + 1 {
                            return Err(self.err_at(&inner, format!("integer `-{n}` is out of range")));
                        }
                        Ok(AstExpr::Literal {
                            value: Literal::Int((n as i128).wrapping_neg() as i64),
                            span,
                        })
                    }
                    TokenKind::Float(x) => {
                        self.bump();
                        Ok(AstExpr::Literal { value: Literal::Float(-x), span })
                    }
                    _ => Err(self.err_expected("a number after unary `-`")),
                }
            }
            TokenKind::Int(n) => {
                self.bump();
                if n > i64::MAX as u64 {
                    return Err(self.err_at(&tok, format!("integer `{n}` is out of range")));
                }
                Ok(AstExpr::Literal { value: Literal::Int(n as i64), span })
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(AstExpr::Literal { value: Literal::Float(x), span })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(AstExpr::Literal { value: Literal::Str(s), span })
            }
            TokenKind::Param(slot) => {
                self.bump();
                Ok(AstExpr::Param { slot, span })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect_kind(TokenKind::RParen, "`)` to close the parenthesized expression")?;
                Ok(inner)
            }
            TokenKind::Word(ref w) => match w.to_ascii_uppercase().as_str() {
                "TRUE" => {
                    self.bump();
                    Ok(AstExpr::Literal { value: Literal::Bool(true), span })
                }
                "FALSE" => {
                    self.bump();
                    Ok(AstExpr::Literal { value: Literal::Bool(false), span })
                }
                "NULL" => {
                    self.bump();
                    Ok(AstExpr::Literal { value: Literal::Null, span })
                }
                _ => Ok(AstExpr::Column(self.column_ref()?)),
            },
            _ => Err(self.err_expected("an expression")),
        }
    }
}

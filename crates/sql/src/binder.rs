//! Name resolution and lowering: AST → [`LogicalPlan`].
//!
//! The binder resolves table/column/model names against a
//! [`SchemaProvider`], mirrors the engine's join-collision renaming
//! (`Schema::join` prefixes duplicate right-side columns with `right.`),
//! and lowers to exactly the plan a `Query`-builder user would construct —
//! the differential harness in the root crate holds it to that bit-for-bit.
//!
//! Lowering order for one `SELECT` (documented in README):
//! scan → joins (left-fold, in text order) → relational `Filter` (the
//! non-semantic `WHERE` conjuncts, re-folded with `AND` in text order) →
//! `SemanticFilter`s (each top-level `SEMANTIC LIKE` conjunct, in text
//! order, each with its `k` as a `Limit` directly above it) → aggregation →
//! sort-below-projection (only when the sort keys are projected away) →
//! `Project` → `Distinct` → `Sort` → `Limit`.

use crate::ast::{
    AstExpr, ColumnRef, GroupBy, Join, Literal, OrderKey, Probe, QueryExpr, Select, SelectItem,
    Span, Statement,
};
use crate::error::{SqlError, SqlErrorKind};
use cx_exec::logical::{
    AggFunc, AggSpec, JoinType, LimitCount, LogicalPlan, SemanticJoinSpec, SemanticTarget, SortKey,
};
use cx_expr::{col, BinOp, Expr};
use cx_storage::{Scalar, Schema};
use std::sync::Arc;

/// What the binder needs to know about the world: table schemas (including
/// `cx.*` system tables) and the registered embedding models.
pub trait SchemaProvider {
    /// The schema of `name`, or `None` if no such table.
    fn table_schema(&self, name: &str) -> Option<Schema>;
    /// Names of registered embedding models (order irrelevant).
    fn model_names(&self) -> Vec<String>;
}

/// A bound query: the lowered plan plus how many `$n` slots it expects.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    pub plan: LogicalPlan,
    pub param_count: usize,
}

/// A fully bound statement, ready for the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    Query(BoundQuery),
    Explain { analyze: bool, query: BoundQuery },
    Prepare { name: String, query: BoundQuery },
    Execute { name: String, args: Vec<Scalar> },
}

fn bind_err(span: Span, msg: impl Into<String>) -> SqlError {
    SqlError::new(SqlErrorKind::Bind, span.line, span.col, msg)
}

fn literal_scalar(lit: &Literal) -> Scalar {
    match lit {
        Literal::Int(v) => Scalar::Int64(*v),
        Literal::Float(v) => Scalar::Float64(*v),
        Literal::Str(s) => Scalar::Utf8(s.clone()),
        Literal::Bool(b) => Scalar::Bool(*b),
        Literal::Null => Scalar::Null,
    }
}

/// Bind a parsed statement against `provider`.
pub fn bind(stmt: &Statement, provider: &dyn SchemaProvider) -> Result<Bound, SqlError> {
    match stmt {
        Statement::Query(q) => Ok(Bound::Query(bind_query(q, provider)?)),
        Statement::Explain { analyze, query } => {
            Ok(Bound::Explain { analyze: *analyze, query: bind_query(query, provider)? })
        }
        Statement::Prepare { name, query, .. } => {
            Ok(Bound::Prepare { name: name.clone(), query: bind_query(query, provider)? })
        }
        Statement::Execute { name, args, .. } => {
            let mut scalars = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    AstExpr::Literal { value, .. } => scalars.push(literal_scalar(value)),
                    other => {
                        return Err(bind_err(other.span(), "EXECUTE arguments must be literals"))
                    }
                }
            }
            Ok(Bound::Execute { name: name.clone(), args: scalars })
        }
    }
}

/// Bind a query expression (one select, or a `UNION ALL` chain).
pub fn bind_query(query: &QueryExpr, provider: &dyn SchemaProvider) -> Result<BoundQuery, SqlError> {
    let param_count = check_params(query)?;
    let plan = if query.selects.len() == 1 {
        bind_select(&query.selects[0], provider, true)?
    } else {
        // ORDER BY / LIMIT written after the last member apply to the whole
        // union (the standard reading of the unparenthesized text); earlier
        // members may not carry them.
        for s in &query.selects[..query.selects.len() - 1] {
            if !s.order_by.is_empty() || s.limit.is_some() {
                return Err(bind_err(
                    s.span,
                    "ORDER BY/LIMIT inside a UNION ALL member is not supported \
                     (write them once, after the last member)",
                ));
            }
        }
        let last = query.selects.len() - 1;
        let mut inputs = Vec::with_capacity(query.selects.len());
        for (i, s) in query.selects.iter().enumerate() {
            inputs.push(bind_select(s, provider, i == last)?);
        }
        // Hoist the last member's ORDER BY/LIMIT above the union.
        let tail = &query.selects[last];
        let (mut order_by, mut limit) = (Vec::new(), None);
        if !tail.order_by.is_empty() || tail.limit.is_some() {
            // bind_select(.., hoist=true) left them off the member plan.
            order_by = tail.order_by.clone();
            limit = tail.limit.clone();
        }
        let first_schema = plan_schema(&inputs[0], query.selects[0].span)?;
        for (i, input) in inputs.iter().enumerate().skip(1) {
            let s = plan_schema(input, query.selects[i].span)?;
            if s != first_schema {
                return Err(bind_err(
                    query.selects[i].span,
                    format!(
                        "UNION ALL members have different schemas: {:?} vs {:?}",
                        first_schema.names(),
                        s.names()
                    ),
                ));
            }
        }
        let mut plan = LogicalPlan::Union { inputs };
        if !order_by.is_empty() {
            let mut keys = Vec::with_capacity(order_by.len());
            for k in &order_by {
                if k.column.qualifier.is_some() || !first_schema.contains(&k.column.name) {
                    return Err(bind_err(
                        k.column.span,
                        format!("unknown column `{}` in UNION ALL ORDER BY", k.column),
                    ));
                }
                keys.push(SortKey { column: k.column.name.clone(), ascending: k.ascending });
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }
        if let Some(l) = &limit {
            plan = apply_limit(plan, l);
        }
        plan
    };
    Ok(BoundQuery { plan, param_count })
}

fn plan_schema(plan: &LogicalPlan, span: Span) -> Result<Schema, SqlError> {
    plan.schema().map_err(|e| bind_err(span, format!("invalid query: {e}")))
}

fn apply_limit(plan: LogicalPlan, limit: &crate::ast::LimitClause) -> LogicalPlan {
    let n = match limit {
        crate::ast::LimitClause::Fixed(n) => LimitCount::Fixed(*n as usize),
        crate::ast::LimitClause::Param { slot, .. } => LimitCount::Param(*slot as usize),
    };
    LogicalPlan::Limit { input: Box::new(plan), n }
}

/// Validate `$n` slot usage across the whole query: slots must be exactly
/// `0..n` (contiguous, 0-based). Returns the slot count.
fn check_params(query: &QueryExpr) -> Result<usize, SqlError> {
    let mut slots: Vec<(u32, Span)> = Vec::new();
    for s in &query.selects {
        for item in &s.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_expr_params(expr, &mut slots);
            }
        }
        if let Some(sel) = &s.selection {
            collect_expr_params(sel, &mut slots);
        }
        if let Some(crate::ast::LimitClause::Param { slot, span }) = &s.limit {
            slots.push((*slot, *span));
        }
    }
    let Some(&(max, _)) = slots.iter().max_by_key(|(n, _)| *n) else { return Ok(0) };
    for want in 0..max {
        if !slots.iter().any(|(n, _)| *n == want) {
            let (_, span) = slots.iter().find(|(n, _)| *n == max).unwrap();
            return Err(bind_err(
                *span,
                format!("parameter slots must be contiguous starting at $0; missing ${want}"),
            ));
        }
    }
    Ok(max as usize + 1)
}

fn collect_expr_params(e: &AstExpr, out: &mut Vec<(u32, Span)>) {
    match e {
        AstExpr::Param { slot, span } => out.push((*slot, *span)),
        AstExpr::Binary { left, right, .. } => {
            collect_expr_params(left, out);
            collect_expr_params(right, out);
        }
        AstExpr::Not(inner) | AstExpr::IsNull { expr: inner, .. } => {
            collect_expr_params(inner, out)
        }
        AstExpr::SemanticLike { probe: Probe::Param(slot), span, .. } => {
            out.push((*slot, *span))
        }
        _ => {}
    }
}

// ---- scope ---------------------------------------------------------------

/// One `FROM`/`JOIN` table visible to name resolution, with the mapping
/// from its own column names to the physical (possibly `right.`-renamed)
/// names in the running plan schema.
struct ScopeEntry {
    alias: Option<String>,
    table: String,
    columns: Vec<(String, String)>,
}

impl ScopeEntry {
    fn matches(&self, qualifier: &str) -> bool {
        match &self.alias {
            Some(a) => a == qualifier,
            None => self.table == qualifier,
        }
    }

    fn display_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

struct Scope {
    entries: Vec<ScopeEntry>,
    /// Columns the plan produces beyond any base table (semantic-join score
    /// columns). Resolvable unqualified only.
    extras: Vec<String>,
    /// Running physical schema of the plan built so far.
    schema: Schema,
}

impl Scope {
    fn new(table: &crate::ast::TableRef, schema: Schema) -> Self {
        let columns = schema.names().iter().map(|n| (n.to_string(), n.to_string())).collect();
        Scope {
            entries: vec![ScopeEntry {
                alias: table.alias.clone(),
                table: table.name.clone(),
                columns,
            }],
            extras: Vec::new(),
            schema,
        }
    }

    /// Extend with a joined table, mirroring `Schema::join`'s collision
    /// renaming. `visible` is false for semi/anti joins, whose right side
    /// does not appear in the output.
    fn add_join(&mut self, table: &crate::ast::TableRef, right: &Schema, visible: bool) {
        if !visible {
            return;
        }
        let mut columns = Vec::with_capacity(right.names().len());
        for n in right.names() {
            let phys = if self.schema.contains(n) { format!("right.{n}") } else { n.to_string() };
            columns.push((n.to_string(), phys));
        }
        self.schema = self.schema.join(right);
        self.entries.push(ScopeEntry {
            alias: table.alias.clone(),
            table: table.name.clone(),
            columns,
        });
    }

    /// Resolve a column reference to its physical name.
    fn resolve(&self, c: &ColumnRef) -> Result<String, SqlError> {
        if let Some(q) = &c.qualifier {
            let Some(entry) = self.entries.iter().find(|e| e.matches(q)) else {
                return Err(bind_err(c.span, format!("unknown table or alias `{q}`")));
            };
            return entry
                .columns
                .iter()
                .find(|(src, _)| src == &c.name)
                .map(|(_, phys)| phys.clone())
                .ok_or_else(|| bind_err(c.span, format!("unknown column `{c}`")));
        }
        let mut hits: Vec<(&str, String)> = Vec::new();
        for e in &self.entries {
            if let Some((_, phys)) = e.columns.iter().find(|(src, _)| src == &c.name) {
                hits.push((e.display_name(), phys.clone()));
            }
        }
        for x in &self.extras {
            if x == &c.name {
                hits.push(("", x.clone()));
            }
        }
        match hits.len() {
            0 => Err(bind_err(c.span, format!("unknown column `{}`", c.name))),
            1 => Ok(hits.pop().unwrap().1),
            _ => Err(bind_err(
                c.span,
                format!(
                    "column `{}` is ambiguous (appears in {}); qualify it",
                    c.name,
                    hits.iter()
                        .map(|(t, _)| format!("`{t}`"))
                        .collect::<Vec<_>>()
                        .join(" and ")
                ),
            )),
        }
    }
}

// ---- select lowering -----------------------------------------------------

struct Binder<'a> {
    provider: &'a dyn SchemaProvider,
}

/// Lower one `SELECT`. When `with_tail` is false, the member's ORDER BY /
/// LIMIT are left off (they are hoisted above the enclosing union).
fn bind_select(
    select: &Select,
    provider: &dyn SchemaProvider,
    with_tail: bool,
) -> Result<LogicalPlan, SqlError> {
    Binder { provider }.select(select, with_tail)
}

impl<'a> Binder<'a> {
    fn table_schema(&self, t: &crate::ast::TableRef) -> Result<Schema, SqlError> {
        self.provider
            .table_schema(&t.name)
            .ok_or_else(|| bind_err(t.span, format!("unknown table `{}`", t.name)))
    }

    fn resolve_model(&self, model: &Option<String>, span: Span) -> Result<String, SqlError> {
        let mut names = self.provider.model_names();
        names.sort();
        match model {
            Some(m) => {
                if names.iter().any(|n| n == m) {
                    Ok(m.clone())
                } else {
                    Err(bind_err(
                        span,
                        format!("unknown model `{m}` (registered: {})", names.join(", ")),
                    ))
                }
            }
            None => match names.len() {
                0 => Err(bind_err(span, "no embedding models are registered")),
                1 => Ok(names.pop().unwrap()),
                _ => Err(bind_err(
                    span,
                    format!(
                        "multiple models are registered ({}); pick one with USING",
                        names.join(", ")
                    ),
                )),
            },
        }
    }

    fn check_threshold(&self, threshold: f64, span: Span) -> Result<f32, SqlError> {
        if !threshold.is_finite() || !(-1.0..=1.0).contains(&threshold) {
            return Err(bind_err(
                span,
                format!("semantic threshold must be within [-1, 1], got {threshold}"),
            ));
        }
        Ok(threshold as f32)
    }

    fn select(&self, select: &Select, with_tail: bool) -> Result<LogicalPlan, SqlError> {
        // FROM + joins.
        let base_schema = self.table_schema(&select.from)?;
        let mut scope = Scope::new(&select.from, base_schema.clone());
        let mut plan =
            LogicalPlan::Scan { source: select.from.name.clone(), schema: Arc::new(base_schema) };
        for join in &select.joins {
            plan = self.join(plan, &mut scope, join)?;
        }

        // WHERE: relational conjuncts first, then semantic ones, text order.
        if let Some(selection) = &select.selection {
            let mut conjuncts = Vec::new();
            split_conjuncts(selection, &mut conjuncts);
            let (mut relational, mut semantic) = (Vec::new(), Vec::new());
            for c in conjuncts {
                match c {
                    AstExpr::SemanticLike { .. } => semantic.push(c),
                    other => relational.push(other),
                }
            }
            let mut predicate: Option<Expr> = None;
            for c in &relational {
                if let Some(span) = find_semantic_like(c) {
                    return Err(bind_err(
                        span,
                        "SEMANTIC LIKE must be a top-level AND conjunct of the WHERE clause",
                    ));
                }
                let bound = self.expr(c, &scope)?;
                predicate = Some(match predicate {
                    Some(p) => p.and(bound),
                    None => bound,
                });
            }
            if let Some(predicate) = predicate {
                plan = LogicalPlan::Filter { predicate, input: Box::new(plan) };
            }
            for c in &mut semantic {
                let AstExpr::SemanticLike { column, probe, model, k, threshold, span } = c else {
                    unreachable!()
                };
                let phys = scope.resolve(column)?;
                let model = self.resolve_model(model, *span)?;
                let threshold = self.check_threshold(*threshold, *span)?;
                let target = match probe {
                    Probe::Text(s) => SemanticTarget::Text(s.clone()),
                    Probe::Param(slot) => SemanticTarget::Param(*slot as usize),
                };
                plan = LogicalPlan::SemanticFilter {
                    input: Box::new(plan),
                    column: phys,
                    target,
                    model,
                    threshold,
                };
                if let Some(k) = k {
                    if *k == 0 {
                        return Err(bind_err(*span, "match count k must be at least 1"));
                    }
                    plan = LogicalPlan::Limit {
                        input: Box::new(plan),
                        n: LimitCount::Fixed(*k as usize),
                    };
                }
            }
        }

        // Select list + GROUP BY → aggregation and/or projection.
        let star = select.items.iter().any(|i| matches!(i, SelectItem::Star));
        if star && select.items.len() > 1 {
            return Err(bind_err(select.span, "`*` cannot be combined with other select items"));
        }
        let has_agg = select.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));

        // (source physical name, output name) per item, in select order —
        // compared against the natural aggregate output to decide whether a
        // projection is needed.
        let mut project: Option<Vec<(Expr, String)>> = None;

        if let Some(group_by) = &select.group_by {
            if star {
                return Err(bind_err(select.span, "`*` cannot be used with GROUP BY"));
            }
            let (natural, aggs_out) = match group_by {
                GroupBy::Columns(cols) => {
                    let mut keys = Vec::with_capacity(cols.len());
                    for c in cols {
                        keys.push(scope.resolve(c)?);
                    }
                    let aggs = self.agg_specs(select, &scope, &keys, None)?;
                    let mut natural: Vec<String> = keys.clone();
                    natural.extend(aggs.iter().map(|a| a.alias.clone()));
                    plan = LogicalPlan::Aggregate {
                        input: Box::new(plan),
                        group_by: keys,
                        aggs: aggs.clone(),
                    };
                    (natural, aggs)
                }
                GroupBy::Semantic { column, model, threshold, span } => {
                    let phys = scope.resolve(column)?;
                    let model = self.resolve_model(model, *span)?;
                    let threshold = self.check_threshold(*threshold, *span)?;
                    let aggs =
                        self.agg_specs(select, &scope, std::slice::from_ref(&phys), Some("cluster_id"))?;
                    let natural: Vec<String> = [phys.clone(), "cluster_id".to_string()]
                        .into_iter()
                        .chain(aggs.iter().map(|a| a.alias.clone()))
                        .collect();
                    plan = LogicalPlan::SemanticGroupBy {
                        input: Box::new(plan),
                        column: phys,
                        model,
                        threshold,
                        aggs: aggs.clone(),
                    };
                    (natural, aggs)
                }
            };
            let _ = aggs_out;
            let desired = self.grouped_output(select, &scope, group_by)?;
            let natural_pairs: Vec<(String, String)> =
                natural.iter().map(|n| (n.clone(), n.clone())).collect();
            if desired != natural_pairs {
                project =
                    Some(desired.into_iter().map(|(src, out)| (col(src), out)).collect());
            }
        } else if has_agg {
            // Implicit global aggregate: every item must be an aggregate.
            let aggs = self.agg_specs(select, &scope, &[], None)?;
            plan = LogicalPlan::Aggregate { input: Box::new(plan), group_by: Vec::new(), aggs };
        } else if !star {
            let mut exprs = Vec::with_capacity(select.items.len());
            for item in &select.items {
                let SelectItem::Expr { expr, alias } = item else { unreachable!() };
                let bound = self.expr(expr, &scope)?;
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match &bound {
                        Expr::Column(name) => name.clone(),
                        _ => {
                            return Err(bind_err(
                                expr.span(),
                                "a computed select item needs an alias (`AS name`)",
                            ))
                        }
                    },
                };
                exprs.push((bound, name));
            }
            project = Some(exprs);
        }

        // ORDER BY placement relative to the projection (see module docs).
        let pre_schema = plan_schema(&plan, select.span)?;
        let mut sort_below: Vec<SortKey> = Vec::new();
        let mut sort_above: Vec<SortKey> = Vec::new();
        if with_tail && !select.order_by.is_empty() {
            let output_names: Option<Vec<&str>> =
                project.as_ref().map(|p| p.iter().map(|(_, n)| n.as_str()).collect());
            let keys = self.sort_keys(&select.order_by, &scope, &pre_schema, &output_names)?;
            match keys {
                SortPlacement::Above(keys) => sort_above = keys,
                SortPlacement::Below(keys) => {
                    if select.distinct {
                        return Err(bind_err(
                            select.order_by[0].column.span,
                            "with DISTINCT, ORDER BY columns must appear in the select list",
                        ));
                    }
                    sort_below = keys;
                }
            }
        }

        if !sort_below.is_empty() {
            plan = LogicalPlan::Sort { input: Box::new(plan), keys: sort_below };
        }
        if let Some(exprs) = project {
            plan = LogicalPlan::Project { exprs, input: Box::new(plan) };
        }
        if select.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        if !sort_above.is_empty() {
            plan = LogicalPlan::Sort { input: Box::new(plan), keys: sort_above };
        }
        if with_tail {
            if let Some(l) = &select.limit {
                plan = apply_limit(plan, l);
            }
        }
        Ok(plan)
    }

    fn join(
        &self,
        plan: LogicalPlan,
        scope: &mut Scope,
        join: &Join,
    ) -> Result<LogicalPlan, SqlError> {
        match join {
            Join::Relational { join_type, table, on } => {
                let right_schema = self.table_schema(table)?;
                let right = LogicalPlan::Scan {
                    source: table.name.clone(),
                    schema: Arc::new(right_schema.clone()),
                };
                let mut pairs = Vec::with_capacity(on.len());
                for (l, r) in on {
                    pairs.push(self.join_pair(scope, table, &right_schema, l, r)?);
                }
                let visible = !matches!(join_type, JoinType::LeftSemi | JoinType::LeftAnti);
                scope.add_join(table, &right_schema, visible);
                Ok(LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(right),
                    on: pairs,
                    join_type: *join_type,
                })
            }
            Join::Cross { table } => {
                let right_schema = self.table_schema(table)?;
                let right = LogicalPlan::Scan {
                    source: table.name.clone(),
                    schema: Arc::new(right_schema.clone()),
                };
                scope.add_join(table, &right_schema, true);
                Ok(LogicalPlan::CrossJoin { left: Box::new(plan), right: Box::new(right) })
            }
            Join::Semantic { table, model, left, right, threshold, score, span, .. } => {
                let right_schema = self.table_schema(table)?;
                let right_plan = LogicalPlan::Scan {
                    source: table.name.clone(),
                    schema: Arc::new(right_schema.clone()),
                };
                let (left_col, right_col) =
                    self.join_pair(scope, table, &right_schema, left, right)?;
                let model = self.resolve_model(model, *span)?;
                let threshold = self.check_threshold(*threshold, *span)?;
                let score_column = score.clone().unwrap_or_else(|| "similarity".to_string());
                scope.add_join(table, &right_schema, true);
                if scope.schema.contains(&score_column) || scope.extras.contains(&score_column) {
                    return Err(bind_err(
                        *span,
                        format!(
                            "score column `{score_column}` already exists; \
                             name it with `SCORE <name>`"
                        ),
                    ));
                }
                scope.extras.push(score_column.clone());
                Ok(LogicalPlan::SemanticJoin {
                    left: Box::new(plan),
                    right: Box::new(right_plan),
                    spec: SemanticJoinSpec {
                        left_column: left_col,
                        right_column: right_col,
                        model,
                        threshold,
                        score_column,
                    },
                })
            }
        }
    }

    /// Resolve an ON pair: one side against the accumulated left scope, the
    /// other against the newly joined table. Order-insensitive — `ON a.x =
    /// b.y` and `ON b.y = a.x` bind identically.
    fn join_pair(
        &self,
        scope: &Scope,
        table: &crate::ast::TableRef,
        right_schema: &Schema,
        l: &ColumnRef,
        r: &ColumnRef,
    ) -> Result<(String, String), SqlError> {
        let resolve_right = |c: &ColumnRef| -> Result<String, SqlError> {
            if let Some(q) = &c.qualifier {
                let name_matches = match &table.alias {
                    Some(a) => a == q,
                    None => &table.name == q,
                };
                if !name_matches {
                    return Err(bind_err(c.span, format!("unknown table or alias `{q}`")));
                }
            }
            if right_schema.contains(&c.name) {
                Ok(c.name.clone())
            } else {
                Err(bind_err(c.span, format!("unknown column `{c}` in joined table `{}`", table.name)))
            }
        };
        match (scope.resolve(l), resolve_right(r)) {
            (Ok(lp), Ok(rp)) => Ok((lp, rp)),
            (left_res, right_res) => {
                // Try the swapped orientation before reporting.
                if let (Ok(lp), Ok(rp)) = (scope.resolve(r), resolve_right(l)) {
                    return Ok((lp, rp));
                }
                Err(left_res.err().or(right_res.err()).unwrap())
            }
        }
    }

    /// Aggregate specs from the select list, validating non-aggregate items
    /// against the group keys (plus `extra_key`, e.g. `cluster_id`).
    fn agg_specs(
        &self,
        select: &Select,
        scope: &Scope,
        keys: &[String],
        extra_key: Option<&str>,
    ) -> Result<Vec<AggSpec>, SqlError> {
        let mut aggs = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Agg { func, column, alias, span } => {
                    let (column, default_alias) = match column {
                        Some(c) => {
                            let phys = scope.resolve(c)?;
                            let default =
                                format!("{}_{}", func_name(*func), c.name.to_ascii_lowercase());
                            (Some(phys), default)
                        }
                        None => {
                            if *func != AggFunc::CountStar {
                                return Err(bind_err(*span, "aggregate needs a column argument"));
                            }
                            (None, "count".to_string())
                        }
                    };
                    aggs.push(AggSpec {
                        func: *func,
                        column,
                        alias: alias.clone().unwrap_or(default_alias),
                    });
                }
                SelectItem::Expr { expr, .. } => {
                    let AstExpr::Column(c) = expr else {
                        return Err(bind_err(
                            expr.span(),
                            "select items under GROUP BY must be group keys or aggregates",
                        ));
                    };
                    if extra_key == Some(c.name.as_str()) && c.qualifier.is_none() {
                        continue;
                    }
                    let phys = scope.resolve(c)?;
                    if keys.is_empty() {
                        return Err(bind_err(
                            c.span,
                            format!(
                                "column `{}` cannot be mixed with aggregates without GROUP BY",
                                c.name
                            ),
                        ));
                    }
                    if !keys.contains(&phys) {
                        return Err(bind_err(
                            c.span,
                            format!(
                                "column `{}` must appear in GROUP BY or inside an aggregate",
                                c.name
                            ),
                        ));
                    }
                }
                SelectItem::Star => {
                    return Err(bind_err(select.span, "`*` cannot be used with aggregates"))
                }
            }
        }
        Ok(aggs)
    }

    /// The (source, output) name pairs the select list asks for, in order —
    /// used to decide whether the natural aggregate output needs reshaping.
    fn grouped_output(
        &self,
        select: &Select,
        scope: &Scope,
        group_by: &GroupBy,
    ) -> Result<Vec<(String, String)>, SqlError> {
        let extra_key = matches!(group_by, GroupBy::Semantic { .. }).then_some("cluster_id");
        let mut out = Vec::with_capacity(select.items.len());
        for item in &select.items {
            match item {
                SelectItem::Agg { func, column, alias, .. } => {
                    let default = match column {
                        Some(c) => format!("{}_{}", func_name(*func), c.name.to_ascii_lowercase()),
                        None => "count".to_string(),
                    };
                    let name = alias.clone().unwrap_or(default);
                    out.push((name.clone(), name));
                }
                SelectItem::Expr { expr, alias } => {
                    let AstExpr::Column(c) = expr else { unreachable!() };
                    let src = if extra_key == Some(c.name.as_str()) && c.qualifier.is_none() {
                        c.name.clone()
                    } else {
                        scope.resolve(c)?
                    };
                    out.push((src.clone(), alias.clone().unwrap_or(src)));
                }
                SelectItem::Star => unreachable!(),
            }
        }
        Ok(out)
    }

    fn sort_keys(
        &self,
        order_by: &[OrderKey],
        scope: &Scope,
        pre_schema: &Schema,
        output_names: &Option<Vec<&str>>,
    ) -> Result<SortPlacement, SqlError> {
        let Some(output_names) = output_names else {
            // No projection: sort on the plan's own columns.
            let mut keys = Vec::with_capacity(order_by.len());
            for k in order_by {
                let phys = self.sort_resolve(k, scope, pre_schema)?;
                keys.push(SortKey { column: phys, ascending: k.ascending });
            }
            return Ok(SortPlacement::Above(keys));
        };
        // With a projection, prefer sorting over the projected output (so
        // aliases are usable); fall back to sorting beneath it when the key
        // is projected away.
        let mut above = Vec::new();
        let mut below = Vec::new();
        for k in order_by {
            if k.column.qualifier.is_none() && output_names.contains(&k.column.name.as_str()) {
                above.push(SortKey { column: k.column.name.clone(), ascending: k.ascending });
                continue;
            }
            let phys = self.sort_resolve(k, scope, pre_schema)?;
            if output_names.contains(&phys.as_str()) {
                above.push(SortKey { column: phys, ascending: k.ascending });
            } else {
                below.push(SortKey { column: phys, ascending: k.ascending });
            }
        }
        if below.is_empty() {
            Ok(SortPlacement::Above(above))
        } else if above.is_empty() {
            Ok(SortPlacement::Below(below))
        } else {
            Err(bind_err(
                order_by[0].column.span,
                "ORDER BY mixes projected and non-projected columns; \
                 add the missing columns to the select list",
            ))
        }
    }

    fn sort_resolve(
        &self,
        k: &OrderKey,
        scope: &Scope,
        pre_schema: &Schema,
    ) -> Result<String, SqlError> {
        // After aggregation the scope's base-table entries are stale; the
        // aggregate output schema is authoritative.
        if k.column.qualifier.is_none() && pre_schema.contains(&k.column.name) {
            return Ok(k.column.name.clone());
        }
        let phys = scope.resolve(&k.column)?;
        if pre_schema.contains(&phys) {
            Ok(phys)
        } else {
            Err(bind_err(k.column.span, format!("unknown column `{}` in ORDER BY", k.column)))
        }
    }

    fn expr(&self, e: &AstExpr, scope: &Scope) -> Result<Expr, SqlError> {
        match e {
            AstExpr::Column(c) => Ok(col(scope.resolve(c)?)),
            AstExpr::Literal { value, .. } => Ok(Expr::Literal(literal_scalar(value))),
            AstExpr::Param { slot, .. } => Ok(Expr::Parameter(*slot as usize)),
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(self.expr(left, scope)?),
                right: Box::new(self.expr(right, scope)?),
            }),
            AstExpr::Not(inner) => Ok(self.expr(inner, scope)?.not()),
            AstExpr::IsNull { expr, negated } => {
                let bound = self.expr(expr, scope)?.is_null();
                Ok(if *negated { bound.not() } else { bound })
            }
            AstExpr::SemanticLike { span, .. } => Err(bind_err(
                *span,
                "SEMANTIC LIKE must be a top-level AND conjunct of the WHERE clause",
            )),
        }
    }
}

enum SortPlacement {
    Above(Vec<SortKey>),
    Below(Vec<SortKey>),
}

fn func_name(func: AggFunc) -> &'static str {
    match func {
        AggFunc::CountStar | AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    }
}

fn split_conjuncts<'e>(e: &'e AstExpr, out: &mut Vec<&'e AstExpr>) {
    match e {
        AstExpr::Binary { op: BinOp::And, left, right } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// The span of the first `SEMANTIC LIKE` nested anywhere inside `e`.
fn find_semantic_like(e: &AstExpr) -> Option<Span> {
    match e {
        AstExpr::SemanticLike { span, .. } => Some(*span),
        AstExpr::Binary { left, right, .. } => {
            find_semantic_like(left).or_else(|| find_semantic_like(right))
        }
        AstExpr::Not(inner) | AstExpr::IsNull { expr: inner, .. } => find_semantic_like(inner),
        _ => None,
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, ranges-as-strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//! `prop_recursive` — on top of a deterministic SplitMix64 generator.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case index and seed instead), and case generation is seeded from
//! the test name so runs are reproducible without a persistence file.

use std::fmt;
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, and plenty random for test-case generation.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategies, built eagerly to `depth` levels; at each level
    /// the generator picks the branch case or a leaf with equal odds, so
    /// expansion always terminates. `_desired_size`/`_expected_branch` are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = f(current).boxed();
            let fallback = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng| {
                if rng.next_u64() % 2 == 0 {
                    branch.generate(rng)
                } else {
                    fallback.generate(rng)
                }
            }));
        }
        current
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

/// Full-domain strategies for primitives (proptest's `any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Constructor used by the `prop_oneof!` macro expansion.
pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    OneOf { options }
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Length bounds for [`vec`](fn@vec); built from `a..b` or `a..=b`.
        pub struct SizeRange {
            min: usize,
            /// Inclusive upper bound.
            max: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { min: r.start, max: r.end - 1 }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { min: *r.start(), max: *r.end() }
            }
        }

        /// Output of [`vec`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min + 1) as u64;
                let len = self.size.min + rng.next_below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Output of [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.options.is_empty(), "select from empty list");
                self.options[rng.next_below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Uniformly selects one of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A failed property assertion (from `prop_assert!` or an explicit `Err`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias real proptest provides; same as [`TestCaseError::fail`] here.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn seed_for(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Drives one `proptest!`-declared test: `cases` deterministic cases, each
/// with a fresh seeded RNG; the first failure panics with its seed.
pub fn run_cases(
    cfg: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..cfg.cases {
        let seed = seed_for(name, i);
        let mut rng = TestRng::new(seed);
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i} (seed {seed:#x}): {e}");
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&($cfg), stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&x));
            let f = Strategy::generate(&(-1.5f32..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(any::<bool>(), 3..6), &mut rng);
            assert!((3..6).contains(&v.len()));
            let fixed = Strategy::generate(&prop::collection::vec(0i64..5, 4..=4), &mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_for("t", 0));
        let mut b = crate::TestRng::new(crate::seed_for("t", 0));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0i64..100, flips in prop::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(flips.len(), flips.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn config_respected(pair in (0i64..5, Just("tag"))) {
            prop_assert!(pair.0 < 5 && pair.1 == "tag");
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Clone, Debug)]
        enum E {
            Leaf(i64),
            Node(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(v) => {
                    assert!((-1..10).contains(v), "leaf value out of strategy domain");
                    1
                }
                E::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = prop_oneof![(0i64..10).prop_map(E::Leaf), Just(E::Leaf(-1))].prop_recursive(
            3,
            8,
            2,
            |inner| (inner.clone(), inner).prop_map(|(l, r)| E::Node(Box::new(l), Box::new(r))),
        );
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let e = Strategy::generate(&strat, &mut rng);
            assert!(depth(&e) <= 4);
        }
    }
}

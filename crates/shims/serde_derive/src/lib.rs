//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many data types for
//! forward compatibility, but nothing in the tree serializes yet and the
//! build environment is offline, so the derives expand to nothing. Swap
//! this shim for the real crates.io `serde`/`serde_derive` when a wire
//! format is actually needed.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

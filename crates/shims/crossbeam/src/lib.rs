//! Offline stand-in for the `crossbeam::thread` scoped-thread API,
//! implemented on `std::thread::scope` (stable since 1.63).
//!
//! Behavioral difference: if a spawned worker panics and its handle is
//! never joined, the panic resurfaces when the scope exits (std semantics)
//! instead of being returned as the outer `Err`. All call sites in this
//! workspace either join explicitly or treat worker panics as fatal, so
//! the difference is unobservable here.

pub mod thread {
    use std::thread as stdthread;

    /// Matches `crossbeam::thread::Scope`'s spawn surface.
    pub struct Scope<'scope, 'env: 'scope>(&'scope stdthread::Scope<'scope, 'env>);

    /// Matches `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope again so
        /// workers can spawn sub-workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> stdthread::Result<T> {
            self.0.join()
        }
    }

    /// Runs `f` with a scope handle; all spawned workers are joined before
    /// this returns. Always `Ok` (see module docs for the panic caveat).
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_and_join() {
        let data = [1, 2, 3];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn workers_can_spawn_subworkers() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}

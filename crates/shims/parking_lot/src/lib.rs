//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the same poison-free `lock()`/`read()`/`write()` surface the
//! workspace uses. Poisoned std locks (a panic while holding the guard)
//! recover the inner guard, matching parking_lot's no-poisoning contract.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` look-alike over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` look-alike over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}

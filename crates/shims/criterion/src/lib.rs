//! Offline stand-in for `criterion` exposing the subset of its API this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and `black_box`.
//!
//! Measurement is deliberately simple — warm up, calibrate an iteration
//! count per sample, take `sample_size` wall-clock samples, report
//! `[min median max]` per iteration — which is plenty to rank kernel
//! rungs against each other on one machine. No statistics files, no
//! HTML reports, no outlier analysis.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, kept so benches can emit machine-readable
/// reports (e.g. `BENCH_*.json`) after their groups run.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full id (`group/function/parameter`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// p50 across samples, ns per iteration (`cx_obs` log-linear histogram).
    pub p50_ns: f64,
    /// p95 across samples, ns per iteration.
    pub p95_ns: f64,
    /// p99 across samples, ns per iteration.
    pub p99_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call (process-wide).
pub fn take_results() -> Vec<BenchRecord> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`; cargo
        // itself injects `--bench`. Keep the first free-standing word as a
        // substring filter, like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            samples: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchIdLike>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = self.full_id(&id.into().0);
        if self.criterion.matches(&full) {
            self.run(&full, &mut f);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = self.full_id(&id.id);
        if self.criterion.matches(&full) {
            self.run(&full, &mut |b: &mut Bencher| f(b, input));
        }
        self
    }

    pub fn finish(self) {}

    fn full_id(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(ref r) => {
                println!(
                    "{id:<48} time: [{} {} {}]",
                    fmt_ns(r.min),
                    fmt_ns(r.median),
                    fmt_ns(r.max)
                );
                RESULTS.lock().expect("results lock").push(BenchRecord {
                    id: id.to_string(),
                    median_ns: r.median,
                    min_ns: r.min,
                    max_ns: r.max,
                    p50_ns: r.hist.p50 as f64,
                    p95_ns: r.hist.p95 as f64,
                    p99_ns: r.hist.p99 as f64,
                });
            }
            None => println!("{id:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Accepts both `&str`/`String` and [`BenchmarkId`] for `bench_function`.
pub struct BenchIdLike(String);

impl From<&str> for BenchIdLike {
    fn from(s: &str) -> Self {
        BenchIdLike(s.to_string())
    }
}

impl From<String> for BenchIdLike {
    fn from(s: String) -> Self {
        BenchIdLike(s)
    }
}

impl From<BenchmarkId> for BenchIdLike {
    fn from(id: BenchmarkId) -> Self {
        BenchIdLike(id.id)
    }
}

struct SampleStats {
    min: f64,
    median: f64,
    max: f64,
    hist: cx_obs::HistSnapshot,
}

/// Runs the measured closure; one `iter` call per benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    result: Option<SampleStats>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find how many iterations fill one sample.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut iters_timed = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(f());
            iters_timed += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_timed.max(1) as f64;
        let sample_time = self.measurement.as_secs_f64() / self.samples as f64;
        let iters_per_sample = ((sample_time / per_iter.max(1e-9)) as u64).max(1);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let hist = cx_obs::Histogram::new();
        for s in &samples {
            // Round (don't truncate) so sub-nanosecond per-iteration
            // samples still register as 1 ns instead of vanishing.
            hist.record_duration(Duration::from_nanos(s.round().max(1.0) as u64));
        }
        self.result = Some(SampleStats {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
            hist: hist.snapshot(),
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn records_results_for_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("rec");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        group.bench_function("f", |b| b.iter(|| black_box(2u64 * 3)));
        group.finish();
        let recorded = take_results();
        let r = recorded.iter().find(|r| r.id == "rec/f").expect("recorded");
        assert!(r.median_ns > 0.0 && r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.p50_ns > 0.0 && r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns);
        // Drained: a second take returns nothing new.
        assert!(take_results().iter().all(|r| r.id != "rec/f"));
    }

    #[test]
    fn formats_units() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
    }
}

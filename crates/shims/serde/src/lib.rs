//! Offline stand-in for `serde`: the trait names exist so `use serde::…`
//! resolves, and the derives (re-exported from the sibling no-op
//! `serde_derive` shim) expand to nothing. No code in this workspace
//! serializes; replace with the real crates when one does.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; never implemented or
/// required by this workspace.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name; never implemented or
/// required by this workspace.
pub trait Deserialize<'de> {}

//! Adaptive operator-variant selection (JIT-style specialization).
//!
//! "Just-in-time code generation allows this to be specified as late as
//! query runtime" (Section VI). Full LLVM-style codegen is out of scope;
//! what the engine *needs* from JIT is the decision: among semantically
//! equivalent operator variants (scalar vs unrolled kernel, f32 vs
//! quantized, serial vs parallel), pick the fastest for the data actually
//! flowing — at runtime, by measuring a sample morsel, then sticking with
//! the winner.

use std::time::Instant;

/// Picks among named variants by timing them on sample input.
pub struct AdaptivePicker<I: ?Sized> {
    names: Vec<String>,
    #[allow(clippy::type_complexity)]
    variants: Vec<Box<dyn Fn(&I) + Send + Sync>>,
    chosen: Option<usize>,
    timings_ns: Vec<f64>,
}

impl<I: ?Sized> AdaptivePicker<I> {
    /// An empty picker.
    pub fn new() -> Self {
        AdaptivePicker {
            names: Vec::new(),
            variants: Vec::new(),
            chosen: None,
            timings_ns: Vec::new(),
        }
    }

    /// Registers a variant.
    pub fn variant(mut self, name: impl Into<String>, f: impl Fn(&I) + Send + Sync + 'static) -> Self {
        self.names.push(name.into());
        self.variants.push(Box::new(f));
        self
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether no variants are registered.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Calibrates on `sample`: runs every variant `trials` times
    /// (plus one warm-up), recording the best observed time each, and
    /// remembers the winner. Returns the winner's index.
    pub fn calibrate(&mut self, sample: &I, trials: usize) -> usize {
        assert!(!self.variants.is_empty(), "no variants registered");
        let trials = trials.max(1);
        self.timings_ns.clear();
        for f in &self.variants {
            f(sample); // warm-up (caches, lazy init)
            let mut best = f64::INFINITY;
            for _ in 0..trials {
                let t = Instant::now();
                f(sample);
                best = best.min(t.elapsed().as_nanos() as f64);
            }
            self.timings_ns.push(best);
        }
        let winner = self
            .timings_ns
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("at least one variant");
        self.chosen = Some(winner);
        winner
    }

    /// The calibrated winner, if any.
    pub fn chosen(&self) -> Option<(&str, usize)> {
        self.chosen.map(|i| (self.names[i].as_str(), i))
    }

    /// Best observed ns per variant (calibration order).
    pub fn timings_ns(&self) -> &[f64] {
        &self.timings_ns
    }

    /// Runs the chosen variant (calibrating on the input first if needed).
    pub fn run(&mut self, input: &I) {
        let idx = match self.chosen {
            Some(i) => i,
            None => self.calibrate(input, 1),
        };
        (self.variants[idx])(input);
    }
}

impl<I: ?Sized> Default for AdaptivePicker<I> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn picks_the_faster_variant() {
        let mut picker: AdaptivePicker<Vec<u64>> = AdaptivePicker::new()
            .variant("slow", |v: &Vec<u64>| {
                // Quadratic work.
                let mut acc = 0u64;
                for a in v {
                    for b in v {
                        acc = acc.wrapping_add(a ^ b);
                    }
                }
                std::hint::black_box(acc);
            })
            .variant("fast", |v: &Vec<u64>| {
                let mut acc = 0u64;
                for a in v {
                    acc = acc.wrapping_add(*a);
                }
                std::hint::black_box(acc);
            });
        let sample: Vec<u64> = (0..2000).collect();
        let winner = picker.calibrate(&sample, 3);
        assert_eq!(picker.chosen().unwrap().0, "fast");
        assert_eq!(winner, 1);
        assert_eq!(picker.timings_ns().len(), 2);
        assert!(picker.timings_ns()[1] < picker.timings_ns()[0]);
    }

    #[test]
    fn run_calibrates_lazily_and_reuses_choice() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c1 = counter.clone();
        let mut picker: AdaptivePicker<u32> = AdaptivePicker::new().variant("only", move |_| {
            c1.fetch_add(1, Ordering::Relaxed);
        });
        picker.run(&5);
        let after_first = counter.load(Ordering::Relaxed);
        assert!(after_first >= 2); // warm-up + trial + actual run
        picker.run(&5);
        assert_eq!(counter.load(Ordering::Relaxed), after_first + 1);
    }

    #[test]
    #[should_panic(expected = "no variants")]
    fn empty_picker_panics_on_calibrate() {
        let mut p: AdaptivePicker<u32> = AdaptivePicker::new();
        p.calibrate(&1, 1);
    }
}

//! Operator resource profiles and per-device efficiency.

use crate::device::{Device, DeviceKind};
use serde::{Deserialize, Serialize};

/// Classes of pipeline operators, each with a distinct device-affinity
/// profile (Section VI: "optimizing novel analytical operators individually
/// for existing or new platforms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorClass {
    /// Sequential scan / decode.
    Scan,
    /// Tuple-at-a-time predicate evaluation.
    Filter,
    /// Hash build + probe.
    HashJoin,
    /// Hash aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Dense model inference (embedding, CNN detection).
    ModelInference,
    /// Vector similarity scan / index probe.
    SimilaritySearch,
}

impl std::fmt::Display for OperatorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatorClass::Scan => "Scan",
            OperatorClass::Filter => "Filter",
            OperatorClass::HashJoin => "HashJoin",
            OperatorClass::Aggregate => "Aggregate",
            OperatorClass::Sort => "Sort",
            OperatorClass::ModelInference => "ModelInference",
            OperatorClass::SimilaritySearch => "SimilaritySearch",
        };
        f.write_str(s)
    }
}

impl OperatorClass {
    /// Efficiency of running this class on `kind`, as a fraction of the
    /// device's peak compute. Encodes the qualitative affinities: GPUs
    /// excel at dense kernels, are mediocre on hash-heavy relational
    /// operators; the TPU-like device *only* runs dense math.
    ///
    /// Returns `None` when the device cannot run the class at all.
    pub fn efficiency_on(&self, kind: DeviceKind) -> Option<f64> {
        use DeviceKind::*;
        use OperatorClass::*;
        let eff = match (self, kind) {
            // CPUs run everything at moderate efficiency.
            (Scan, Cpu) => 0.5,
            (Filter, Cpu) => 0.4,
            (HashJoin, Cpu) => 0.25,
            (Aggregate, Cpu) => 0.3,
            (Sort, Cpu) => 0.3,
            (ModelInference, Cpu) => 0.6,
            (SimilaritySearch, Cpu) => 0.6,
            // GPUs: dense kernels great, pointer chasing poor.
            (Scan, Gpu) => 0.6,
            (Filter, Gpu) => 0.5,
            (HashJoin, Gpu) => 0.15,
            (Aggregate, Gpu) => 0.2,
            (Sort, Gpu) => 0.35,
            (ModelInference, Gpu) => 0.8,
            (SimilaritySearch, Gpu) => 0.8,
            // TPU-like: dense math only.
            (ModelInference, Tpu) => 0.9,
            (SimilaritySearch, Tpu) => 0.7,
            (_, Tpu) => return None,
        };
        Some(eff)
    }
}

/// Resource demand of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorProfile {
    pub class: OperatorClass,
    /// Total floating-point (or equivalent) work.
    pub flops: f64,
    /// Input bytes the stage must receive from its upstream.
    pub input_bytes: u64,
    /// Output bytes handed to the next stage.
    pub output_bytes: u64,
}

impl OperatorProfile {
    /// A profile with explicit numbers.
    pub fn new(class: OperatorClass, flops: f64, input_bytes: u64, output_bytes: u64) -> Self {
        OperatorProfile { class, flops, input_bytes, output_bytes }
    }

    /// Estimated compute time of this stage on `device`, in ns; `None` if
    /// the device cannot run it.
    pub fn compute_ns(&self, device: &Device) -> Option<f64> {
        let eff = self.class.efficiency_on(device.kind)?;
        let effective = device.compute_gflops * eff * 1e9; // flop/s
        Some(device.launch_overhead_ns + self.flops / effective * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_rejects_relational_work() {
        assert!(OperatorClass::HashJoin.efficiency_on(DeviceKind::Tpu).is_none());
        assert!(OperatorClass::ModelInference.efficiency_on(DeviceKind::Tpu).is_some());
    }

    #[test]
    fn inference_prefers_accelerators() {
        let cpu = Device::cpu_socket("c");
        let gpu = Device::gpu("g");
        let tpu = Device::tpu("t");
        // Large inference batch: 1 Tflop.
        let p = OperatorProfile::new(OperatorClass::ModelInference, 1e12, 1 << 30, 1 << 20);
        let (c, g, t) = (
            p.compute_ns(&cpu).unwrap(),
            p.compute_ns(&gpu).unwrap(),
            p.compute_ns(&tpu).unwrap(),
        );
        assert!(g < c / 10.0, "gpu {g} vs cpu {c}");
        assert!(t < g, "tpu {t} vs gpu {g}");
    }

    #[test]
    fn hash_join_prefers_cpu_over_gpu_at_small_scale() {
        let cpu = Device::cpu_socket("c");
        let gpu = Device::gpu("g");
        // Small join: 1 Mflop-equivalent.
        let p = OperatorProfile::new(OperatorClass::HashJoin, 1e6, 1 << 20, 1 << 20);
        let (c, g) = (p.compute_ns(&cpu).unwrap(), p.compute_ns(&gpu).unwrap());
        // GPU launch overhead dominates tiny ops.
        assert!(c < g, "cpu {c} vs gpu {g}");
    }

    #[test]
    fn launch_overhead_charged() {
        let gpu = Device::gpu("g");
        let p = OperatorProfile::new(OperatorClass::Filter, 0.0, 0, 0);
        assert_eq!(p.compute_ns(&gpu).unwrap(), gpu.launch_overhead_ns);
    }
}

//! Simulated execution of a placement plan.
//!
//! The estimate from the DP is an idealized sum; real executions see
//! per-stage variance (cache state, clocks, contention). The simulator
//! replays a plan with deterministic, seed-derived per-stage perturbation
//! plus a contention penalty when consecutive stages share a device —
//! giving experiments a "measured" column distinct from the "estimated"
//! one, so plan-quality claims (estimate tracks measurement) are testable.

use crate::device::Topology;
use crate::placement::PlacementPlan;
use serde::{Deserialize, Serialize};

/// Outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Per-stage simulated time (compute + incoming transfer), ns.
    pub stage_ns: Vec<f64>,
    /// Simulated end-to-end time, ns.
    pub total_ns: f64,
}

/// Relative jitter amplitude applied per stage.
const JITTER: f64 = 0.08;
/// Penalty factor when a stage runs on the same device as its predecessor
/// (no overlap of transfer with compute, cache displacement).
const SAME_DEVICE_CONTENTION: f64 = 0.03;

fn mix(seed: u64, i: u64) -> f64 {
    // SplitMix64 step → uniform in [0,1).
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Simulates executing `plan` on `topology` with deterministic jitter.
pub fn simulate_plan(plan: &PlacementPlan, _topology: &Topology, seed: u64) -> SimulationResult {
    let mut stage_ns = Vec::with_capacity(plan.assignments.len());
    let mut total = 0.0;
    for i in 0..plan.assignments.len() {
        let base = plan.stage_compute_ns[i] + plan.stage_transfer_ns[i];
        // Jitter in [1-J, 1+J].
        let jitter = 1.0 + JITTER * (2.0 * mix(seed, i as u64) - 1.0);
        let contention = if i > 0 && plan.assignments[i] == plan.assignments[i - 1] {
            1.0 + SAME_DEVICE_CONTENTION
        } else {
            1.0
        };
        let t = base * jitter * contention;
        stage_ns.push(t);
        total += t;
    }
    SimulationResult { stage_ns, total_ns: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::place_pipeline;
    use crate::profile::{OperatorClass, OperatorProfile};

    fn plan_and_topology() -> (PlacementPlan, Topology) {
        let pipeline = vec![
            OperatorProfile::new(OperatorClass::Scan, 1e9, 1 << 28, 1 << 26),
            OperatorProfile::new(OperatorClass::ModelInference, 1e12, 1 << 26, 1 << 22),
            OperatorProfile::new(OperatorClass::Aggregate, 1e8, 1 << 22, 1 << 16),
        ];
        let t = Topology::cpu_gpu();
        let plan = place_pipeline(&pipeline, &t).unwrap();
        (plan, t)
    }

    #[test]
    fn deterministic_per_seed() {
        let (plan, t) = plan_and_topology();
        assert_eq!(simulate_plan(&plan, &t, 1), simulate_plan(&plan, &t, 1));
        assert_ne!(
            simulate_plan(&plan, &t, 1).total_ns,
            simulate_plan(&plan, &t, 2).total_ns
        );
    }

    #[test]
    fn simulation_tracks_estimate() {
        let (plan, t) = plan_and_topology();
        for seed in 0..20 {
            let sim = simulate_plan(&plan, &t, seed);
            let rel = (sim.total_ns - plan.total_ns).abs() / plan.total_ns;
            assert!(rel < 0.15, "seed {seed}: relative error {rel}");
        }
    }

    #[test]
    fn stage_count_matches() {
        let (plan, t) = plan_and_topology();
        let sim = simulate_plan(&plan, &t, 7);
        assert_eq!(sim.stage_ns.len(), plan.assignments.len());
        let sum: f64 = sim.stage_ns.iter().sum();
        assert!((sum - sim.total_ns).abs() < 1.0);
    }
}

//! Heterogeneous hardware substrate (Section VI, Figure 5).
//!
//! The paper's Figure 5 poses the provisioning problem — multi-socket CPUs,
//! GPUs, a TPU-like inference device, NVMe and fast NICs, "all
//! interconnected with PCIe or other technologies" — without measuring it
//! (vision paper). This crate builds the decision problem as a calibrated
//! analytical simulator:
//!
//! * [`device`] — device catalog and interconnect topology with transfer
//!   costing,
//! * [`profile`] — operator resource profiles (flops, bytes) and per-device
//!   efficiency factors (a TPU runs inference ~30× a CPU core but cannot
//!   run a hash join),
//! * [`placement`] — dynamic-programming placement of a pipeline onto a
//!   topology, minimizing compute + transfer + launch cost,
//! * [`simulate`] — simulated execution of a placement (the "measured"
//!   column of the Figure 5 experiment),
//! * [`adaptive`] — runtime micro-sampling to pick an operator variant,
//!   standing in for just-in-time code specialization.
//!
//! All costs are in abstract nanoseconds; constants are calibrated to
//! publicly known device envelopes and clearly labeled as simulation.

pub mod adaptive;
pub mod device;
pub mod placement;
pub mod profile;
pub mod simulate;

pub use adaptive::AdaptivePicker;
pub use device::{Device, DeviceId, DeviceKind, Topology};
pub use placement::{place_pipeline, PlacementPlan};
pub use profile::{OperatorClass, OperatorProfile};
pub use simulate::{simulate_plan, SimulationResult};

//! Pipeline placement over a device topology.
//!
//! Given a linear pipeline of operator profiles and a topology, choose a
//! device per stage minimizing `compute + inter-stage transfer + launch`.
//! Linear pipelines admit an exact O(stages × devices²) dynamic program —
//! the "just-in-time decisions … in growing hardware, operator, and system
//! heterogeneity" of Section IV, made concrete.

use crate::device::{DeviceId, Topology};
use crate::profile::OperatorProfile;
use serde::{Deserialize, Serialize};

/// The result of placing a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Chosen device per stage.
    pub assignments: Vec<DeviceId>,
    /// Estimated compute time per stage, ns.
    pub stage_compute_ns: Vec<f64>,
    /// Estimated transfer time *into* each stage, ns (stage 0 reads its
    /// input locally on its device).
    pub stage_transfer_ns: Vec<f64>,
    /// Estimated end-to-end time, ns.
    pub total_ns: f64,
}

impl PlacementPlan {
    /// Human-readable rendering against `topology`.
    pub fn render(&self, topology: &Topology) -> String {
        let mut out = String::new();
        for (i, &d) in self.assignments.iter().enumerate() {
            let dev = topology.device(d);
            out.push_str(&format!(
                "stage {i}: {} ({}) compute={:.3}ms transfer_in={:.3}ms\n",
                dev.name,
                dev.kind,
                self.stage_compute_ns[i] / 1e6,
                self.stage_transfer_ns[i] / 1e6,
            ));
        }
        out.push_str(&format!("total: {:.3}ms\n", self.total_ns / 1e6));
        out
    }
}

/// Places `pipeline` on `topology` optimally (exact DP).
///
/// Returns `None` when some stage cannot run on any device.
pub fn place_pipeline(pipeline: &[OperatorProfile], topology: &Topology) -> Option<PlacementPlan> {
    if pipeline.is_empty() || topology.is_empty() {
        return None;
    }
    let n_dev = topology.len();
    let n = pipeline.len();

    // compute[i][d]: compute time of stage i on device d (None = cannot).
    let compute: Vec<Vec<Option<f64>>> = pipeline
        .iter()
        .map(|p| {
            (0..n_dev)
                .map(|d| p.compute_ns(topology.device(d)))
                .collect()
        })
        .collect();

    // DP over stages.
    const INF: f64 = f64::INFINITY;
    let mut cost = vec![vec![INF; n_dev]; n];
    let mut back = vec![vec![usize::MAX; n_dev]; n];
    for d in 0..n_dev {
        if let Some(c) = compute[0][d] {
            cost[0][d] = c;
        }
    }
    for i in 1..n {
        for d in 0..n_dev {
            let Some(c) = compute[i][d] else { continue };
            for prev in 0..n_dev {
                if cost[i - 1][prev] == INF {
                    continue;
                }
                let transfer = topology.transfer_ns(pipeline[i - 1].output_bytes, prev, d);
                let total = cost[i - 1][prev] + transfer + c;
                if total < cost[i][d] {
                    cost[i][d] = total;
                    back[i][d] = prev;
                }
            }
        }
    }

    // Best final device.
    let (mut best_d, mut best) = (usize::MAX, INF);
    for (d, &c) in cost[n - 1].iter().enumerate() {
        if c < best {
            best = c;
            best_d = d;
        }
    }
    if best_d == usize::MAX {
        return None;
    }

    // Recover assignments.
    let mut assignments = vec![0usize; n];
    assignments[n - 1] = best_d;
    for i in (1..n).rev() {
        assignments[i - 1] = back[i][assignments[i]];
    }

    let mut stage_compute_ns = Vec::with_capacity(n);
    let mut stage_transfer_ns = Vec::with_capacity(n);
    for i in 0..n {
        stage_compute_ns.push(compute[i][assignments[i]].expect("placed on runnable device"));
        stage_transfer_ns.push(if i == 0 {
            0.0
        } else {
            topology.transfer_ns(pipeline[i - 1].output_bytes, assignments[i - 1], assignments[i])
        });
    }

    Some(PlacementPlan { assignments, stage_compute_ns, stage_transfer_ns, total_ns: best })
}

/// Places `pipeline` constrained to a single device (for baselines);
/// returns the best single-device plan.
pub fn place_single_device(
    pipeline: &[OperatorProfile],
    topology: &Topology,
) -> Option<PlacementPlan> {
    let mut best: Option<PlacementPlan> = None;
    for d in 0..topology.len() {
        let mut stage_compute_ns = Vec::with_capacity(pipeline.len());
        let mut ok = true;
        for p in pipeline {
            match p.compute_ns(topology.device(d)) {
                Some(c) => stage_compute_ns.push(c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let total: f64 = stage_compute_ns.iter().sum();
        if best.as_ref().is_none_or(|b| total < b.total_ns) {
            best = Some(PlacementPlan {
                assignments: vec![d; pipeline.len()],
                stage_transfer_ns: vec![0.0; pipeline.len()],
                stage_compute_ns,
                total_ns: total,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::OperatorClass::*;

    /// The Figure 2-shaped pipeline: scan → filter → inference → similarity
    /// → join → aggregate.
    fn pipeline() -> Vec<OperatorProfile> {
        vec![
            OperatorProfile::new(Scan, 1e8, 1 << 30, 1 << 28),
            OperatorProfile::new(Filter, 5e7, 1 << 28, 1 << 26),
            OperatorProfile::new(ModelInference, 5e12, 1 << 26, 1 << 24),
            OperatorProfile::new(SimilaritySearch, 1e11, 1 << 24, 1 << 22),
            OperatorProfile::new(HashJoin, 1e9, 1 << 22, 1 << 22),
            OperatorProfile::new(Aggregate, 1e8, 1 << 22, 1 << 16),
        ]
    }

    #[test]
    fn heavy_inference_lands_on_accelerator() {
        let t = Topology::cpu_gpu_tpu();
        let plan = place_pipeline(&pipeline(), &t).unwrap();
        // Stage 2 (inference) must be on GPU or TPU.
        let kind = t.device(plan.assignments[2]).kind;
        assert_ne!(kind, crate::device::DeviceKind::Cpu, "plan: {:?}", plan.assignments);
        // The join can go to the GPU (large enough to amortize launch, per
        // the HetExchange line of work) but never to the TPU, which cannot
        // run relational operators at all.
        let join_kind = t.device(plan.assignments[4]).kind;
        assert_ne!(join_kind, crate::device::DeviceKind::Tpu);
    }

    #[test]
    fn tiny_relational_pipeline_stays_on_cpu() {
        // Launch overhead dominates small operators: the whole plan should
        // avoid accelerators.
        let t = Topology::cpu_gpu_tpu();
        let tiny = vec![
            OperatorProfile::new(Scan, 1e5, 1 << 16, 1 << 14),
            OperatorProfile::new(Filter, 1e4, 1 << 14, 1 << 12),
            OperatorProfile::new(HashJoin, 1e5, 1 << 12, 1 << 12),
        ];
        let plan = place_pipeline(&tiny, &t).unwrap();
        for &d in &plan.assignments {
            assert_eq!(t.device(d).kind, crate::device::DeviceKind::Cpu, "plan {:?}", plan.assignments);
        }
    }

    #[test]
    fn accelerator_beats_cpu_only() {
        let cpu_plan = place_pipeline(&pipeline(), &Topology::cpu_only()).unwrap();
        let het_plan = place_pipeline(&pipeline(), &Topology::cpu_gpu_tpu()).unwrap();
        assert!(
            het_plan.total_ns < cpu_plan.total_ns / 2.0,
            "het {} vs cpu {}",
            het_plan.total_ns,
            cpu_plan.total_ns
        );
    }

    #[test]
    fn fast_interconnect_helps() {
        let slow = place_pipeline(&pipeline(), &Topology::cpu_gpu_tpu()).unwrap();
        let fast = place_pipeline(&pipeline(), &Topology::cpu_gpu_tpu_fast()).unwrap();
        assert!(fast.total_ns <= slow.total_ns);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let t = Topology::cpu_gpu_tpu();
        let plan = place_pipeline(&pipeline(), &t).unwrap();
        let sum: f64 = plan
            .stage_compute_ns
            .iter()
            .chain(plan.stage_transfer_ns.iter())
            .sum();
        assert!((sum - plan.total_ns).abs() < 1.0, "{sum} vs {}", plan.total_ns);
    }

    #[test]
    fn single_device_baseline() {
        let t = Topology::cpu_gpu_tpu();
        let single = place_single_device(&pipeline(), &t).unwrap();
        // TPU can't run the whole pipeline; best single device is CPU or GPU.
        assert_ne!(t.device(single.assignments[0]).kind, crate::device::DeviceKind::Tpu);
        let optimal = place_pipeline(&pipeline(), &t).unwrap();
        assert!(optimal.total_ns <= single.total_ns);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(place_pipeline(&[], &Topology::cpu_only()).is_none());
        assert!(place_pipeline(&pipeline(), &Topology::new()).is_none());
    }

    #[test]
    fn render_mentions_devices() {
        let t = Topology::cpu_gpu();
        let plan = place_pipeline(&pipeline(), &t).unwrap();
        let s = plan.render(&t);
        assert!(s.contains("total:"));
        assert!(s.contains("stage 0"));
    }
}

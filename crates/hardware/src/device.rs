//! Device catalog and interconnect topology.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a device within a [`Topology`].
pub type DeviceId = usize;

/// Classes of compute devices (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    Cpu,
    Gpu,
    /// TPU-like inference accelerator.
    Tpu,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceKind::Cpu => "CPU",
            DeviceKind::Gpu => "GPU",
            DeviceKind::Tpu => "TPU",
        };
        f.write_str(s)
    }
}

/// One compute device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    pub name: String,
    pub kind: DeviceKind,
    /// Peak compute, in GFLOP/s (simulation constant).
    pub compute_gflops: f64,
    /// Fixed cost to launch work on the device, ns (kernel launch /
    /// runtime dispatch).
    pub launch_overhead_ns: f64,
    /// Device memory capacity, bytes.
    pub memory_bytes: u64,
}

impl Device {
    /// A server-class CPU socket (as in the paper's 2×12-core Xeon).
    pub fn cpu_socket(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            kind: DeviceKind::Cpu,
            compute_gflops: 600.0,
            launch_overhead_ns: 0.0,
            memory_bytes: 192 << 30,
        }
    }

    /// A discrete GPU.
    pub fn gpu(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            kind: DeviceKind::Gpu,
            compute_gflops: 15_000.0,
            launch_overhead_ns: 10_000.0,
            memory_bytes: 24 << 30,
        }
    }

    /// A TPU-like inference accelerator.
    pub fn tpu(name: impl Into<String>) -> Device {
        Device {
            name: name.into(),
            kind: DeviceKind::Tpu,
            compute_gflops: 45_000.0,
            launch_overhead_ns: 25_000.0,
            memory_bytes: 16 << 30,
        }
    }
}

/// An interconnect link (bidirectional).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// One-way latency in ns.
    pub latency_ns: f64,
}

/// PCIe 4.0 x16-class link.
pub const PCIE: Link = Link { bandwidth_gbps: 25.0, latency_ns: 1_500.0 };
/// NVLink-class fast link.
pub const FAST_LINK: Link = Link { bandwidth_gbps: 300.0, latency_ns: 600.0 };
/// Same-device "transfer" (free).
const LOCAL: Link = Link { bandwidth_gbps: f64::INFINITY, latency_ns: 0.0 };

/// A set of devices with pairwise links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    /// Keyed by (min, max) device id.
    links: HashMap<(DeviceId, DeviceId), Link>,
    /// Fallback link for unlisted pairs.
    default_link: Option<Link>,
}

impl Topology {
    /// An empty topology with PCIe as the default interconnect.
    pub fn new() -> Self {
        Topology {
            devices: Vec::new(),
            links: HashMap::new(),
            default_link: Some(PCIE),
        }
    }

    /// Adds a device, returning its id.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Sets the link between two devices.
    pub fn connect(&mut self, a: DeviceId, b: DeviceId, link: Link) {
        let key = (a.min(b), a.max(b));
        self.links.insert(key, link);
    }

    /// The devices in id order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device with id `id`.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id]
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the topology has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The link between `a` and `b` (LOCAL when `a == b`).
    pub fn link(&self, a: DeviceId, b: DeviceId) -> Link {
        if a == b {
            return LOCAL;
        }
        let key = (a.min(b), a.max(b));
        self.links
            .get(&key)
            .copied()
            .or(self.default_link)
            .unwrap_or(PCIE)
    }

    /// Time to move `bytes` from `a` to `b`, in ns.
    pub fn transfer_ns(&self, bytes: u64, a: DeviceId, b: DeviceId) -> f64 {
        if a == b || bytes == 0 {
            return 0.0;
        }
        let link = self.link(a, b);
        link.latency_ns + bytes as f64 / (link.bandwidth_gbps * 1e9) * 1e9
    }

    // ---- Presets used by the Figure 5 experiment -------------------------

    /// The paper's evaluation box: two CPU sockets.
    pub fn cpu_only() -> Topology {
        let mut t = Topology::new();
        let a = t.add_device(Device::cpu_socket("cpu0"));
        let b = t.add_device(Device::cpu_socket("cpu1"));
        // UPI-class socket interconnect.
        t.connect(a, b, Link { bandwidth_gbps: 60.0, latency_ns: 400.0 });
        t
    }

    /// CPU + one PCIe GPU.
    pub fn cpu_gpu() -> Topology {
        let mut t = Topology::cpu_only();
        let gpu = t.add_device(Device::gpu("gpu0"));
        t.connect(0, gpu, PCIE);
        t.connect(1, gpu, PCIE);
        t
    }

    /// CPU + GPU + TPU-like accelerator (Figure 5's full layout).
    pub fn cpu_gpu_tpu() -> Topology {
        let mut t = Topology::cpu_gpu();
        let tpu = t.add_device(Device::tpu("tpu0"));
        t.connect(0, tpu, PCIE);
        t.connect(1, tpu, PCIE);
        t.connect(2, tpu, PCIE);
        t
    }

    /// Same as [`Topology::cpu_gpu_tpu`] but with NVLink-class links to the
    /// accelerators (the "fast interconnect" variant).
    pub fn cpu_gpu_tpu_fast() -> Topology {
        let mut t = Topology::cpu_gpu_tpu();
        t.connect(0, 2, FAST_LINK);
        t.connect(1, 2, FAST_LINK);
        t.connect(0, 3, FAST_LINK);
        t.connect(1, 3, FAST_LINK);
        t.connect(2, 3, FAST_LINK);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_devices() {
        assert_eq!(Topology::cpu_only().len(), 2);
        assert_eq!(Topology::cpu_gpu().len(), 3);
        assert_eq!(Topology::cpu_gpu_tpu().len(), 4);
        let t = Topology::cpu_gpu_tpu();
        assert_eq!(t.device(2).kind, DeviceKind::Gpu);
        assert_eq!(t.device(3).kind, DeviceKind::Tpu);
    }

    #[test]
    fn local_transfer_is_free() {
        let t = Topology::cpu_gpu();
        assert_eq!(t.transfer_ns(1 << 30, 0, 0), 0.0);
        assert_eq!(t.transfer_ns(0, 0, 2), 0.0);
    }

    #[test]
    fn transfer_scales_with_bytes_and_link() {
        let t = Topology::cpu_gpu_tpu_fast();
        let slow = Topology::cpu_gpu_tpu();
        let bytes = 1u64 << 30; // 1 GiB
        let fast_ns = t.transfer_ns(bytes, 0, 2);
        let slow_ns = slow.transfer_ns(bytes, 0, 2);
        assert!(slow_ns > 5.0 * fast_ns, "slow {slow_ns} vs fast {fast_ns}");
        // 1 GiB over 25 GB/s ≈ 43 ms.
        assert!((slow_ns / 1e6 - 43.0).abs() < 5.0, "got {} ms", slow_ns / 1e6);
    }

    #[test]
    fn links_are_symmetric() {
        let t = Topology::cpu_gpu_tpu_fast();
        assert_eq!(t.transfer_ns(1000, 0, 3), t.transfer_ns(1000, 3, 0));
    }

    #[test]
    fn unlisted_pairs_fall_back_to_default() {
        let mut t = Topology::new();
        let a = t.add_device(Device::cpu_socket("a"));
        let b = t.add_device(Device::gpu("b"));
        // No explicit link: PCIe default applies.
        assert!(t.transfer_ns(1 << 20, a, b) > 0.0);
    }
}

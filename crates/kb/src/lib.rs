//! Knowledge-base substrate: an in-memory triple store.
//!
//! The paper's motivating example (Section II) joins an RDBMS with "a
//! general knowledge base to supplement and extend the product information
//! based on domain expertise", whose labels were "curated and collected on
//! a different and broader dataset" — i.e. they do *not* textually match
//! the RDBMS values, which is precisely why the semantic join exists.
//!
//! This crate provides that source: entities, `(subject, predicate,
//! object)` triples with secondary indexes, an `is_a` taxonomy with
//! transitive queries, and export to relational chunks so the engine can
//! scan the KB like any table (the polystore angle of Section IV).

use cx_storage::{Column, Field, Result, Schema, Table};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Entity identifier.
pub type EntityId = u32;

/// Object of a triple: an entity reference or a literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Object {
    Entity(EntityId),
    Text(String),
    Number(f64),
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Object::Entity(id) => write!(f, "#{id}"),
            Object::Text(s) => write!(f, "{s}"),
            Object::Number(n) => write!(f, "{n}"),
        }
    }
}

/// A `(subject, predicate, object)` fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Triple {
    pub subject: EntityId,
    pub predicate: String,
    pub object: Object,
}

/// The well-known taxonomy predicate.
pub const IS_A: &str = "is_a";
/// The well-known label predicate (synonyms / surface forms).
pub const LABEL: &str = "label";

/// An in-memory triple store with entity dictionary and predicate indexes.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct KnowledgeBase {
    names: Vec<String>,
    by_name: HashMap<String, EntityId>,
    triples: Vec<Triple>,
    /// predicate → triple positions.
    by_predicate: HashMap<String, Vec<usize>>,
    /// (subject) → triple positions.
    by_subject: HashMap<EntityId, Vec<usize>>,
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entity named `name`, creating it if new.
    pub fn entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as EntityId;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an entity id by name.
    pub fn lookup(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(name).copied()
    }

    /// The canonical name of `id`.
    pub fn name(&self, id: EntityId) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.names.len()
    }

    /// Number of triples.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Asserts a fact.
    pub fn insert(&mut self, subject: EntityId, predicate: &str, object: Object) {
        let pos = self.triples.len();
        self.triples.push(Triple {
            subject,
            predicate: predicate.to_string(),
            object,
        });
        self.by_predicate
            .entry(predicate.to_string())
            .or_default()
            .push(pos);
        self.by_subject.entry(subject).or_default().push(pos);
    }

    /// Convenience: `subject --is_a--> parent` (both by name).
    pub fn assert_is_a(&mut self, subject: &str, parent: &str) {
        let s = self.entity(subject);
        let p = self.entity(parent);
        self.insert(s, IS_A, Object::Entity(p));
    }

    /// Convenience: attach a surface label (synonym) to an entity.
    pub fn assert_label(&mut self, subject: &str, label: &str) {
        let s = self.entity(subject);
        self.insert(s, LABEL, Object::Text(label.to_string()));
    }

    /// All triples with `predicate`.
    pub fn with_predicate(&self, predicate: &str) -> impl Iterator<Item = &Triple> {
        self.by_predicate
            .get(predicate)
            .into_iter()
            .flatten()
            .map(move |&i| &self.triples[i])
    }

    /// All triples about `subject`.
    pub fn about(&self, subject: EntityId) -> impl Iterator<Item = &Triple> {
        self.by_subject
            .get(&subject)
            .into_iter()
            .flatten()
            .map(move |&i| &self.triples[i])
    }

    /// Surface labels of `subject` (its own name plus `label` triples).
    pub fn labels(&self, subject: EntityId) -> Vec<&str> {
        let mut out = Vec::new();
        if let Some(name) = self.name(subject) {
            out.push(name);
        }
        for t in self.about(subject) {
            if t.predicate == LABEL {
                if let Object::Text(s) = &t.object {
                    out.push(s.as_str());
                }
            }
        }
        out
    }

    /// Transitive `is_a` ancestors of `subject` (BFS order, no duplicates,
    /// excluding `subject` itself).
    pub fn ancestors(&self, subject: EntityId) -> Vec<EntityId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([subject]);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            for t in self.about(cur) {
                if t.predicate != IS_A {
                    continue;
                }
                if let Object::Entity(parent) = t.object {
                    if seen.insert(parent) {
                        out.push(parent);
                        queue.push_back(parent);
                    }
                }
            }
        }
        out
    }

    /// Whether `subject` is (transitively) a `category`.
    pub fn is_a(&self, subject: EntityId, category: EntityId) -> bool {
        subject == category || self.ancestors(subject).contains(&category)
    }

    /// All entities that are (transitively) instances of `category`.
    pub fn instances_of(&self, category: &str) -> Vec<EntityId> {
        let Some(cat) = self.lookup(category) else {
            return Vec::new();
        };
        (0..self.names.len() as EntityId)
            .filter(|&e| e != cat && self.is_a(e, cat))
            .collect()
    }

    /// Exports `(label, category)` rows: every surface label of every
    /// entity, paired with every transitive category name. This is the
    /// relation the engine's semantic join consumes in the Figure 2 query.
    pub fn label_category_table(&self) -> Result<Table> {
        let mut labels = Vec::new();
        let mut categories = Vec::new();
        for e in 0..self.names.len() as EntityId {
            let ancestors = self.ancestors(e);
            if ancestors.is_empty() {
                continue;
            }
            for label in self.labels(e) {
                for &a in &ancestors {
                    if let Some(cat) = self.name(a) {
                        labels.push(label.to_string());
                        categories.push(cat.to_string());
                    }
                }
            }
        }
        Table::from_columns(
            Schema::new(vec![
                Field::new("label", cx_storage::DataType::Utf8),
                Field::new("category", cx_storage::DataType::Utf8),
            ]),
            vec![Column::from_strings(labels), Column::from_strings(categories)],
        )
    }

    /// Exports all triples as `(subject, predicate, object)` strings.
    pub fn triples_table(&self) -> Result<Table> {
        let mut s = Vec::with_capacity(self.triples.len());
        let mut p = Vec::with_capacity(self.triples.len());
        let mut o = Vec::with_capacity(self.triples.len());
        for t in &self.triples {
            s.push(self.name(t.subject).unwrap_or("?").to_string());
            p.push(t.predicate.clone());
            o.push(match &t.object {
                Object::Entity(id) => self.name(*id).unwrap_or("?").to_string(),
                other => other.to_string(),
            });
        }
        Table::from_columns(
            Schema::new(vec![
                Field::new("subject", cx_storage::DataType::Utf8),
                Field::new("predicate", cx_storage::DataType::Utf8),
                Field::new("object", cx_storage::DataType::Utf8),
            ]),
            vec![
                Column::from_strings(s),
                Column::from_strings(p),
                Column::from_strings(o),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dog --is_a--> animal; boots/sneakers --is_a--> shoes --is_a--> clothes.
    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_is_a("dog", "animal");
        kb.assert_is_a("boots", "shoes");
        kb.assert_is_a("sneakers", "shoes");
        kb.assert_is_a("shoes", "clothes");
        kb.assert_label("boots", "work boots");
        kb.assert_label("dog", "canine");
        kb
    }

    #[test]
    fn entity_dictionary_dedupes() {
        let mut kb = KnowledgeBase::new();
        let a = kb.entity("x");
        let b = kb.entity("x");
        assert_eq!(a, b);
        assert_eq!(kb.num_entities(), 1);
        assert_eq!(kb.name(a), Some("x"));
        assert_eq!(kb.lookup("y"), None);
    }

    #[test]
    fn transitive_taxonomy() {
        let kb = kb();
        let boots = kb.lookup("boots").unwrap();
        let clothes = kb.lookup("clothes").unwrap();
        let animal = kb.lookup("animal").unwrap();
        assert!(kb.is_a(boots, clothes));
        assert!(!kb.is_a(boots, animal));
        let names: Vec<&str> = kb.ancestors(boots).iter().map(|&e| kb.name(e).unwrap()).collect();
        assert_eq!(names, vec!["shoes", "clothes"]);
    }

    #[test]
    fn instances_of_category() {
        let kb = kb();
        let mut names: Vec<&str> = kb
            .instances_of("clothes")
            .iter()
            .map(|&e| kb.name(e).unwrap())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec!["boots", "shoes", "sneakers"]);
        assert!(kb.instances_of("nonexistent").is_empty());
    }

    #[test]
    fn labels_include_synonyms() {
        let kb = kb();
        let boots = kb.lookup("boots").unwrap();
        assert_eq!(kb.labels(boots), vec!["boots", "work boots"]);
    }

    #[test]
    fn label_category_export() {
        let kb = kb();
        let table = kb.label_category_table().unwrap();
        assert!(table.num_rows() > 0);
        // "work boots" must appear with category "clothes".
        let labels = table.column_by_name("label").unwrap();
        let cats = table.column_by_name("category").unwrap();
        let found = labels
            .utf8_values()
            .unwrap()
            .iter()
            .zip(cats.utf8_values().unwrap())
            .any(|(l, c)| l == "work boots" && c == "clothes");
        assert!(found);
    }

    #[test]
    fn triples_export() {
        let kb = kb();
        let t = kb.triples_table().unwrap();
        assert_eq!(t.num_rows(), kb.num_triples());
        assert_eq!(t.schema().names(), vec!["subject", "predicate", "object"]);
    }

    #[test]
    fn cycle_in_taxonomy_terminates() {
        let mut kb = KnowledgeBase::new();
        kb.assert_is_a("a", "b");
        kb.assert_is_a("b", "a");
        let a = kb.lookup("a").unwrap();
        let ancestors = kb.ancestors(a);
        assert_eq!(ancestors.len(), 2); // b and a, each once
    }
}

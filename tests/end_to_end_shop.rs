//! End-to-end integration test: the paper's motivating query (Figure 2)
//! over the generated shop polystore, verified against latent ground truth.

use context_analytics::engine::{Engine, EngineConfig};
use context_analytics::exec::logical::JoinType;
use context_analytics::expr::{col, lit};
use cx_datagen::{ShopConfig, ShopDataset};
use cx_embed::ClusteredTextModel;
use cx_optimizer::OptimizerConfig;
use cx_vision::{DetectorNoise, ObjectDetector, MICROS_PER_DAY};
use std::collections::BTreeSet;
use std::sync::Arc;

const AFTER_DAY: i64 = 19_050;
const MIN_PRICE: f64 = 20.0;
const MIN_OBJECTS: i64 = 2;

fn build_engine(dataset: &ShopDataset) -> Engine {
    let engine = Engine::new(EngineConfig::default());
    let space = Arc::new(cx_datagen::build_space(&dataset.clusters, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("shop-model", space, 7)));
    engine
        .register_table("products", dataset.products.clone())
        .unwrap();
    engine
        .register_table("transactions", dataset.transactions.clone())
        .unwrap();
    engine.register_kb("kb", dataset.kb.clone()).unwrap();
    // Noiseless detector so results are checkable against latent truth.
    let detector = ObjectDetector::with_noise(
        "detector",
        5,
        DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 },
    );
    engine
        .register_images("images", dataset.images.clone(), &detector)
        .unwrap();
    engine
}

/// The Figure 2 query: clothing products with price > 20 that appear in
/// customer images taken after a date with more than 2 detected objects.
fn figure2_query(engine: &Engine) -> context_analytics::Query {
    let kb = engine
        .table("kb")
        .unwrap()
        .filter(col("category").eq(lit("clothes")));
    let detections = engine
        .table("images.detections")
        .unwrap()
        .filter(
            col("date_taken")
                .gt(lit(cx_storage::Scalar::Timestamp(AFTER_DAY * MICROS_PER_DAY)))
                .and(col("object_count").gt(lit(MIN_OBJECTS))),
        );
    engine
        .table("products")
        .unwrap()
        .filter(col("price").gt(lit(MIN_PRICE)))
        // ① products ⋈ KB: which products are clothing (semantic: the KB
        // uses different synonyms than product names).
        .semantic_join_scored(kb, "name", "label", "shop-model", 0.9, "kb_sim")
        // ② ⋈ images: product concept appears among detected objects.
        .semantic_join_scored(detections, "name", "label", "shop-model", 0.8, "img_sim")
        .select_columns(&["product_id"])
        .distinct()
}

fn dataset() -> ShopDataset {
    ShopDataset::generate(ShopConfig {
        n_products: 400,
        n_users: 50,
        n_transactions: 1000,
        n_images: 300,
        start_day: 19_000,
        days: 100,
        seed: 11,
    })
    .unwrap()
}

#[test]
fn motivating_query_matches_latent_ground_truth() {
    let data = dataset();
    let engine = build_engine(&data);
    let result = engine.execute(&figure2_query(&engine)).unwrap();

    let got: BTreeSet<i64> = result
        .table
        .column_by_name("product_id")
        .unwrap()
        .i64_values()
        .unwrap()
        .iter()
        .copied()
        .collect();
    let truth: BTreeSet<i64> = data
        .fig2_ground_truth(MIN_PRICE, AFTER_DAY, MIN_OBJECTS as usize)
        .unwrap()
        .into_iter()
        .collect();

    assert!(!truth.is_empty(), "ground truth must be non-trivial");
    // The engine's answer must match the latent ground truth: every truth
    // product found (the semantic space places same-cluster synonyms above
    // both thresholds) and nothing spurious below cluster separation.
    let missing: Vec<_> = truth.difference(&got).collect();
    let spurious: Vec<_> = got.difference(&truth).collect();
    let recall = 1.0 - missing.len() as f64 / truth.len() as f64;
    let precision = 1.0 - spurious.len() as f64 / got.len().max(1) as f64;
    assert!(recall > 0.95, "recall {recall}: missing {missing:?}");
    assert!(precision > 0.95, "precision {precision}: spurious {spurious:?}");
}

#[test]
fn optimized_and_naive_plans_agree() {
    let data = dataset();
    let mut engine = build_engine(&data);
    let optimized = engine.execute(&figure2_query(&engine)).unwrap();
    engine.set_optimizer_config(OptimizerConfig::none());
    let naive = engine.execute(&figure2_query(&engine)).unwrap();

    let ids = |r: &context_analytics::QueryResult| -> BTreeSet<i64> {
        r.table
            .column_by_name("product_id")
            .unwrap()
            .i64_values()
            .unwrap()
            .iter()
            .copied()
            .collect()
    };
    assert_eq!(ids(&optimized), ids(&naive));
    assert!(!optimized.rules_fired.is_empty());
    assert!(naive.rules_fired.is_empty());
}

#[test]
fn pushdown_reduces_model_invocations() {
    let data = dataset();
    let engine = build_engine(&data);
    // Run the full query with pushdown on: the semantic join only embeds
    // values that survive the relational filters.
    let cache = engine.embedding_cache("shop-model").unwrap();
    cache.clear();
    engine.execute(&figure2_query(&engine)).unwrap();
    let optimized_embeddings = cache.model().stats().invocations();

    // Unoptimized engine: semantic joins see unfiltered inputs.
    let mut naive_engine = build_engine(&data);
    naive_engine.set_optimizer_config(OptimizerConfig::none());
    let naive_cache = naive_engine.embedding_cache("shop-model").unwrap();
    naive_cache.clear();
    naive_engine.execute(&figure2_query(&naive_engine)).unwrap();
    let naive_embeddings = naive_cache.model().stats().invocations();

    assert!(
        optimized_embeddings <= naive_embeddings,
        "optimized {optimized_embeddings} vs naive {naive_embeddings}"
    );
}

#[test]
fn date_filter_before_detection_cuts_detector_work() {
    // The NoDB-style lesson: detect only images passing the date filter.
    let data = dataset();
    let all = ObjectDetector::with_noise("d", 5, DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 });
    let _ = all.detections_table(data.images.images()).unwrap();
    let filtered = ObjectDetector::with_noise("d", 5, DetectorNoise { miss_rate: 0.0, spurious_rate: 0.0 });
    let _ = filtered
        .detections_table(data.images.taken_after(AFTER_DAY * MICROS_PER_DAY))
        .unwrap();
    assert!(filtered.invocations() < all.invocations() / 2 + all.invocations() / 4,
        "filtered {} vs all {}", filtered.invocations(), all.invocations());
}

#[test]
fn transactions_join_products_relationally() {
    let data = dataset();
    let engine = build_engine(&data);
    let q = engine
        .table("transactions")
        .unwrap()
        .join(
            engine.table("products").unwrap(),
            &[("product_id", "product_id")],
            JoinType::Inner,
        )
        .aggregate(
            &["name"],
            vec![cx_exec::logical::AggSpec::count_star("purchases")],
        )
        .sort(&[("purchases", false)])
        .limit(5);
    let result = engine.execute(&q).unwrap();
    assert_eq!(result.table.num_rows(), 5);
}

//! Multi-query scan sharing (`cx_mqo` + `cx_serve`'s scan queue):
//!
//! * an 8-client same-table storm with **distinct literals per query**
//!   (the plan cache cannot help) must be bit-identical to a serial
//!   `Engine::execute` loop while genuinely coalescing sweeps,
//! * memoized replays must never re-enter the admission gate,
//! * catalog registrations racing plan-cache lookups must never serve a
//!   stale plan,
//! * per-session `recall_tolerance` overrides must partition the plan
//!   cache without cross-talk.

use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, Query, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn fresh_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));

    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
        "blazer", "canine", "feline", "lace-ups",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 10.0 + 7.5 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();

    let mut kb = cx_kb::KnowledgeBase::new();
    for item in ["boots", "sneakers", "oxfords", "lace-ups"] {
        kb.assert_is_a(item, "shoes");
    }
    for item in ["parka", "coat", "windbreaker", "blazer"] {
        kb.assert_is_a(item, "jacket");
    }
    kb.assert_is_a("shoes", "clothes");
    kb.assert_is_a("jacket", "clothes");
    engine.register_kb("kb", kb).unwrap();
    engine
}

const TARGETS: [&str; 8] = [
    "boots", "parka", "kitten", "sneakers", "coat", "puppy", "shoes", "jacket",
];

/// Client `i`'s storm: same shapes as every other client, literals all
/// its own — so fingerprints (and the result memo) never collapse the
/// work, and only scan sharing can.
fn storm(engine: &Engine, i: usize) -> Vec<Query> {
    let filter = |target: &str, threshold: f32| {
        engine
            .table("products")
            .unwrap()
            .semantic_filter("name", target, "m", threshold)
            .sort(&[("product_id", true)])
    };
    let join = |threshold: f32| {
        let kb = engine
            .table("kb")
            .unwrap()
            .filter(col("category").eq(lit("clothes")));
        engine
            .table("products")
            .unwrap()
            .semantic_join(kb, "name", "label", "m", threshold)
            .sort(&[("product_id", true), ("label", true)])
    };
    vec![
        filter(TARGETS[i], 0.8),
        join(0.85 + 0.01 * i as f32),
        filter(TARGETS[i], 0.75),
    ]
}

/// Bit-strict table comparison: scalar equality everywhere, f64 compared
/// by bits (similarity scores must match to the bit, not just ≈).
fn assert_tables_bit_identical(got: &Table, expected: &Table, context: &str) {
    assert_eq!(got.num_rows(), expected.num_rows(), "{context}: row count");
    assert_eq!(got.schema().names(), expected.schema().names(), "{context}: schema");
    for r in 0..expected.num_rows() {
        let (g, e) = (got.row(r).unwrap(), expected.row(r).unwrap());
        for (c, (gs, es)) in g.iter().zip(&e).enumerate() {
            match (gs, es) {
                (Scalar::Float64(x), Scalar::Float64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {r} col {c}")
                }
                _ => assert_eq!(gs, es, "{context}: row {r} col {c}"),
            }
        }
    }
}

#[test]
fn shared_scan_storm_is_bit_identical_to_serial_execution() {
    let threads = 8;

    // Reference: every client's storm through a serial engine, cold.
    let serial = fresh_engine();
    let expected: Vec<Vec<Table>> = (0..threads)
        .map(|i| {
            storm(&serial, i)
                .iter()
                .map(|q| serial.execute(q).unwrap().table)
                .collect()
        })
        .collect();

    // Storm: a second cold engine behind a sharing server. The barrier
    // plus a generous linger makes groups actually form; correctness must
    // hold regardless of who grouped with whom.
    let engine = fresh_engine();
    let server = Server::new(
        engine,
        ServeConfig {
            scan_linger: Duration::from_millis(300),
            scan_group_max: threads,
            ..ServeConfig::default()
        },
    );
    let barrier = Arc::new(Barrier::new(threads));
    let shared_answers = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let server = server.clone();
                let barrier = barrier.clone();
                let shared_answers = shared_answers.clone();
                s.spawn(move || {
                    let session = server.session();
                    let mine = storm(server.engine(), i);
                    barrier.wait();
                    mine.iter()
                        .map(|q| {
                            let r = session.execute(q).unwrap();
                            if r.shared_scan {
                                shared_answers.fetch_add(1, Ordering::Relaxed);
                            }
                            r.table
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let got = handle.join().unwrap();
            for (round, (g, e)) in got.iter().zip(&expected[i]).enumerate() {
                assert_tables_bit_identical(g, e, &format!("client {i} round {round}"));
            }
        }
    });

    let stats = server.stats();
    // Every storm query went through the scan queue (they all carry a
    // shareable semantic scan), and at least one group truly coalesced.
    assert_eq!(stats.scan_sharing.grouped_queries, (threads * 3) as u64, "{:?}", stats.scan_sharing);
    assert!(stats.scan_sharing.shared_groups >= 1, "{:?}", stats.scan_sharing);
    assert!(stats.scan_sharing.shared_queries >= 2, "{:?}", stats.scan_sharing);
    assert!(stats.scan_sharing.panel_rows_saved > 0, "{:?}", stats.scan_sharing);
    assert!(shared_answers.load(Ordering::Relaxed) >= 2);
    // The join rounds share identical probe sides, so probe dedup saved
    // real pairs.
    assert!(stats.scan_sharing.pairs_saved > 0, "{:?}", stats.scan_sharing);
    // Shared groups admit on one group permit: strictly fewer gate
    // admissions than queries executed.
    assert!(
        stats.admission.admitted < (threads * 3) as u64,
        "no group admission happened: {:?} / {:?}",
        stats.admission,
        stats.scan_sharing,
    );
    assert_eq!(stats.admission.active, 0);
    assert_eq!(stats.admission.in_use, 0.0);
}

#[test]
fn memoized_replays_never_touch_the_admission_gate() {
    let server = Server::new(fresh_engine(), ServeConfig::default());
    let q = server
        .table("products")
        .unwrap()
        .semantic_filter("name", "clothes", "m", 0.8)
        .sort(&[("product_id", true)]);

    let first = server.execute(&q).unwrap();
    assert!(!first.result_cache_hit);
    let admitted_after_first = server.admission_stats().admitted;
    assert!(admitted_after_first >= 1);

    // Replays — serial and concurrent — are served from the result memo
    // without re-estimating, re-weighing, or re-entering the gate, and
    // without queueing for a scan group.
    for _ in 0..3 {
        let replay = server.execute(&q).unwrap();
        assert!(replay.result_cache_hit);
        assert!(!replay.shared_scan);
    }
    std::thread::scope(|s| {
        for _ in 0..8 {
            let server = server.clone();
            let q = q.clone();
            s.spawn(move || {
                assert!(server.execute(&q).unwrap().result_cache_hit);
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.admission.admitted, admitted_after_first, "memo replay hit the gate");
    assert_eq!(stats.result_cache_hits, 11);
    // Replays also never queued for sharing.
    assert_eq!(stats.scan_sharing.submitted, 1, "{:?}", stats.scan_sharing);
}

#[test]
fn catalog_registration_racing_lookups_never_serves_stale_plans() {
    let engine = fresh_engine();
    let schema = || {
        Schema::new(vec![Field::new("marker", DataType::Int64)])
    };
    let hot = |marker: i64| {
        Table::from_columns(schema(), vec![Column::from_i64(vec![marker])]).unwrap()
    };
    engine.register_table("hot", hot(0)).unwrap();
    let server = Server::new(engine, ServeConfig::default());
    let q = server.table("hot").unwrap();

    // A writer re-registers `hot` with a monotone marker; `published`
    // trails completed registrations. Readers snapshot `published`
    // *before* executing: serving any marker older than that snapshot
    // would mean a version bump raced a fingerprint lookup into serving
    // a stale plan (or stale memo).
    let published = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let registrations = 300u64;
    let readers = 4;
    let start = Arc::new(Barrier::new(readers + 1));
    std::thread::scope(|s| {
        {
            let server = server.clone();
            let published = published.clone();
            let done = done.clone();
            let start = start.clone();
            s.spawn(move || {
                start.wait();
                for i in 1..=registrations {
                    server.engine().register_table("hot", hot(i as i64)).unwrap();
                    published.store(i, Ordering::Release);
                    // Pace the writer so lookups genuinely interleave with
                    // version bumps (an unpaced writer finishes before the
                    // first reader wakes).
                    std::thread::sleep(Duration::from_micros(200));
                }
                done.store(true, Ordering::Release);
            });
        }
        for _ in 0..readers {
            let server = server.clone();
            let published = published.clone();
            let done = done.clone();
            let start = start.clone();
            let q = q.clone();
            s.spawn(move || {
                start.wait();
                loop {
                    let floor = published.load(Ordering::Acquire);
                    let finished = done.load(Ordering::Acquire);
                    let result = server.execute(&q).unwrap();
                    let marker = match result.table.row(0).unwrap()[0] {
                        Scalar::Int64(m) => m as u64,
                        ref other => panic!("unexpected marker {other:?}"),
                    };
                    assert!(
                        marker >= floor,
                        "stale plan served: marker {marker} after registration {floor} completed"
                    );
                    if finished {
                        break;
                    }
                }
            });
        }
    });
    assert!(server.plan_cache_stats().invalidations > 0);
}

#[test]
fn per_session_recall_tolerance_partitions_the_plan_cache() {
    let server = Server::new(fresh_engine(), ServeConfig::default());
    let exact = server.session();
    let tolerant = server.session();
    tolerant.set_recall_tolerance(5e-2);
    assert_eq!(tolerant.optimizer_config().recall_tolerance, 5e-2);
    assert_eq!(exact.optimizer_config().recall_tolerance, 0.0);

    let q = server
        .table("products")
        .unwrap()
        .semantic_filter("name", "clothes", "m", 0.8)
        .sort(&[("product_id", true)]);

    // Same query text, different session configs: two distinct plan-cache
    // entries (the config fingerprint partitions the cache), each with
    // its own hit stream — and identical results here, since this scan is
    // far below the quantization floor either way.
    let a = exact.execute(&q).unwrap();
    let b = tolerant.execute(&q).unwrap();
    assert!(!a.plan_cache_hit && !b.plan_cache_hit);
    assert_eq!(server.plan_cache_stats().len, 2);
    assert_tables_bit_identical(&b.table, &a.table, "tolerant session");
    assert!(exact.execute(&q).unwrap().plan_cache_hit || exact.execute(&q).unwrap().result_cache_hit);
    assert!(tolerant.execute(&q).unwrap().plan_cache_hit || tolerant.execute(&q).unwrap().result_cache_hit);

    // Clearing the override rejoins the default partition.
    tolerant.reset_optimizer_config();
    let back = tolerant.execute(&q).unwrap();
    assert!(back.plan_cache_hit || back.result_cache_hit);
    assert_eq!(server.plan_cache_stats().len, 2);
}

//! Differential SQL harness: every SQL statement must be **bit-identical**
//! to its hand-built `Query` twin, across every execution mode:
//!
//! * ad hoc with auto-parameterization off (exact-fingerprint planning),
//! * ad hoc with auto-parameterization on (literals lifted, served
//!   through the prepared machinery),
//! * replayed (second run of the same text: plan cache + result memo),
//! * an 8-client storm with MQO scan sharing on.
//!
//! The reference for every twin is literal execution through a plain
//! serial engine. `Float64` cells are compared by bit pattern.

use context_analytics::exec::logical::{AggFunc, AggSpec, JoinType};
use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, Query, ServeConfig, Server, SqlResponse};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::Arc;
use std::time::Duration;

const NAMES: [&str; 12] = [
    "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker", "blazer",
    "canine", "feline", "lace-ups",
];

fn fresh_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..NAMES.len() as i64).collect()),
            Column::from_strings(NAMES),
            Column::from_f64((0..NAMES.len()).map(|i| 10.0 + 7.5 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();
    let labels = Table::from_columns(
        Schema::new(vec![
            Field::new("label_id", DataType::Int64),
            Field::new("label", DataType::Utf8),
        ]),
        vec![
            Column::from_i64(vec![0, 1, 2, 3, 4, 5]),
            Column::from_strings(["shoes", "jacket", "pets", "clothes", "boots", "parka"]),
        ],
    )
    .unwrap();
    engine.register_table("labels", labels).unwrap();
    engine
}

/// The twin corpus: (SQL text, equivalent hand-built query). Every pair
/// must serve bit-identical tables through every mode below.
fn twins(engine: &Engine) -> Vec<(String, Query)> {
    let t = |name: &str| engine.table(name).unwrap();
    let mut out: Vec<(String, Query)> = Vec::new();
    let mut twin = |sql: &str, q: Query| out.push((sql.to_string(), q));

    // Relational filters: one shape, many literals (the auto-param
    // sweet spot), plus every comparison operator.
    for price in ["15.0", "25.5", "40.0", "60.0", "77.5"] {
        twin(
            &format!("SELECT name, price FROM products WHERE price > {price} ORDER BY name"),
            t("products")
                .filter(col("price").gt(lit(price.parse::<f64>().unwrap())))
                .sort(&[("name", true)])
                .select_columns(&["name", "price"]),
        );
    }
    twin(
        "SELECT * FROM products WHERE price < 30.0",
        t("products").filter(col("price").lt(lit(30.0))),
    );
    twin(
        "SELECT * FROM products WHERE price <= 25.0",
        t("products").filter(col("price").lt_eq(lit(25.0))),
    );
    twin(
        "SELECT * FROM products WHERE price >= 70.0",
        t("products").filter(col("price").gt_eq(lit(70.0))),
    );
    twin(
        "SELECT * FROM products WHERE name = 'boots'",
        t("products").filter(col("name").eq(lit("boots"))),
    );
    twin(
        "SELECT * FROM products WHERE name != 'boots'",
        t("products").filter(col("name").not_eq(lit("boots"))),
    );
    twin(
        "SELECT * FROM products WHERE price > 20.0 AND price < 60.0",
        t("products").filter(col("price").gt(lit(20.0)).and(col("price").lt(lit(60.0)))),
    );
    twin(
        "SELECT * FROM products WHERE name = 'boots' OR name = 'parka'",
        t("products").filter(col("name").eq(lit("boots")).or(col("name").eq(lit("parka")))),
    );
    twin(
        "SELECT * FROM products WHERE NOT (price > 40.0)",
        t("products").filter(col("price").gt(lit(40.0)).not()),
    );
    twin(
        "SELECT * FROM products WHERE name IS NULL",
        t("products").filter(col("name").is_null()),
    );
    twin(
        "SELECT * FROM products WHERE name IS NOT NULL",
        t("products").filter(col("name").is_null().not()),
    );
    // Arithmetic in predicates and projections.
    twin(
        "SELECT * FROM products WHERE price + 10.0 < 50.0",
        t("products").filter(col("price").add(lit(10.0)).lt(lit(50.0))),
    );
    twin(
        "SELECT * FROM products WHERE price * 2.0 >= 100.0",
        t("products").filter(col("price").mul(lit(2.0)).gt_eq(lit(100.0))),
    );
    twin(
        "SELECT * FROM products WHERE price - 5.0 > 20.0",
        t("products").filter(col("price").sub(lit(5.0)).gt(lit(20.0))),
    );
    twin(
        "SELECT * FROM products WHERE price / 2.0 < 20.0",
        t("products").filter(col("price").div(lit(2.0)).lt(lit(20.0))),
    );
    twin(
        "SELECT name AS n, price * 0.9 AS sale FROM products ORDER BY n",
        t("products")
            .sort(&[("name", true)])
            .select(vec![(col("name"), "n"), (col("price").mul(lit(0.9)), "sale")]),
    );
    // Projection, DISTINCT, ORDER BY, LIMIT.
    twin("SELECT name FROM products", t("products").select_columns(&["name"]));
    twin(
        "SELECT DISTINCT name FROM products ORDER BY name",
        t("products").select_columns(&["name"]).distinct().sort(&[("name", true)]),
    );
    twin(
        "SELECT * FROM products ORDER BY price DESC, name ASC LIMIT 4",
        t("products").sort(&[("price", false), ("name", true)]).limit(4),
    );
    twin(
        "SELECT name FROM products ORDER BY price DESC",
        t("products").sort(&[("price", false)]).select_columns(&["name"]),
    );
    twin("SELECT * FROM products LIMIT 3", t("products").limit(3));
    // Semantic filters: probes, thresholds, k-limits.
    for (probe, threshold) in
        [("shoes", 0.75), ("jacket", 0.8), ("pets", 0.7), ("clothes", 0.78)]
    {
        twin(
            &format!(
                "SELECT * FROM products WHERE name SEMANTIC LIKE '{probe}' ({threshold}) \
                 ORDER BY product_id"
            ),
            t("products")
                .semantic_filter("name", probe, "m", threshold as f32)
                .sort(&[("product_id", true)]),
        );
    }
    for k in [1usize, 3, 5] {
        twin(
            &format!("SELECT * FROM products WHERE name SEMANTIC LIKE 'shoes' ({k}, 0.7)"),
            t("products").semantic_filter("name", "shoes", "m", 0.7).limit(k),
        );
    }
    twin(
        "SELECT name FROM products \
         WHERE name SEMANTIC LIKE 'jacket' USING m (0.8) AND price > 20.0 ORDER BY name",
        t("products")
            .filter(col("price").gt(lit(20.0)))
            .semantic_filter("name", "jacket", "m", 0.8)
            .sort(&[("name", true)])
            .select_columns(&["name"]),
    );
    // Aggregation: grouped, global, every aggregate function.
    twin(
        "SELECT name, COUNT(*) FROM products GROUP BY name ORDER BY name",
        t("products")
            .aggregate(&["name"], vec![AggSpec::count_star("count")])
            .sort(&[("name", true)]),
    );
    twin(
        "SELECT name, SUM(price) AS total, MIN(price) AS lo, MAX(price) AS hi \
         FROM products GROUP BY name ORDER BY name",
        t("products")
            .aggregate(
                &["name"],
                vec![
                    AggSpec::new(AggFunc::Sum, "price", "total"),
                    AggSpec::new(AggFunc::Min, "price", "lo"),
                    AggSpec::new(AggFunc::Max, "price", "hi"),
                ],
            )
            .sort(&[("name", true)]),
    );
    twin(
        "SELECT COUNT(*) AS n, AVG(price) AS mean FROM products",
        t("products").aggregate(
            &[],
            vec![AggSpec::count_star("n"), AggSpec::new(AggFunc::Avg, "price", "mean")],
        ),
    );
    twin(
        "SELECT COUNT(price) AS priced FROM products WHERE price > 50.0",
        t("products")
            .filter(col("price").gt(lit(50.0)))
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, "price", "priced")]),
    );
    // Semantic group-by: clusters plus per-cluster aggregates.
    twin(
        "SELECT name, cluster_id, COUNT(*) FROM products GROUP BY SEMANTIC name (0.4)",
        t("products").semantic_group_by("name", "m", 0.4, vec![AggSpec::count_star("count")]),
    );
    twin(
        "SELECT name, cluster_id, AVG(price) AS mean FROM products \
         GROUP BY SEMANTIC name USING m (0.5)",
        t("products").semantic_group_by(
            "name",
            "m",
            0.5,
            vec![AggSpec::new(AggFunc::Avg, "price", "mean")],
        ),
    );
    // Relational joins: every join type, plus a self-join collision.
    twin(
        "SELECT * FROM products INNER JOIN labels ON product_id = label_id",
        t("products").join(t("labels"), &[("product_id", "label_id")], JoinType::Inner),
    );
    twin(
        "SELECT * FROM products LEFT JOIN labels ON product_id = label_id",
        t("products").join(t("labels"), &[("product_id", "label_id")], JoinType::Left),
    );
    twin(
        "SELECT * FROM products SEMI JOIN labels ON product_id = label_id",
        t("products").join(t("labels"), &[("product_id", "label_id")], JoinType::LeftSemi),
    );
    twin(
        "SELECT * FROM products ANTI JOIN labels ON product_id = label_id",
        t("products").join(t("labels"), &[("product_id", "label_id")], JoinType::LeftAnti),
    );
    twin(
        "SELECT * FROM products CROSS JOIN labels WHERE price > 80.0",
        t("products").cross_join(t("labels")).filter(col("price").gt(lit(80.0))),
    );
    twin(
        "SELECT a.name, b.price AS bprice FROM products AS a \
         INNER JOIN products AS b ON a.product_id = b.product_id",
        t("products")
            .join(t("products"), &[("product_id", "product_id")], JoinType::Inner)
            .select(vec![(col("name"), "name"), (col("right.price"), "bprice")]),
    );
    // Semantic joins: default and named score columns.
    twin(
        "SELECT * FROM products SEMANTIC JOIN labels ON SIM(name, label) >= 0.75",
        t("products").semantic_join(t("labels"), "name", "label", "m", 0.75),
    );
    twin(
        "SELECT * FROM products SEMANTIC JOIN labels USING m \
         ON SIM(name, label) > 0.8 SCORE closeness",
        t("products").semantic_join_scored(t("labels"), "name", "label", "m", 0.8, "closeness"),
    );
    // Set operations.
    twin(
        "SELECT name FROM products UNION ALL SELECT label AS name FROM labels \
         ORDER BY name LIMIT 10",
        t("products")
            .select_columns(&["name"])
            .union(t("labels").select(vec![(col("label"), "name")]))
            .sort(&[("name", true)])
            .limit(10),
    );
    twin(
        "SELECT product_id FROM products WHERE price < 20.0 \
         UNION ALL SELECT product_id FROM products WHERE price > 80.0",
        t("products")
            .filter(col("price").lt(lit(20.0)))
            .select_columns(&["product_id"])
            .union(
                t("products")
                    .filter(col("price").gt(lit(80.0)))
                    .select_columns(&["product_id"]),
            ),
    );
    out
}

/// Bit-strict table comparison (f64 by bit pattern, everything else by
/// scalar equality).
fn assert_tables_bit_identical(got: &Table, expected: &Table, context: &str) {
    assert_eq!(got.num_rows(), expected.num_rows(), "{context}: row count");
    assert_eq!(got.schema().names(), expected.schema().names(), "{context}: schema");
    for r in 0..expected.num_rows() {
        let (g, e) = (got.row(r).unwrap(), expected.row(r).unwrap());
        for (c, (gs, es)) in g.iter().zip(&e).enumerate() {
            match (gs, es) {
                (Scalar::Float64(x), Scalar::Float64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {r} col {c}")
                }
                _ => assert_eq!(gs, es, "{context}: row {r} col {c}"),
            }
        }
    }
}

/// Reference tables: every twin's builder query executed on a cold
/// serial engine.
fn reference(pairs: &[(String, Query)]) -> Vec<Table> {
    let serial = fresh_engine();
    pairs.iter().map(|(_, q)| serial.execute(q).unwrap().table).collect()
}

fn sql_rows(session: &context_analytics::Session, sql: &str) -> Arc<Table> {
    match session.sql(sql).unwrap_or_else(|e| panic!("{sql}: {e}")) {
        SqlResponse::Rows(r) => r.table,
        other => panic!("{sql}: expected rows, got {other:?}"),
    }
}

#[test]
fn corpus_is_large_enough() {
    let engine = fresh_engine();
    assert!(twins(&engine).len() >= 40, "only {} twins", twins(&engine).len());
}

#[test]
fn adhoc_exact_matches_builder_twins() {
    let engine = fresh_engine();
    let pairs = twins(&engine);
    let expected = reference(&pairs);
    let server = Server::new(
        fresh_engine(),
        ServeConfig { sql_auto_param: false, ..ServeConfig::default() },
    );
    let session = server.session();
    for (i, (sql, _)) in pairs.iter().enumerate() {
        let got = sql_rows(&session, sql);
        assert_tables_bit_identical(&got, &expected[i], sql);
    }
    assert_eq!(server.sql_stats().auto_param, 0);
}

#[test]
fn auto_param_and_replay_match_builder_twins() {
    let engine = fresh_engine();
    let pairs = twins(&engine);
    let expected = reference(&pairs);
    let server = Server::new(fresh_engine(), ServeConfig::default());
    let session = server.session();
    // First pass: ad hoc through the auto-parameterized path.
    for (i, (sql, _)) in pairs.iter().enumerate() {
        let got = sql_rows(&session, sql);
        assert_tables_bit_identical(&got, &expected[i], &format!("cold: {sql}"));
    }
    let stats = server.sql_stats();
    assert!(stats.auto_param > 30, "{stats:?}");
    // Second pass: identical text replays from the plan cache + result
    // memo (prepared statements hit their per-binding memo, exact
    // fallbacks the plan-level memo) and stays bit-identical.
    let hits_before = server.stats().result_cache_hits;
    for (i, (sql, _)) in pairs.iter().enumerate() {
        let got = sql_rows(&session, sql);
        assert_tables_bit_identical(&got, &expected[i], &format!("replay: {sql}"));
    }
    let replay_hits = server.stats().result_cache_hits - hits_before;
    assert_eq!(replay_hits, pairs.len() as u64, "every replay should be a memo hit");
    // Every auto-parameterized replay resolved an already-cached shape.
    let stats = server.sql_stats();
    assert!(
        stats.auto_param_shape_hits >= stats.auto_param / 2,
        "replays must hit cached shapes: {stats:?}"
    );
}

#[test]
fn storm_of_eight_clients_stays_bit_identical() {
    let engine = fresh_engine();
    let pairs = Arc::new(twins(&engine));
    let expected = Arc::new(reference(&pairs));
    let server = Server::new(
        fresh_engine(),
        ServeConfig {
            scan_linger: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let threads = 8;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let server = server.clone();
                let pairs = pairs.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    let session = server.session();
                    // Stagger the walk so clients overlap on different
                    // statements, not in lockstep.
                    for step in 0..pairs.len() {
                        let i = (step + c * 5) % pairs.len();
                        let (sql, _) = &pairs[i];
                        let got = sql_rows(&session, sql);
                        assert_tables_bit_identical(
                            &got,
                            &expected[i],
                            &format!("client {c}: {sql}"),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = server.stats();
    assert_eq!(stats.sql.statements, (threads * pairs.len()) as u64);
    assert_eq!(stats.sql.errors, 0);
    // Eight clients over one corpus: the shape cache absorbs nearly
    // everything after the first sighting of each shape.
    assert!(
        stats.sql.shape_hit_rate() > 0.8,
        "shape hit rate {:.2} ({:?})",
        stats.sql.shape_hit_rate(),
        stats.sql
    );
}

//! Auto-parameterization regression tests: ad-hoc SQL statements that
//! differ only in literals must collapse into **one** prepared shape
//! (one optimizer run, one plan-cache entry), while statements that
//! genuinely differ in shape must not be conflated.
//!
//! `Session::sql` lifts literals out of the bound plan, fingerprints the
//! lifted template, and serves through the prepared-statement machinery —
//! so the assertions here are about `Server::sql_stats()` (auto-param and
//! shape-hit counters) and `Server::plan_cache_stats()` (how many times
//! the optimizer actually ran).

use context_analytics::{Engine, EngineConfig, ServeConfig, Server, SqlResponse};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::Arc;

const NAMES: [&str; 12] = [
    "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker", "blazer",
    "canine", "feline", "lace-ups",
];

fn fresh_server(config: ServeConfig) -> Arc<Server> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..NAMES.len() as i64).collect()),
            Column::from_strings(NAMES),
            Column::from_f64((0..NAMES.len()).map(|i| 10.0 + 7.5 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();
    Server::new(engine, config)
}

fn rows(response: SqlResponse) -> context_analytics::ServeResult {
    match response {
        SqlResponse::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn forty_literals_one_shape() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    for i in 0..40 {
        let price = 5.0 + 2.0 * i as f64;
        let r = rows(
            session
                .sql(&format!(
                    "SELECT name, price FROM products WHERE price > {price:?} ORDER BY name"
                ))
                .unwrap(),
        );
        let expect = NAMES
            .iter()
            .enumerate()
            .filter(|(j, _)| 10.0 + 7.5 * *j as f64 > price)
            .count();
        assert_eq!(r.table.num_rows(), expect, "price > {price}");
    }
    let stats = server.sql_stats();
    assert_eq!(stats.statements, 40);
    assert_eq!(stats.auto_param, 40);
    assert_eq!(stats.auto_param_shape_hits, 39);
    assert!(
        stats.shape_hit_rate() >= 0.95,
        "shape hit rate {:.3} below the 95% bar",
        stats.shape_hit_rate()
    );
    // One optimizer run for the whole family: every later statement
    // reused the first statement's cached physical plan.
    assert_eq!(server.plan_cache_stats().misses, 1);
}

#[test]
fn int_and_float_literals_share_a_shape() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    // Int64 literal first: the cached template's parameter slot is
    // re-inferred per binding, so a Float64 literal must reuse it.
    let a = rows(session.sql("SELECT name FROM products WHERE price > 30").unwrap());
    let b = rows(session.sql("SELECT name FROM products WHERE price > 45.5").unwrap());
    assert_eq!(a.table.num_rows(), 9);
    assert_eq!(b.table.num_rows(), 7);
    let stats = server.sql_stats();
    assert_eq!(stats.auto_param, 2);
    assert_eq!(stats.auto_param_shape_hits, 1, "Int64 vs Float64 literal split the shape");
    assert_eq!(server.plan_cache_stats().misses, 1);
    // And both results carry the schema the literal implies, not the
    // template's first-seen type.
    assert_eq!(a.table.schema().fields()[0].name, "name");
    assert_eq!(b.table.schema().fields()[0].name, "name");
}

#[test]
fn semantic_probes_share_a_shape_but_thresholds_do_not() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    // Same threshold, different probe text: the probe is lifted to a
    // parameter, so these are one shape.
    rows(session
        .sql("SELECT name FROM products WHERE name SEMANTIC LIKE 'shoes' USING m (0.75)")
        .unwrap());
    rows(session
        .sql("SELECT name FROM products WHERE name SEMANTIC LIKE 'jacket' USING m (0.75)")
        .unwrap());
    let after_probes = server.sql_stats();
    assert_eq!(after_probes.auto_param, 2);
    assert_eq!(after_probes.auto_param_shape_hits, 1, "probe text split the shape");
    // A different threshold is part of the operator, not a literal: it
    // must NOT collapse into the same cached plan.
    rows(session
        .sql("SELECT name FROM products WHERE name SEMANTIC LIKE 'shoes' USING m (0.5)")
        .unwrap());
    let after_threshold = server.sql_stats();
    assert_eq!(after_threshold.auto_param, 3);
    assert_eq!(
        after_threshold.auto_param_shape_hits, 1,
        "a different threshold wrongly hit the 0.75 shape"
    );
    assert_eq!(server.plan_cache_stats().misses, 2);
}

#[test]
fn literal_free_statement_uses_exact_planning() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    let r = rows(session.sql("SELECT name FROM products ORDER BY name LIMIT 3").unwrap());
    assert_eq!(r.table.num_rows(), 3);
    let stats = server.sql_stats();
    // LIMIT counts are liftable; a truly literal-free statement is not.
    let r2 = rows(session.sql("SELECT name, price FROM products").unwrap());
    assert_eq!(r2.table.num_rows(), NAMES.len());
    assert_eq!(server.sql_stats().exact_fallback, stats.exact_fallback + 1);
    // Replaying the literal-free text still hits the plan/result caches.
    let r3 = rows(session.sql("SELECT name, price FROM products").unwrap());
    assert!(r3.result_cache_hit, "replay of exact-planned text missed the result cache");
}

#[test]
fn auto_param_off_plans_every_literal_exactly() {
    let config = ServeConfig { sql_auto_param: false, ..ServeConfig::default() };
    let server = fresh_server(config);
    let session = server.session();
    for price in [20.0f64, 35.0, 50.0] {
        rows(session
            .sql(&format!("SELECT name FROM products WHERE price > {price:?}"))
            .unwrap());
    }
    let stats = server.sql_stats();
    assert_eq!(stats.statements, 3);
    assert_eq!(stats.auto_param, 0);
    assert_eq!(stats.auto_param_shape_hits, 0);
    assert_eq!(stats.shape_hit_rate(), 1.0, "rate degenerates to 1.0 with no auto-param");
    // Three distinct exact fingerprints → three optimizer runs.
    assert_eq!(server.plan_cache_stats().misses, 3);
}

#[test]
fn explicit_parameters_require_prepare() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    let err = session.sql("SELECT name FROM products WHERE price > $0").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("PREPARE"), "error should point at PREPARE/EXECUTE: {msg}");
    assert_eq!(server.sql_stats().errors, 1);
    // The PREPARE/EXECUTE path serves it fine — and still lands in the
    // same plan-cache machinery (one miss for the shape).
    session.sql("PREPARE by_price AS SELECT name FROM products WHERE price > $0").unwrap();
    let r = rows(session.sql("EXECUTE by_price (40.0)").unwrap());
    assert_eq!(r.table.num_rows(), 7);
    // An ad-hoc statement of the same shape reuses the prepared plan.
    let before = server.plan_cache_stats().misses;
    rows(session.sql("SELECT name FROM products WHERE price > 62.5").unwrap());
    assert_eq!(
        server.plan_cache_stats().misses,
        before,
        "ad-hoc auto-param statement should reuse the PREPAREd shape"
    );
    assert_eq!(server.sql_stats().auto_param_shape_hits, 1);
}

#[test]
fn execute_binds_are_type_checked_per_call() {
    let server = fresh_server(ServeConfig::default());
    let session = server.session();
    session.sql("PREPARE p AS SELECT name FROM products WHERE price > $0").unwrap();
    let with_int = rows(session.sql("EXECUTE p (30)").unwrap());
    let with_float = rows(session.sql("EXECUTE p (45.5)").unwrap());
    assert_eq!(with_int.table.num_rows(), 9);
    assert_eq!(with_float.table.num_rows(), 7);
    // Sanity: the underlying scalars really were different types.
    assert_ne!(
        std::mem::discriminant(&Scalar::Int64(30)),
        std::mem::discriminant(&Scalar::Float64(45.5)),
    );
}

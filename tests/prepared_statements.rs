//! Prepared statements (`cx_serve::Prepared`):
//!
//! * prepared execution must be **bit-identical** to ad-hoc execution of
//!   the equivalent literal query, across bindings and parameter kinds
//!   (semantic probes, comparison literals, limits),
//! * catalog registrations with outstanding `Prepared` handles must make
//!   the next execute re-optimize — never a stale plan, never a stale
//!   per-binding memo,
//! * a concurrent prepared storm with distinct bindings must coalesce
//!   into shared sweeps (MQO) and stay bit-identical.

use context_analytics::expr::{col, param};
use context_analytics::{Engine, EngineConfig, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const NAMES: [&str; 12] = [
    "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker", "blazer",
    "canine", "feline", "lace-ups",
];

fn products_table() -> Table {
    Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..NAMES.len() as i64).collect()),
            Column::from_strings(NAMES),
            Column::from_f64((0..NAMES.len()).map(|i| 10.0 + 7.5 * i as f64).collect()),
        ],
    )
    .unwrap()
}

fn fresh_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    engine.register_table("products", products_table()).unwrap();
    engine
}

/// Bit-strict table comparison (f64 by bit pattern, everything else by
/// scalar equality).
fn assert_tables_bit_identical(got: &Table, expected: &Table, context: &str) {
    assert_eq!(got.num_rows(), expected.num_rows(), "{context}: row count");
    assert_eq!(got.schema().names(), expected.schema().names(), "{context}: schema");
    for r in 0..expected.num_rows() {
        let (g, e) = (got.row(r).unwrap(), expected.row(r).unwrap());
        for (c, (gs, es)) in g.iter().zip(&e).enumerate() {
            match (gs, es) {
                (Scalar::Float64(x), Scalar::Float64(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {r} col {c}")
                }
                _ => assert_eq!(gs, es, "{context}: row {r} col {c}"),
            }
        }
    }
}

const TARGETS: [&str; 8] = [
    "boots", "parka", "kitten", "sneakers", "coat", "puppy", "shoes", "jacket",
];

#[test]
fn prepared_is_bit_identical_to_adhoc_across_bindings() {
    // Reference: literal queries through a plain serial engine, cold.
    let serial = fresh_engine();
    let expected: Vec<Table> = TARGETS
        .iter()
        .enumerate()
        .map(|(i, target)| {
            let price = 10.0 + 5.0 * i as f64;
            let limit = 1 + (i as i64 % 4) * 3;
            serial
                .execute(
                    &serial
                        .table("products")
                        .unwrap()
                        .semantic_filter("name", target, "m", 0.75)
                        .filter(col("price").gt(context_analytics::expr::lit(price)))
                        .sort(&[("product_id", true)])
                        .limit(limit as usize),
                )
                .unwrap()
                .table
        })
        .collect();

    // One prepared template over a second cold engine covers the whole
    // family: probe, comparison literal, and limit all parameterized.
    let server = Server::new(fresh_engine(), ServeConfig::default());
    let session = server.session();
    let template = session
        .table("products")
        .unwrap()
        .semantic_filter_param("name", 0, "m", 0.75)
        .filter(col("price").gt(param(1)))
        .sort(&[("product_id", true)])
        .limit_param(2);
    let prepared = session.prepare(&template).unwrap();
    assert_eq!(prepared.param_count(), 3);

    for (i, target) in TARGETS.iter().enumerate() {
        let price = 10.0 + 5.0 * i as f64;
        let limit = 1 + (i as i64 % 4) * 3;
        let got = prepared
            .execute(&[Scalar::from(*target), Scalar::Float64(price), Scalar::Int64(limit)])
            .unwrap();
        assert_tables_bit_identical(&got.table, &expected[i], &format!("binding {i} ({target})"));
        // Every execution after prepare resolves through the cached shape.
        assert!(got.plan_cache_hit, "binding {i} missed the plan cache");
        assert!(!got.result_cache_hit);
    }

    // The storm of distinct bindings produced exactly one optimization.
    let stats = server.plan_cache_stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, TARGETS.len() as u64, "{stats:?}");
    assert!(stats.hit_rate() > 0.85, "{stats:?}");
}

#[test]
fn catalog_bump_with_outstanding_handle_reoptimizes_and_never_serves_stale_memo() {
    let server = Server::new(fresh_engine(), ServeConfig::default());
    let session = server.session();
    let template = session
        .table("products")
        .unwrap()
        .semantic_filter_param("name", 0, "m", 0.75)
        .sort(&[("product_id", true)]);
    let prepared = session.prepare(&template).unwrap();

    let bind = [Scalar::from("shoes")];
    let before = prepared.execute(&bind).unwrap();
    assert!(before.plan_cache_hit);
    // Populate the per-binding memo, then replay from it.
    assert!(prepared.execute(&bind).unwrap().result_cache_hit);
    let rows_before = before.table.num_rows();
    assert!(rows_before >= 3, "boots/sneakers/oxfords/lace-ups expected");

    // Re-register the table with different contents while the handle is
    // outstanding: the version bump must invalidate both the plan and the
    // binding memo.
    let shrunk = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64(vec![100]),
            Column::from_strings(["boots"]),
            Column::from_f64(vec![1.0]),
        ],
    )
    .unwrap();
    server.engine().register_table("products", shrunk).unwrap();

    let after = prepared.execute(&bind).unwrap();
    assert!(!after.plan_cache_hit, "stale prepared plan served after catalog change");
    assert!(!after.result_cache_hit, "stale per-binding memo served after catalog change");
    assert_eq!(after.table.num_rows(), 1);
    assert_eq!(after.table.row(0).unwrap()[0], Scalar::Int64(100));
    assert!(server.plan_cache_stats().invalidations >= 1);

    // And the rebuilt entry serves (fresh) memo replays again.
    assert!(prepared.execute(&bind).unwrap().result_cache_hit);
}

#[test]
fn prepared_storm_coalesces_into_shared_sweeps_bit_identically() {
    let threads = 8;
    // Several rounds per client: the prepared execute path has no
    // blocking points, so on a single core one round per client can
    // serialize into 8 provably-uncontended (hence solo) executions.
    // Across rounds the threads genuinely overlap, a leader observes the
    // contention and lingers, and the group fills.
    let rounds = 6;
    let binding = |client: usize, round: usize| {
        (TARGETS[client], 10.0 + 10.0 * round as f64)
    };

    // Reference: serial literal execution, cold engine.
    let serial = fresh_engine();
    let expected: Vec<Vec<Table>> = (0..threads)
        .map(|c| {
            (0..rounds)
                .map(|r| {
                    let (target, price) = binding(c, r);
                    serial
                        .execute(
                            &serial
                                .table("products")
                                .unwrap()
                                .semantic_filter("name", target, "m", 0.8)
                                .filter(col("price").gt(context_analytics::expr::lit(price)))
                                .sort(&[("product_id", true)]),
                        )
                        .unwrap()
                        .table
                })
                .collect()
        })
        .collect();

    // Ballast: one slow, non-shareable relational query kept in flight
    // for the storm's whole duration. On a single core the barrier storm
    // of tiny queries can fully serialize — each execution finishes
    // inside its thread's timeslice, so no scan-queue leader ever
    // observes a second in-flight query and nobody lingers. The ballast
    // makes every leader check contended; the leader lingers and the
    // runnable siblings pile into its group. Relational-only: no scan
    // signature, so it never appears in the sharing stats itself.
    let engine = fresh_engine();
    let ballast_rows = 300_000usize;
    engine
        .register_table(
            "ballast",
            Table::from_columns(
                Schema::new(vec![Field::new("x", DataType::Int64)]),
                vec![Column::from_i64(
                    (0..ballast_rows as i64).map(|k| (k * 48271) % ballast_rows as i64).collect(),
                )],
            )
            .unwrap(),
        )
        .unwrap();

    let server = Server::new(
        engine,
        ServeConfig {
            scan_linger: Duration::from_millis(50),
            scan_group_max: threads,
            ..ServeConfig::default()
        },
    );
    let ballast_stop = Arc::new(AtomicBool::new(false));
    let ballast_thread = {
        let server = server.clone();
        let stop = ballast_stop.clone();
        std::thread::spawn(move || {
            let mut lap = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // A distinct limit per lap defeats the plan cache and the
                // result memo, so every lap genuinely re-sorts.
                let q = server
                    .table("ballast")
                    .unwrap()
                    .sort(&[("x", true)])
                    .limit(400_000 + lap);
                server.execute(&q).unwrap();
                lap += 1;
            }
        })
    };
    // One shared handle: prepared handles are Send + Sync.
    let prepared = Arc::new(
        server
            .session()
            .prepare(
                &server
                    .table("products")
                    .unwrap()
                    .semantic_filter_param("name", 0, "m", 0.8)
                    .filter(col("price").gt(param(1)))
                    .sort(&[("product_id", true)]),
            )
            .unwrap(),
    );

    let barrier = Arc::new(Barrier::new(threads));
    let shared_answers = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let prepared = prepared.clone();
                let barrier = barrier.clone();
                let shared_answers = shared_answers.clone();
                s.spawn(move || {
                    barrier.wait();
                    (0..rounds)
                        .map(|r| {
                            let (target, price) = binding(c, r);
                            let res = prepared
                                .execute(&[Scalar::from(target), Scalar::Float64(price)])
                                .unwrap();
                            if res.shared_scan {
                                shared_answers.fetch_add(1, Ordering::Relaxed);
                            }
                            res.table
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (c, handle) in handles.into_iter().enumerate() {
            let got = handle.join().unwrap();
            for (r, (g, e)) in got.iter().zip(&expected[c]).enumerate() {
                assert_tables_bit_identical(g, e, &format!("client {c} round {r}"));
            }
        }
    });

    ballast_stop.store(true, Ordering::Relaxed);
    ballast_thread.join().unwrap();

    let stats = server.stats();
    assert_eq!(stats.prepared_queries, (threads * rounds) as u64);
    // Every bound execution carried a shareable scan into the queue, and
    // at least one group genuinely coalesced.
    assert_eq!(
        stats.scan_sharing.grouped_queries,
        (threads * rounds) as u64,
        "{:?}",
        stats.scan_sharing
    );
    assert!(stats.scan_sharing.shared_groups >= 1, "{:?}", stats.scan_sharing);
    assert!(stats.scan_sharing.shared_queries >= 2, "{:?}", stats.scan_sharing);
    assert!(shared_answers.load(Ordering::Relaxed) >= 2);
}

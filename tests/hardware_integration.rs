//! Integration: optimized plans placed onto simulated device topologies
//! (the Figure 5 decision problem).

use context_analytics::engine::hardware_bridge::{plan_on_topology, profile_pipeline};
use cx_embed::ModelRegistry;
use cx_exec::logical::{LogicalPlan, SemanticJoinSpec};
use cx_expr::{col, lit};
use cx_hardware::{AdaptivePicker, Topology};
use cx_optimizer::{Optimizer, OptimizerConfig, OptimizerContext};
use cx_storage::{DataType, Field, Schema};
use std::sync::Arc;

fn semantic_plan() -> LogicalPlan {
    let products = LogicalPlan::Scan {
        source: "products".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])),
    };
    let kb = LogicalPlan::Scan {
        source: "kb".into(),
        schema: Arc::new(Schema::new(vec![Field::new("label", DataType::Utf8)])),
    };
    LogicalPlan::Filter {
        predicate: col("price").gt(lit(20.0)),
        input: Box::new(LogicalPlan::SemanticJoin {
            left: Box::new(products),
            right: Box::new(kb),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        }),
    }
}

fn ctx() -> OptimizerContext {
    OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all())
}

#[test]
fn optimized_plan_places_on_every_preset() {
    let c = ctx();
    let optimizer = Optimizer::new(&c);
    let (plan, _) = optimizer.optimize(&semantic_plan(), &c);
    let mut last_total = f64::INFINITY;
    // Successively richer topologies never slow the optimal placement.
    for topology in [
        Topology::cpu_only(),
        Topology::cpu_gpu(),
        Topology::cpu_gpu_tpu(),
        Topology::cpu_gpu_tpu_fast(),
    ] {
        let report = plan_on_topology(&plan, &c, &topology, 7).unwrap();
        assert!(report.placement.total_ns <= last_total * 1.0001);
        last_total = report.placement.total_ns;
        // Simulation and estimate agree within jitter bounds.
        let rel =
            (report.simulated.total_ns - report.placement.total_ns).abs() / report.placement.total_ns;
        assert!(rel < 0.15, "rel {rel}");
    }
}

#[test]
fn pipeline_profiles_match_plan_shape() {
    let c = ctx();
    let plan = semantic_plan();
    let profiles = profile_pipeline(&plan, &c);
    assert_eq!(profiles.len(), plan.node_count());
}

#[test]
fn adaptive_picker_selects_unrolled_kernel() {
    // The JIT-style runtime decision: pick the fastest cosine kernel on a
    // sample morsel. On any hardware the unrolled kernel should beat the
    // per-pair re-normalizing one.
    let dim = 100;
    let a: Vec<f32> = (0..dim * 64).map(|i| (i as f32 * 0.13).sin()).collect();
    let mut picker: AdaptivePicker<Vec<f32>> = AdaptivePicker::new()
        .variant("naive-renorm", move |data: &Vec<f32>| {
            let mut acc = 0.0f32;
            for pair in data.chunks_exact(2 * dim) {
                let (x, y) = pair.split_at(dim);
                acc += cx_vector::kernels::cosine(x, y);
            }
            std::hint::black_box(acc);
        })
        .variant("prenormalized-unrolled", move |data: &Vec<f32>| {
            let mut acc = 0.0f32;
            for pair in data.chunks_exact(2 * dim) {
                let (x, y) = pair.split_at(dim);
                acc += cx_vector::kernels::cosine_prenormalized(x, y);
            }
            std::hint::black_box(acc);
        });
    let winner = picker.calibrate(&a, 5);
    assert_eq!(winner, 1, "timings: {:?}", picker.timings_ns());
}

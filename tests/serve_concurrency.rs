//! Concurrency stress test for `cx_serve`: N threads replaying the same
//! query mix through one shared [`Server`] must produce results
//! bit-identical to a serial [`Engine::execute`] loop, while the plan
//! cache reports hits and the embed batcher coalesces concurrent
//! requests.

use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, Query, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::{AggFunc, AggSpec};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn fresh_engine() -> Arc<Engine> {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));

    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
        "loafers", "anorak", "tabby", "hound",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 10.0 + 7.5 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();

    let mut kb = cx_kb::KnowledgeBase::new();
    for item in ["boots", "sneakers", "oxfords", "loafers"] {
        kb.assert_is_a(item, "shoes");
    }
    for item in ["parka", "coat", "windbreaker", "anorak"] {
        kb.assert_is_a(item, "jacket");
    }
    kb.assert_is_a("shoes", "clothes");
    kb.assert_is_a("jacket", "clothes");
    engine.register_kb("kb", kb).unwrap();
    engine
}

/// The replayed mix: relational, semantic filter, semantic join, group-by —
/// with deliberate repeats so a plan cache has something to hit.
fn query_mix(engine: &Engine) -> Vec<Query> {
    let sem_filter = |threshold| {
        engine
            .table("products")
            .unwrap()
            .semantic_filter("name", "clothes", "m", threshold)
            .sort(&[("product_id", true)])
    };
    let join = || {
        let kb = engine
            .table("kb")
            .unwrap()
            .filter(col("category").eq(lit("clothes")));
        engine
            .table("products")
            .unwrap()
            .semantic_join(kb, "name", "label", "m", 0.9)
            .filter(col("price").gt(lit(20.0)))
            .sort(&[("product_id", true), ("label", true)])
    };
    let agg = || {
        engine
            .table("products")
            .unwrap()
            .semantic_group_by(
                "name",
                "m",
                0.85,
                vec![
                    AggSpec::count_star("items"),
                    AggSpec::new(AggFunc::Avg, "price", "avg_price"),
                ],
            )
            .sort(&[("cluster_id", true)])
    };
    vec![
        sem_filter(0.75),
        join(),
        agg(),
        sem_filter(0.75), // repeat → plan-cache hit
        sem_filter(0.8),
        join(), // repeat → plan-cache hit
    ]
}

fn table_rows(table: &Table) -> Vec<Vec<cx_storage::Scalar>> {
    (0..table.num_rows()).map(|r| table.row(r).unwrap()).collect()
}

#[test]
fn concurrent_serving_is_bit_identical_to_serial_execution() {
    // Reference: a serial engine, cold caches, plain `execute` loop.
    let serial = fresh_engine();
    let expected: Vec<_> = query_mix(&serial)
        .iter()
        .map(|q| table_rows(&serial.execute(q).unwrap().table))
        .collect();

    // Serving: a second cold engine behind a server. A generous linger
    // plus a start barrier guarantees the 8 threads' warm requests land in
    // the same flush window, so coalescing is deterministic.
    let engine = fresh_engine();
    let server = Server::new(
        engine,
        ServeConfig {
            batch_linger: Duration::from_millis(200),
            batch_max: 4096,
            ..ServeConfig::default()
        },
    );
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let server = server.clone();
                let barrier = barrier.clone();
                s.spawn(move || {
                    let session = server.session();
                    let mix = query_mix(server.engine());
                    barrier.wait();
                    mix.iter()
                        .map(|q| table_rows(&session.execute(q).unwrap().table))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let got = handle.join().unwrap();
            assert_eq!(got.len(), expected.len());
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(g, e, "query {i} diverged from serial execution");
            }
        }
    });

    // Plan cache: every thread replays repeated queries; 8 threads × 6
    // queries over 4 distinct fingerprints must hit.
    let plan_stats = server.plan_cache_stats();
    assert!(plan_stats.hits >= 1, "plan cache never hit: {plan_stats:?}");
    assert_eq!(server.stats().queries, (threads * 6) as u64);

    // Embed batcher: concurrent warm-ups coalesced — at least one flush
    // served ≥ 2 distinct requests.
    let batch_stats = server.batcher("m").unwrap().stats();
    assert!(
        batch_stats.max_batch_submitters >= 2,
        "no flush served two concurrent requests: {batch_stats:?}"
    );
    assert!(batch_stats.coalesced_batches >= 1, "{batch_stats:?}");
    assert!(batch_stats.texts_coalesced >= 1, "{batch_stats:?}");

    // And the shared cache means the model embedded each distinct string
    // once across all 48 served queries — same as the serial engine.
    let model_calls = server
        .engine()
        .embedding_cache("m")
        .unwrap()
        .model()
        .stats()
        .invocations();
    let serial_calls = serial.embedding_cache("m").unwrap().model().stats().invocations();
    assert_eq!(model_calls, serial_calls, "server re-embedded cached strings");
}

#[test]
fn admission_control_survives_a_thundering_herd() {
    let engine = fresh_engine();
    // A deliberately tiny admission capacity: queries must queue, finish,
    // and release — no deadlock, no starvation.
    let server = Server::new(
        engine,
        ServeConfig {
            admission_capacity: 1.0,
            // The result memo would skip the gate on replays; this test is
            // about the gate, so every query must execute.
            cache_results: false,
            // Scan sharing admits whole groups on one shared-cost permit
            // (covered by tests/mqo_shared_scan.rs); this test pins the
            // one-permit-per-query discipline, so it runs unshared.
            mqo: false,
            ..ServeConfig::default()
        },
    );
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let q = server
                    .table("products")
                    .unwrap()
                    .semantic_filter("name", "clothes", "m", 0.75);
                for _ in 0..20 {
                    server.execute(&q).unwrap();
                }
            });
        }
    });
    // Every query passed the gate and every permit was released — no
    // deadlock, no leaked cost, even at a capacity that forces queueing
    // whenever executions overlap. (Deterministic *blocking* behavior is
    // covered by cx_serve's CostGate unit tests; whether these particular
    // threads overlapped at the gate is scheduling luck, so it is not
    // asserted here.)
    let stats = server.admission_stats();
    assert_eq!(stats.admitted, 20 * threads as u64);
    assert_eq!(stats.active, 0);
    assert_eq!(stats.in_use, 0.0);
}

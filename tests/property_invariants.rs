//! Property-based tests on core data-structure invariants: bitmaps,
//! columns, kernels, top-k, quantization, indexes, and expression folding.

use cx_embed::{
    dot_block_int8, dot_int8, f16_to_f32, f32_to_f16, quantize_query_int8, QuantTier,
    QuantizedVector,
};
use cx_expr::{eval, fold_constants, BinOp, Expr};
use cx_storage::{Bitmap, Chunk, Column, DataType, Field, Scalar, Schema};
use cx_vector::block::{cosine_block_threshold, dot_block, dot_block_threshold, scores_matrix};
use cx_vector::kernels::{cosine, cosine_with_norms, dot, dot_unrolled, l2_distance, norm};
use cx_vector::{BruteForceIndex, LshIndex, QuantizedArena, TopK, VectorArena, VectorIndex};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Bitmap laws
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn bitmap_de_morgan(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let a = Bitmap::from_bools(bits.iter().copied());
        let b = Bitmap::from_bools(bits.iter().map(|x| !x));
        // NOT(a AND b) == NOT a OR NOT b
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        // Complement partitions the domain.
        prop_assert_eq!(a.count_ones() + a.not().count_ones(), bits.len());
        // Double negation.
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn bitmap_set_indices_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let bm = Bitmap::from_bools(bits.iter().copied());
        let idx = bm.set_indices();
        prop_assert_eq!(idx.len(), bm.count_ones());
        // Indices are strictly increasing and in bounds.
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in &idx {
            prop_assert!(bm.get(i));
        }
    }
}

// ---------------------------------------------------------------------------
// Column invariants
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn column_filter_take_consistency(
        values in prop::collection::vec(any::<i64>(), 1..100),
        mask_seed in any::<u64>(),
    ) {
        let col = Column::from_i64(values.clone());
        let mask = Bitmap::from_bools(
            (0..values.len()).map(|i| (mask_seed >> (i % 64)) & 1 == 1),
        );
        let filtered = col.filter(&mask).unwrap();
        let taken = col.take(&mask.set_indices()).unwrap();
        // filter == take(set_indices)
        prop_assert_eq!(filtered, taken);
    }

    #[test]
    fn column_concat_preserves_rows(
        a in prop::collection::vec(any::<i64>(), 0..50),
        b in prop::collection::vec(any::<i64>(), 0..50),
    ) {
        let ca = Column::from_i64(a.clone());
        let cb = Column::from_i64(b.clone());
        let joined = ca.concat(&cb).unwrap();
        prop_assert_eq!(joined.len(), a.len() + b.len());
        for (i, v) in a.iter().chain(b.iter()).enumerate() {
            prop_assert_eq!(joined.get(i), Scalar::Int64(*v));
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel identities
// ---------------------------------------------------------------------------

fn f32vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len..=len)
}

proptest! {
    #[test]
    fn unrolled_dot_matches_scalar(n in 0usize..130, seed in any::<u64>()) {
        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        let a: Vec<f32> = (0..n).map(|_| rng.next_f32_symmetric()).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.next_f32_symmetric()).collect();
        let (s, u) = (dot(&a, &b), dot_unrolled(&a, &b));
        prop_assert!((s - u).abs() <= 1e-3 * (1.0 + s.abs()), "{s} vs {u}");
    }

    #[test]
    fn cauchy_schwarz(a in f32vec(64), b in f32vec(64)) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c), "cosine {c}");
        // Symmetry.
        prop_assert!((c - cosine(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn triangle_inequality_l2(a in f32vec(32), b in f32vec(32), c in f32vec(32)) {
        let ab = l2_distance(&a, &b);
        let bc = l2_distance(&b, &c);
        let ac = l2_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-2, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn norm_scaling(a in f32vec(32), k in -5.0f32..5.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        prop_assert!((norm(&scaled) - k.abs() * norm(&a)).abs() < 1e-2);
    }
}

// ---------------------------------------------------------------------------
// Blocked kernels vs pairwise kernels
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn dot_block_matches_pairwise(
        // Dims deliberately include non-multiples of 8 (tail path) and the
        // degenerate dim-1 case; pad-or-not covers both stride layouts.
        dim in 1usize..130,
        rows in 0usize..40,
        pad in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        let stride = if pad { dim.next_multiple_of(8) } else { dim };
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
        let mut block = vec![0.0f32; rows * stride];
        for r in 0..rows {
            for x in &mut block[r * stride..r * stride + dim] {
                *x = rng.next_f32_symmetric();
            }
        }
        // Make one row a zero vector when there are any rows.
        if rows > 0 {
            let z = seed as usize % rows;
            block[z * stride..z * stride + dim].fill(0.0);
        }
        let mut out = vec![f32::NAN; rows];
        dot_block(&q, &block, stride, &mut out);
        for r in 0..rows {
            let pairwise = dot_unrolled(&q, &block[r * stride..r * stride + dim]);
            // The contract is |Δ| <= 1e-5; the implementation achieves
            // bit-equality by preserving accumulation order.
            prop_assert!((out[r] - pairwise).abs() <= 1e-5, "row {r}: {} vs {pairwise}", out[r]);
            prop_assert_eq!(out[r].to_bits(), pairwise.to_bits(), "row {r} not bit-identical");
        }
    }

    #[test]
    fn threshold_block_scan_matches_pairwise_filter(
        dim in 1usize..100,
        rows in 0usize..40,
        floor in -1.0f32..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
        let qn = norm(&q);
        let mut arena = VectorArena::new(dim);
        for r in 0..rows.max(1) {
            if r == rows / 2 {
                arena.push(&vec![0.0; dim]); // zero vector row
            } else {
                arena.push(&(0..dim).map(|_| rng.next_f32_symmetric()).collect::<Vec<_>>());
            }
        }
        let view = arena.as_block();
        let mut got: Vec<(usize, f32)> = Vec::new();
        dot_block_threshold(&q, view.data, view.stride, view.rows, floor, |r, s| got.push((r, s)));
        let want: Vec<(usize, f32)> = (0..arena.len())
            .map(|r| (r, dot_unrolled(&q, arena.row(r))))
            .filter(|(_, s)| *s >= floor)
            .collect();
        prop_assert_eq!(got, want);

        // Cosine variant agrees with the pairwise cosine_with_norms kernel.
        let mut cos_got: Vec<(usize, f32)> = Vec::new();
        cosine_block_threshold(&q, qn, view.data, view.stride, view.norms, floor, |r, s| {
            cos_got.push((r, s))
        });
        let cos_want: Vec<(usize, f32)> = (0..arena.len())
            .map(|r| (r, cosine_with_norms(&q, arena.row(r), qn, arena.row_norm(r))))
            .filter(|(_, s)| *s >= floor)
            .collect();
        prop_assert_eq!(cos_got, cos_want);
    }

    #[test]
    fn scores_matrix_matches_pairwise_loop(
        dim in 1usize..80,
        m in 0usize..20,
        n in 0usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        let mut probe = VectorArena::new(dim);
        let mut build = VectorArena::new(dim);
        for _ in 0..m {
            probe.push(&(0..dim).map(|_| rng.next_f32_symmetric()).collect::<Vec<_>>());
        }
        for _ in 0..n {
            build.push(&(0..dim).map(|_| rng.next_f32_symmetric()).collect::<Vec<_>>());
        }
        let (pv, bv) = (probe.as_block(), build.as_block());
        let mut out = vec![f32::NAN; m * n];
        scores_matrix(pv.data, pv.stride, m, dim, bv.data, bv.stride, n, &mut out);
        for i in 0..m {
            for j in 0..n {
                let pairwise = dot_unrolled(probe.row(i), build.row(j));
                prop_assert!((out[i * n + j] - pairwise).abs() <= 1e-5, "({i},{j})");
                prop_assert_eq!(out[i * n + j].to_bits(), pairwise.to_bits(), "({i},{j})");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TopK vs full sort
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn topk_matches_sorted_prefix(
        scores in prop::collection::vec(0.0f32..1.0, 1..80),
        k in 1usize..20,
    ) {
        let mut tk = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            tk.push(i, s);
        }
        let got: Vec<f32> = tk.into_sorted().into_iter().map(|(_, s)| s).collect();
        let mut all = scores.clone();
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let want: Vec<f32> = all.into_iter().take(k).collect();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// Quantization bounds
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn f16_roundtrip_relative_error(x in -60_000.0f32..60_000.0) {
        let rt = f16_to_f32(f32_to_f16(x));
        if x.abs() > 1e-4 {
            let rel = ((rt - x) / x).abs();
            prop_assert!(rel < 1e-3, "x={x} rt={rt}");
        }
    }

    #[test]
    fn int8_dot_error_bounded(a in f32vec(100), b in f32vec(100)) {
        let exact = dot(&a, &b);
        let approx = QuantizedVector::to_int8(&a).dot(&b);
        // Error bound: per-element quantization error × |b|_1.
        let max_a = a.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let b_l1: f32 = b.iter().map(|x| x.abs()).sum();
        let bound = (max_a / 127.0) * b_l1 * 0.51 + 1e-3;
        prop_assert!((exact - approx).abs() <= bound, "{exact} vs {approx} (bound {bound})");
    }
}

// ---------------------------------------------------------------------------
// Quantized panel kernels vs pairwise quantized kernels and f32 panels
// ---------------------------------------------------------------------------

/// A padded arena of random rows; one row zeroed when any exist. Dims
/// include non-multiples of 8 (both kernels' tail paths).
fn quantizable_arena(dim: usize, rows: usize, seed: u64) -> VectorArena {
    let mut rng = cx_embed::rng::SplitMix64::new(seed);
    let mut arena = VectorArena::new(dim);
    for _ in 0..rows {
        arena.push(&(0..dim).map(|_| rng.next_f32_symmetric()).collect::<Vec<_>>());
    }
    if rows > 0 {
        // Rebuild with a zero row in a seed-dependent slot.
        let z = seed as usize % rows;
        let mut with_zero = VectorArena::new(dim);
        for r in 0..rows {
            if r == z {
                with_zero.push(&vec![0.0; dim]);
            } else {
                with_zero.push(arena.row(r));
            }
        }
        return with_zero;
    }
    arena
}

proptest! {
    /// The int8 panel kernel is bit-identical to the pairwise `dot_int8`
    /// ladder: integer accumulation is exact, and the scale multiply order
    /// matches.
    #[test]
    fn int8_panel_bit_identical_to_pairwise(
        dim in 1usize..130,
        rows in 0usize..40,
        seed in any::<u64>(),
    ) {
        let arena = quantizable_arena(dim, rows, seed);
        let mut rng = cx_embed::rng::SplitMix64::new(seed ^ 0xABCD);
        let qf: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
        let (qi, q_scale) = quantize_query_int8(&qf);

        // Kernel level: raw i32 accumulators equal the scalar sum exactly.
        let panel = QuantizedArena::from_arena(&arena, QuantTier::Int8).unwrap();
        let stride = panel.stride();
        let mut rows_i8 = vec![0i8; arena.len() * stride];
        let mut scales = vec![0.0f32; arena.len()];
        for r in 0..arena.len() {
            let QuantizedVector::Int8 { data, scale } = QuantizedVector::to_int8(arena.row(r))
            else { unreachable!() };
            rows_i8[r * stride..r * stride + dim].copy_from_slice(&data);
            scales[r] = scale;
        }
        let mut acc = vec![0i32; arena.len()];
        dot_block_int8(&qi, &rows_i8, stride, &mut acc);
        for r in 0..arena.len() {
            let row = &rows_i8[r * stride..r * stride + dim];
            let exact: i32 = qi.iter().zip(row).map(|(&x, &y)| x as i32 * y as i32).sum();
            prop_assert_eq!(acc[r], exact, "row {} accumulator", r);
        }

        // Arena level: scores equal pairwise dot_int8 to the bit.
        let got = panel.scores(&qf);
        for r in 0..arena.len() {
            let row = &rows_i8[r * stride..r * stride + dim];
            let want = dot_int8(&qi, q_scale, row, scales[r]);
            prop_assert_eq!(got[r].to_bits(), want.to_bits(), "row {} score", r);
        }
    }

    /// f16 and int8 panel scores stay within their documented absolute
    /// error bounds of the f32 blocked kernel. Bounds are computed from
    /// the actual values (triangle inequality over per-element
    /// quantization error), so they hold for every generated case
    /// including zero vectors and tail dims.
    #[test]
    fn quantized_panels_within_error_bounds_of_f32(
        dim in 1usize..130,
        rows in 1usize..40,
        seed in any::<u64>(),
    ) {
        let arena = quantizable_arena(dim, rows, seed);
        let mut rng = cx_embed::rng::SplitMix64::new(seed ^ 0x5EED);
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32_symmetric()).collect();
        let view = arena.as_block();
        let mut exact = vec![0.0f32; rows];
        dot_block(&q, view.data, view.stride, &mut exact);

        // f16: |x - f16(x)| <= 2^-11 |x| in the normal range (plus a tiny
        // absolute term for subnormal flushing), so
        // |Δdot| <= Σ |q_i| (2^-11 |x_i| + 6.2e-5) + f32 rounding slack.
        let f16_panel = QuantizedArena::from_arena(&arena, QuantTier::F16).unwrap();
        let got = f16_panel.scores(&q);
        for r in 0..rows {
            let row = arena.row(r);
            let bound: f32 = q
                .iter()
                .zip(row)
                .map(|(qi, xi)| qi.abs() * (xi.abs() * 4.9e-4 + 6.2e-5))
                .sum::<f32>()
                + 1e-5 * (1.0 + exact[r].abs());
            prop_assert!(
                (got[r] - exact[r]).abs() <= bound,
                "f16 row {}: {} vs {} (bound {})", r, got[r], exact[r], bound
            );
        }

        // int8: both sides quantized symmetrically. With s_a = max|a|/127,
        // |a_i - â_i| <= s_a/2, so
        // |Δdot| <= Σ (|q_i| s_x/2 + |x_i| s_q/2 + s_q s_x/4) + slack.
        let (_, s_q) = quantize_query_int8(&q);
        let int8_panel = QuantizedArena::from_arena(&arena, QuantTier::Int8).unwrap();
        let got = int8_panel.scores(&q);
        for r in 0..rows {
            let row = arena.row(r);
            let max_x = row.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            let s_x = if max_x > 0.0 { max_x / 127.0 } else { 0.0 };
            let bound: f32 = q
                .iter()
                .zip(row)
                .map(|(qi, xi)| 0.51 * (qi.abs() * s_x + xi.abs() * s_q) + s_q * s_x)
                .sum::<f32>()
                + 1e-5 * (1.0 + exact[r].abs());
            prop_assert!(
                (got[r] - exact[r]).abs() <= bound,
                "int8 row {}: {} vs {} (bound {})", r, got[r], exact[r], bound
            );
        }

        // Zero rows score exactly zero at every tier.
        let z = seed as usize % rows;
        prop_assert_eq!(f16_panel.scores(&q)[z], 0.0);
        prop_assert_eq!(int8_panel.scores(&q)[z], 0.0);
    }
}

// ---------------------------------------------------------------------------
// Index correctness: approximate ⊆ exact, no false positives
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn lsh_results_are_subset_of_brute_force(seed in any::<u64>()) {
        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        let mut arena = VectorArena::new(16);
        for _ in 0..120 {
            arena.push(&rng.unit_vector(16));
        }
        let brute = BruteForceIndex::build(&arena);
        let lsh = LshIndex::build_default(&arena);
        let q = rng.unit_vector(16);
        let exact: std::collections::HashSet<usize> =
            brute.search_threshold(&q, 0.8).iter().map(|r| r.id).collect();
        for r in lsh.search_threshold(&q, 0.8) {
            // Every LSH hit is a true hit (scores verified exactly).
            prop_assert!(exact.contains(&r.id), "false positive id {}", r.id);
            prop_assert!(r.score >= 0.8);
        }
    }
}

// ---------------------------------------------------------------------------
// SemanticJoin: pairwise vs blocked scoring identity
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn semantic_join_blocked_equals_pairwise(
        n_left in 1usize..25,
        n_right in 1usize..25,
        threshold in 0.1f32..0.9,
        parallelism in 1usize..5,
        seed in any::<u64>(),
    ) {
        use cx_embed::{EmbeddingCache, HashNGramModel};
        use cx_exec::{collect_table, PhysicalOperator, TableScanExec};
        use cx_semantic::{SemanticJoinExec, SemanticJoinStrategy};
        use cx_storage::Table;

        let mut rng = cx_embed::rng::SplitMix64::new(seed);
        // Short random words over a tiny alphabet: plenty of near-collisions
        // so thresholds actually separate pairs.
        let word = |rng: &mut cx_embed::rng::SplitMix64| {
            let len = 2 + (rng.next_range(5)) as usize;
            (0..len)
                .map(|_| char::from(b'a' + rng.next_range(6) as u8))
                .collect::<String>()
        };
        let left_vals: Vec<String> = (0..n_left).map(|_| word(&mut rng)).collect();
        let right_vals: Vec<String> = (0..n_right).map(|_| word(&mut rng)).collect();

        let scan = |vals: &[String], col: &str| -> Arc<dyn PhysicalOperator> {
            let table = Table::from_columns(
                Schema::new(vec![Field::new(col, DataType::Utf8)]),
                vec![Column::from_strings(vals.iter().map(|s| s.as_str()))],
            )
            .unwrap();
            Arc::new(TableScanExec::new(Arc::new(table)))
        };

        let run = |strategy: SemanticJoinStrategy, parallelism: usize| {
            let cache = Arc::new(EmbeddingCache::new(Arc::new(HashNGramModel::new(3))));
            let join = SemanticJoinExec::new(
                scan(&left_vals, "l"),
                scan(&right_vals, "r"),
                "l",
                "r",
                threshold,
                "sim",
                strategy,
                cache,
                parallelism,
            )
            .unwrap();
            collect_table(&join).unwrap()
        };

        let pairwise = run(SemanticJoinStrategy::PreNormalized, 1);
        let blocked = run(SemanticJoinStrategy::Blocked, parallelism);
        prop_assert_eq!(pairwise.num_rows(), blocked.num_rows());
        for i in 0..pairwise.num_rows() {
            let (a, b) = (pairwise.row(i).unwrap(), blocked.row(i).unwrap());
            prop_assert_eq!(&a[..2], &b[..2], "row {i} keys");
            match (&a[2], &b[2]) {
                (Scalar::Float64(x), Scalar::Float64(y)) => {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "row {i} score {x} vs {y}");
                }
                other => {
                    return Err(TestCaseError::fail(format!("unexpected score scalars {other:?}")));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Expression folding: eval(fold(e)) == eval(e)
// ---------------------------------------------------------------------------

fn arb_numeric_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Column("x".to_string())),
        Just(Expr::Column("y".to_string())),
        (-100i64..100).prop_map(|v| Expr::Literal(Scalar::Int64(v))),
        (-100.0f64..100.0).prop_map(|v| Expr::Literal(Scalar::Float64(v))),
        Just(Expr::Literal(Scalar::Null)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner, prop::sample::select(vec![
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,
            BinOp::Eq, BinOp::Lt, BinOp::GtEq,
        ]))
            .prop_map(|(l, r, op)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn folding_preserves_evaluation(
        e in arb_numeric_expr(),
        xs in prop::collection::vec(-50i64..50, 1..8),
    ) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("y", DataType::Float64),
        ]));
        let ys: Vec<f64> = xs.iter().map(|&v| v as f64 / 3.0).collect();
        let chunk = Chunk::new(
            schema.clone(),
            vec![Column::from_i64(xs), Column::from_f64(ys)],
        ).unwrap();

        let folded = fold_constants(&e);
        // Both versions must bind identically (or both fail).
        let b1 = e.bind(&schema);
        let b2 = folded.bind(&schema);
        match (b1, b2) {
            (Ok(b1), Ok(b2)) => {
                // Types can legitimately differ (e.g. Int64 op folded into a
                // differently-typed literal is prevented by the folder, so
                // compare row-wise as scalars via SQL equality semantics).
                let v1 = eval(&b1, &chunk).unwrap();
                let v2 = eval(&b2, &chunk).unwrap();
                prop_assert_eq!(v1.len(), v2.len());
                for i in 0..v1.len() {
                    let (a, b) = (v1.get(i), v2.get(i));
                    let equal = match (a.is_null(), b.is_null()) {
                        (true, true) => true,
                        (false, false) => match (a.as_f64(), b.as_f64()) {
                            (Some(x), Some(y)) => {
                                (x - y).abs() <= 1e-9 * (1.0 + x.abs()) || (x.is_nan() && y.is_nan())
                            }
                            _ => a == b,
                        },
                        _ => false,
                    };
                    prop_assert!(equal, "row {i}: {a:?} vs {b:?} for {e} -> {folded}");
                }
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(err)) => {
                return Err(TestCaseError::fail(format!("fold broke binding: {err} for {e} -> {folded}")));
            }
            (Err(_), Ok(_)) => {
                // Folding can only make MORE expressions bindable (e.g.
                // NULL arithmetic folded away) — that is acceptable.
            }
        }
    }
}

//! Integration tests for semantic-match quality: Table I reproduction and
//! Figure 3 consolidation, validated against ground truth.

use cx_datagen::{generate_dirty, table1_clusters, DirtyConfig};
use cx_embed::{ClusteredTextModel, EmbeddingCache, EmbeddingModel};
use cx_semantic::{consolidate, pairwise_metrics};
use cx_vector::{BruteForceIndex, VectorArena, VectorIndex};
use std::sync::Arc;

fn table1_model() -> (ClusteredTextModel, Vec<String>) {
    let specs = table1_clusters();
    let words = cx_datagen::vocab::all_words(&specs);
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    (ClusteredTextModel::new("t1", space, 7), words)
}

/// Table I: for each category word, the nearest vocabulary words must be
/// exactly the category's cluster members (paper's "semantic matches").
#[test]
fn table1_semantic_matches_have_full_precision() {
    let (model, words) = table1_model();
    let space = model.space();
    let mut arena = VectorArena::new(model.dim());
    for w in &words {
        arena.push(&model.embed(w));
    }
    let index = BruteForceIndex::build(&arena);

    for category in ["dog", "cat", "shoes", "jacket"] {
        let query = model.embed(category);
        let expected: Vec<&String> = words
            .iter()
            .filter(|w| w.as_str() != category && space.in_cluster_tree(w, category))
            .collect();
        let k = expected.len();
        // +1 for the category word itself (always rank 0).
        let got = index.search_topk(&query, k + 1);
        assert_eq!(words[got[0].id], category, "self-match first for {category}");
        let got_words: Vec<&String> = got[1..].iter().map(|r| &words[r.id]).collect();
        for w in &got_words {
            assert!(
                space.in_cluster_tree(w, category),
                "{category}: unexpected match {w} (got {got_words:?})"
            );
        }
    }
}

/// The hierarchical rows of Table I: "animal" matches members of dog AND
/// cat clusters; "clothes" matches members of shoes AND jacket.
#[test]
fn table1_parent_categories_span_children() {
    let (model, words) = table1_model();
    let space = model.space();
    let mut arena = VectorArena::new(model.dim());
    for w in &words {
        arena.push(&model.embed(w));
    }
    let index = BruteForceIndex::build(&arena);

    for (parent, children) in [("animal", ["dog", "cat"]), ("clothes", ["shoes", "jacket"])] {
        let got = index.search_topk(&model.embed(parent), 5);
        let got_words: Vec<&String> = got[1..].iter().map(|r| &words[r.id]).collect();
        // Every near neighbour belongs to the parent's tree.
        for w in &got_words {
            assert!(
                space.in_cluster_tree(w, parent),
                "{parent}: match {w} outside tree"
            );
        }
        // Both child clusters are represented among the top matches (the
        // paper's "animal: cat, dog, golden retriever, feline" pattern).
        for child in children {
            assert!(
                got_words
                    .iter()
                    .any(|w| space.in_cluster_tree(w, child)),
                "{parent}: no match from child {child} in {got_words:?}"
            );
        }
    }
}

/// Figure 3: dirty duplicates (synonyms, case variants, typos) consolidate
/// onto their concepts with high pairwise quality.
#[test]
fn consolidation_recovers_entities_from_dirty_data() {
    let specs = table1_clusters();
    let dirty = generate_dirty(
        &specs,
        DirtyConfig { size: 2_000, typo_rate: 0.2, case_rate: 0.2, seed: 3 },
    );
    // Build the misspelling-oblivious space from the augmented specs.
    let space = Arc::new(cx_datagen::build_space(&dirty.augmented_specs, 100, 42));
    let model = ClusteredTextModel::new("m", space, 7);
    let cache = Arc::new(EmbeddingCache::new(Arc::new(model)));

    let values: Vec<&str> = dirty.records.iter().map(|(v, _)| v.as_str()).collect();
    let truth: Vec<&str> = dirty.records.iter().map(|(_, t)| t.as_str()).collect();
    let result = consolidate(&values, &cache, 0.82);
    let metrics = pairwise_metrics(&result.assignments, &truth);
    // Hierarchy words ("animal", "clothes") sit between their child
    // clusters and occasionally merge with a child, capping pairwise F1
    // slightly below the flat-cluster ideal.
    assert!(metrics.f1 > 0.85, "f1 {}", metrics.f1);
    assert!(metrics.recall > 0.9, "recall {}", metrics.recall);
    // Dedup is substantial: thousands of records, a handful of concepts.
    assert!(result.dedup_ratio() > 50.0, "ratio {}", result.dedup_ratio());
}

/// Embedding cache makes consolidation inference cost proportional to
/// distinct values, not records.
#[test]
fn consolidation_inference_bounded_by_distinct_values() {
    let specs = table1_clusters();
    let dirty = generate_dirty(
        &specs,
        DirtyConfig { size: 5_000, typo_rate: 0.2, case_rate: 0.2, seed: 5 },
    );
    let space = Arc::new(cx_datagen::build_space(&dirty.augmented_specs, 64, 42));
    let cache = Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new("m", space, 7))));
    let values: Vec<&str> = dirty.records.iter().map(|(v, _)| v.as_str()).collect();
    let distinct: std::collections::HashSet<&str> = values.iter().copied().collect();
    consolidate(&values, &cache, 0.82);
    assert_eq!(cache.model().stats().invocations() as usize, distinct.len());
}

//! Property-based test: the optimizer never changes query *results*.
//!
//! Random small relations and random query shapes are executed under the
//! fully-enabled optimizer and with everything disabled; the multisets of
//! output rows must be identical. This is the plan-equivalence invariant
//! every rewrite rule promises.

use context_analytics::engine::{Engine, EngineConfig};
use context_analytics::expr::{col, lit, Expr};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::JoinType;
use cx_optimizer::OptimizerConfig;
use cx_storage::{Column, DataType, Field, Scalar, Schema, Table};
use proptest::prelude::*;
use std::sync::Arc;

const WORDS: &[&str] = &[
    "dog", "canine", "puppy", "cat", "feline", "boots", "sneakers", "parka", "coat", "mug",
];

fn engine_for(items: &[(i64, usize, f64)], labels: &[(usize, i64)]) -> Engine {
    let engine = Engine::new(EngineConfig::default());
    let specs = vec![
        cx_embed::ClusterSpec::new("dog", &["canine", "puppy"]),
        cx_embed::ClusterSpec::new("cat", &["feline"]),
        cx_embed::ClusterSpec::new("shoes", &["boots", "sneakers"]),
        cx_embed::ClusterSpec::new("jacket", &["parka", "coat"]),
        cx_embed::ClusterSpec::new("mug", &[]),
    ];
    let space = Arc::new(cx_datagen::build_space(&specs, 32, 9));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 3)));

    let items_table = Table::from_columns(
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64(items.iter().map(|(id, _, _)| *id).collect()),
            Column::from_strings(items.iter().map(|(_, w, _)| WORDS[*w].to_string()).collect::<Vec<_>>()),
            Column::from_f64(items.iter().map(|(_, _, p)| *p).collect()),
        ],
    )
    .unwrap();
    engine.register_table("items", items_table).unwrap();

    let labels_table = Table::from_columns(
        Schema::new(vec![
            Field::new("label", DataType::Utf8),
            Field::new("weight", DataType::Int64),
        ]),
        vec![
            Column::from_strings(labels.iter().map(|(w, _)| WORDS[*w].to_string()).collect::<Vec<_>>()),
            Column::from_i64(labels.iter().map(|(_, v)| *v).collect()),
        ],
    )
    .unwrap();
    engine.register_table("labels", labels_table).unwrap();
    engine
}

/// A small predicate grammar over the items table.
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.0..100.0f64).prop_map(|v| col("price").gt(lit(v))),
        (0.0..100.0f64).prop_map(|v| col("price").lt_eq(lit(v))),
        (0..10usize).prop_map(|w| col("name").eq(lit(WORDS[w]))),
        (0..20i64).prop_map(|v| col("id").not_eq(lit(v))),
        Just(col("name").is_null().not()),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Sorted row fingerprints (order-insensitive result comparison).
fn fingerprint(table: &Table) -> Vec<String> {
    let mut rows: Vec<String> = (0..table.num_rows())
        .map(|i| {
            table
                .row(i)
                .unwrap()
                .iter()
                .map(|s| match s {
                    // Scores may differ in the last ulp between kernels;
                    // round for comparison.
                    Scalar::Float64(f) => format!("{:.4}", f),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn optimizer_preserves_filter_join_results(
        items in prop::collection::vec((0..50i64, 0..10usize, 0.0..100.0f64), 1..40),
        labels in prop::collection::vec((0..10usize, 0..100i64), 1..20),
        predicate in predicate_strategy(),
        join_weight in 0..100i64,
    ) {
        let mut engine = engine_for(&items, &labels);
        let build = |engine: &Engine| {
            let labels_q = engine.table("labels").unwrap()
                .filter(col("weight").gt_eq(lit(join_weight)));
            engine.table("items").unwrap()
                .join(labels_q, &[("name", "label")], JoinType::Inner)
                .filter(predicate.clone())
        };
        let optimized = engine.execute(&build(&engine)).unwrap();
        engine.set_optimizer_config(OptimizerConfig::none());
        let naive = engine.execute(&build(&engine)).unwrap();
        prop_assert_eq!(fingerprint(&optimized.table), fingerprint(&naive.table));
    }

    #[test]
    fn optimizer_preserves_semantic_results(
        items in prop::collection::vec((0..50i64, 0..10usize, 0.0..100.0f64), 1..30),
        labels in prop::collection::vec((0..10usize, 0..100i64), 1..15),
        price_cut in 0.0..100.0f64,
        threshold in 0.75..0.95f32,
    ) {
        let mut engine = engine_for(&items, &labels);
        let build = |engine: &Engine| {
            engine.table("items").unwrap()
                .semantic_join(engine.table("labels").unwrap(), "name", "label", "m", threshold)
                .filter(col("price").gt(lit(price_cut)))
        };
        let optimized = engine.execute(&build(&engine)).unwrap();
        engine.set_optimizer_config(OptimizerConfig::none());
        let naive = engine.execute(&build(&engine)).unwrap();
        prop_assert_eq!(fingerprint(&optimized.table), fingerprint(&naive.table));
    }

    #[test]
    fn optimizer_preserves_semantic_filter_cascades(
        items in prop::collection::vec((0..50i64, 0..10usize, 0.0..100.0f64), 1..30),
        target in 0..10usize,
        threshold in 0.7..0.99f32,
        predicate in predicate_strategy(),
    ) {
        let mut engine = engine_for(&items, &[(0, 1)]);
        let build = |engine: &Engine| {
            engine.table("items").unwrap()
                .semantic_filter("name", WORDS[target], "m", threshold)
                .filter(predicate.clone())
                .select(vec![(col("id"), "id"), (col("name"), "name")])
        };
        let optimized = engine.execute(&build(&engine)).unwrap();
        engine.set_optimizer_config(OptimizerConfig::none());
        let naive = engine.execute(&build(&engine)).unwrap();
        prop_assert_eq!(fingerprint(&optimized.table), fingerprint(&naive.table));
    }
}

//! Quickstart: register data and a model, mix relational and semantic
//! operators in one declarative query, and read the EXPLAIN output.
//!
//! Run with: `cargo run --release --example quickstart`

use context_analytics::engine::{Engine, EngineConfig};
use context_analytics::expr::{col, lit};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::{AggFunc, AggSpec};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::Arc;

fn main() -> cx_storage::Result<()> {
    // 1. An engine with full optimization.
    let engine = Engine::new(EngineConfig::default());

    // 2. A representation model. `table1_clusters` is the paper's Table I
    //    vocabulary (dog/cat/animal, shoes/jacket/clothes); the space
    //    built from it stands in for fastText-on-Wikipedia with verifiable
    //    semantics.
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));

    // 3. A products table. Note the names: synonyms, not category words.
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64(vec![1, 2, 3, 4, 5, 6]),
            Column::from_strings(["boots", "parka", "kitten", "sneakers", "windbreaker", "puppy"]),
            Column::from_f64(vec![89.5, 120.0, 40.0, 65.0, 30.0, 150.0]),
        ],
    )?;
    engine.register_table("products", products)?;

    // 4. Declarative query: "clothing items above 50, by semantic
    //    category". No product is literally named "clothes" — the semantic
    //    filter matches by latent-space similarity.
    let query = engine
        .table("products")?
        .filter(col("price").gt(lit(50.0)))
        .semantic_filter("name", "clothes", "fasttext-like", 0.75)
        .semantic_group_by(
            "name",
            "fasttext-like",
            0.85,
            vec![
                AggSpec::count_star("items"),
                AggSpec::new(AggFunc::Avg, "price", "avg_price"),
            ],
        );

    println!("{}", engine.explain(&query)?);

    let result = engine.execute(&query)?;
    println!("result ({} clusters):\n{}", result.table.num_rows(), result.table);
    println!("rules fired: {:?}", result.rules_fired);
    println!("elapsed: {:?}", result.elapsed);
    Ok(())
}

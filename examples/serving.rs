//! Serving: many concurrent clients over one shared engine.
//!
//! `cx_serve` turns the one-shot engine into a query server: a shared
//! `Arc<Engine>` behind a [`Server`] with a plan cache (repeated queries
//! skip optimization and planning, exact replays skip execution), a
//! cross-query embedding batcher (concurrent semantic queries share one
//! model pass over overlapping working sets), and cost-based admission
//! control.
//!
//! Run with: `cargo run --release --example serving`

use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use cx_exec::logical::{AggFunc, AggSpec};
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};

fn main() -> cx_storage::Result<()> {
    // 1. An engine, set up exactly as in the quickstart…
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64(vec![1, 2, 3, 4, 5, 6]),
            Column::from_strings(["boots", "parka", "kitten", "sneakers", "windbreaker", "puppy"]),
            Column::from_f64(vec![89.5, 120.0, 40.0, 65.0, 30.0, 150.0]),
        ],
    )?;
    engine.register_table("products", products)?;

    // 2. …wrapped in a server. The engine stays fully usable underneath;
    //    the server adds the shared plan cache, embed batcher, and
    //    admission gate.
    let server = Server::new(engine, ServeConfig::default());

    // 3. Four concurrent clients, each with its own session, each running
    //    a small query mix — note the overlap between clients: that is
    //    what the plan cache and the embedding batcher exploit.
    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let session = server.session();
                let mix = [
                    server
                        .table("products")
                        .expect("products registered")
                        .filter(col("price").gt(lit(50.0)))
                        .semantic_filter("name", "clothes", "fasttext-like", 0.75),
                    server
                        .table("products")
                        .expect("products registered")
                        .semantic_group_by(
                            "name",
                            "fasttext-like",
                            0.85,
                            vec![
                                AggSpec::count_star("items"),
                                AggSpec::new(AggFunc::Avg, "price", "avg_price"),
                            ],
                        ),
                ];
                barrier.wait();
                for (i, query) in mix.iter().enumerate() {
                    let result = session.execute(query).expect("serve query");
                    println!(
                        "client {c} query {i}: {} rows in {:?} (plan cache {}, result memo {})",
                        result.table.num_rows(),
                        result.elapsed,
                        if result.plan_cache_hit { "hit" } else { "miss" },
                        if result.result_cache_hit { "hit" } else { "miss" },
                    );
                }
            });
        }
    });

    // 4. The server-level report: plan cache, result memo, per-model
    //    batcher coalescing, admission, per-operator execution metrics.
    println!("\n{}", server.report());
    Ok(())
}

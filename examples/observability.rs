//! Observability: query traces, latency histograms, metrics export.
//!
//! With `ServeConfig::tracing` on, every query records a span tree —
//! plan-cache lookup, embedding warm-up, admission wait, MQO linger and
//! shared sweep, epilogue, execution — into a bounded trace ring, and
//! anything slower than `slow_query_threshold` is rendered
//! EXPLAIN-ANALYZE-style into the slow-query log. Latency histograms
//! (end-to-end, queue wait, sweep time, per-operator) are always on, and
//! `Server::prometheus()` exports every counter the server owns.
//!
//! Run with: `cargo run --release --example observability`

use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() -> cx_storage::Result<()> {
    // 1. The serving quickstart engine…
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));
    let names = ["boots", "parka", "kitten", "sneakers", "windbreaker", "puppy", "oxfords", "coat"];
    let products = cx_storage::Table::from_columns(
        cx_storage::Schema::new(vec![
            cx_storage::Field::new("product_id", cx_storage::DataType::Int64),
            cx_storage::Field::new("name", cx_storage::DataType::Utf8),
            cx_storage::Field::new("price", cx_storage::DataType::Float64),
        ]),
        vec![
            cx_storage::Column::from_i64((0..names.len() as i64).collect()),
            cx_storage::Column::from_strings(names),
            cx_storage::Column::from_f64((0..names.len()).map(|i| 30.0 + 20.0 * i as f64).collect()),
        ],
    )?;
    engine.register_table("products", products)?;

    // 2. …served with tracing on. `slow_query_threshold: 0` logs every
    //    query; production would set something like 250ms.
    let server = Server::new(
        engine,
        ServeConfig {
            tracing: true,
            slow_query_threshold: Some(Duration::ZERO),
            scan_linger: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    );

    // 3. A small concurrent storm so the MQO path (linger, shared sweep,
    //    epilogues) shows up in the traces.
    let targets = ["boots", "parka", "kitten", "sneakers"];
    let barrier = Arc::new(Barrier::new(targets.len()));
    std::thread::scope(|s| {
        for target in targets {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let session = server.session();
                let q = server
                    .table("products")
                    .expect("products registered")
                    .filter(col("price").lt(lit(160.0)))
                    .semantic_filter("name", target, "fasttext-like", 0.75)
                    .sort(&[("product_id", true)]);
                barrier.wait();
                session.execute(&q).expect("serve query");
            });
        }
    });

    // 4. The last trace, rendered EXPLAIN-ANALYZE-style. Every query in
    //    the ring carries the same span tree; shared work (the group's
    //    one panel sweep) is attributed to every member with [shared].
    if let Some(trace) = server.last_trace() {
        println!("== last query trace ==\n{}", trace.render());
    }
    println!("slow-query log holds {} entries", server.slow_queries().len());

    // 5. Always-on histograms: end-to-end latency quantiles, no tracing
    //    required.
    let lat = server.latency_histogram().snapshot();
    println!(
        "latency: {} queries, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
        lat.count,
        lat.p50 as f64 / 1e6,
        lat.p95 as f64 / 1e6,
        lat.p99 as f64 / 1e6,
        lat.max as f64 / 1e6,
    );

    // 6. The metrics surface: Prometheus text (validated by the in-tree
    //    parser) — `Server::metrics_json()` is the same snapshot as JSON.
    let prom = server.prometheus();
    cx_obs::promparse::parse(&prom).expect("exposition format is valid");
    let preview: Vec<&str> = prom.lines().take(12).collect();
    println!("== prometheus snapshot (first lines) ==\n{}", preview.join("\n"));
    Ok(())
}

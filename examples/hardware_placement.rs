//! Figure 5: placing a context-rich pipeline onto increasingly
//! heterogeneous (simulated) hardware — CPU-only, +GPU, +TPU, and with a
//! fast interconnect — and comparing estimated vs simulated times.
//!
//! Run with: `cargo run --release --example hardware_placement`

use context_analytics::engine::hardware_bridge::plan_on_topology;
use cx_embed::ModelRegistry;
use cx_exec::logical::{LogicalPlan, SemanticJoinSpec};
use cx_expr::{col, lit};
use cx_hardware::Topology;
use cx_optimizer::{Optimizer, OptimizerConfig, OptimizerContext};
use cx_storage::{DataType, Field, Schema};
use std::sync::Arc;

fn figure2_shaped_plan() -> LogicalPlan {
    let products = LogicalPlan::Scan {
        source: "products".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ])),
    };
    let kb = LogicalPlan::Scan {
        source: "kb".into(),
        schema: Arc::new(Schema::new(vec![
            Field::new("label", DataType::Utf8),
            Field::new("category", DataType::Utf8),
        ])),
    };
    LogicalPlan::Filter {
        predicate: col("price").gt(lit(20.0)).and(col("category").eq(lit("clothes"))),
        input: Box::new(LogicalPlan::SemanticJoin {
            left: Box::new(products),
            right: Box::new(kb),
            spec: SemanticJoinSpec {
                left_column: "name".into(),
                right_column: "label".into(),
                model: "m".into(),
                threshold: 0.9,
                score_column: "sim".into(),
            },
        }),
    }
}

fn main() {
    let ctx = OptimizerContext::new(Arc::new(ModelRegistry::new()), OptimizerConfig::all());
    let optimizer = Optimizer::new(&ctx);
    let (plan, _) = optimizer.optimize(&figure2_shaped_plan(), &ctx);

    println!("== FIGURE 5 — hardware-conscious placement (simulated) ==\n");
    println!("pipeline (optimized plan):\n{}", plan.display_indent());

    let topologies = [
        ("2x CPU socket            ", Topology::cpu_only()),
        ("+ GPU (PCIe)             ", Topology::cpu_gpu()),
        ("+ GPU + TPU (PCIe)       ", Topology::cpu_gpu_tpu()),
        ("+ GPU + TPU (fast links) ", Topology::cpu_gpu_tpu_fast()),
    ];

    println!(
        "{:<26} | {:>12} | {:>12} | {:>9} | placement",
        "topology", "estimate ms", "simulated ms", "vs single"
    );
    println!("{}", "-".repeat(100));
    for (name, topology) in topologies {
        let report = plan_on_topology(&plan, &ctx, &topology, 7).expect("placeable");
        let devices: Vec<String> = report
            .placement
            .assignments
            .iter()
            .map(|&d| topology.device(d).name.clone())
            .collect();
        println!(
            "{:<26} | {:>12.3} | {:>12.3} | {:>8.2}x | {}",
            name,
            report.placement.total_ns / 1e6,
            report.simulated.total_ns / 1e6,
            report.speedup_vs_single().unwrap_or(1.0),
            devices.join(" -> ")
        );
    }

    println!("\nNote: device envelopes are calibrated simulation constants");
    println!("(see cx-hardware); the decision problem, not absolute times,");
    println!("is the reproduction target for the paper's Section VI.");
}

//! Multi-query scan sharing in action: a same-table query storm where
//! every client asks a *different* question — distinct filter targets,
//! distinct join thresholds — so the plan cache and result memo never
//! fire, yet one shared panel sweep answers each round of queries.
//!
//! Run with: `cargo run --release --example mqo_storm`

use context_analytics::expr::{col, lit};
use context_analytics::{Engine, EngineConfig, ServeConfig, Server};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() {
    // An engine with a product table and a label taxonomy.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 128, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));

    let names = [
        "boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker",
        "blazer", "canine", "feline", "lace-ups",
    ];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 12.0 + 6.0 * i as f64).collect()),
        ],
    )
    .unwrap();
    engine.register_table("products", products).unwrap();

    let mut kb = cx_kb::KnowledgeBase::new();
    for item in ["boots", "sneakers", "oxfords", "lace-ups"] {
        kb.assert_is_a(item, "shoes");
    }
    for item in ["parka", "coat", "windbreaker", "blazer"] {
        kb.assert_is_a(item, "jacket");
    }
    kb.assert_is_a("shoes", "clothes");
    kb.assert_is_a("jacket", "clothes");
    engine.register_kb("kb", kb).unwrap();

    // A sharing server: queries that sweep the same panel linger briefly
    // and merge into one shared sweep.
    let server = Server::new(
        engine,
        ServeConfig {
            scan_linger: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );

    // Four clients, each with its own question over the same table: the
    // semantic filters probe different targets, the joins use different
    // thresholds. No fingerprint repeats — only the panel is shared.
    let clients = 4;
    let targets = ["shoes", "jacket", "clothes", "cat"];
    let barrier = Arc::new(Barrier::new(clients));
    std::thread::scope(|s| {
        for (i, target) in targets.iter().enumerate().take(clients) {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let session = server.session();
                let filter = session
                    .table("products")
                    .unwrap()
                    .semantic_filter("name", target, "m", 0.8)
                    .sort(&[("product_id", true)]);
                let join = session
                    .table("products")
                    .unwrap()
                    .semantic_join(
                        session
                            .table("kb")
                            .unwrap()
                            .filter(col("category").eq(lit("clothes"))),
                        "name",
                        "label",
                        "m",
                        0.88 + 0.01 * i as f32,
                    )
                    .sort(&[("product_id", true), ("label", true)]);
                barrier.wait();
                let f = session.execute(&filter).unwrap();
                let j = session.execute(&join).unwrap();
                println!(
                    "client {i}: '{target}' filter → {} rows ({}), join@{:.2} → {} rows ({})",
                    f.table.num_rows(),
                    if f.shared_scan { "shared sweep" } else { "solo sweep" },
                    0.88 + 0.01 * i as f32,
                    j.table.num_rows(),
                    if j.shared_scan { "shared sweep" } else { "solo sweep" },
                );
            });
        }
    });

    let stats = server.scan_sharing_stats();
    println!(
        "\nscan sharing: {} of {} queries coalesced into {} shared groups (max group {})",
        stats.shared_queries, stats.grouped_queries, stats.shared_groups, stats.max_group,
    );
    println!(
        "saved {} candidate-panel row materializations and {} deduplicated pairs",
        stats.panel_rows_saved, stats.pairs_saved,
    );
    println!("\n{}", server.report());
}

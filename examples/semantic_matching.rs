//! Reproduces the paper's Table I: context-rich labels a representation
//! model matches per category — with measurable precision, since our
//! semantic space has ground truth.
//!
//! Run with: `cargo run --release --example semantic_matching`

use cx_embed::EmbeddingModel;
use cx_embed::ClusteredTextModel;
use cx_vector::{BruteForceIndex, VectorArena, VectorIndex};
use std::sync::Arc;

fn main() {
    let specs = cx_datagen::table1_clusters();
    let words = cx_datagen::vocab::all_words(&specs);
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    let model = ClusteredTextModel::new("table1-model", space.clone(), 7);

    // The arena is the index builders' native input: padded rows the
    // blocked kernels scan directly.
    let mut arena = VectorArena::with_capacity(model.dim(), words.len());
    for w in &words {
        arena.push(&model.embed(w));
    }
    let index = BruteForceIndex::build(&arena);

    println!("TABLE I — context-rich text labels the model matches\n");
    println!("{:<10} | {:<55} | precision", "category", "semantic matches (top-4)");
    println!("{}", "-".repeat(85));

    for category in ["dog", "cat", "animal", "shoes", "jacket", "clothes"] {
        let query = model.embed(category);
        // Top-4 excluding the category word itself.
        let results = index.search_topk(&query, 5);
        let matches: Vec<(String, f32)> = results
            .iter()
            .filter(|r| words[r.id] != category)
            .take(4)
            .map(|r| (words[r.id].clone(), r.score))
            .collect();
        let correct = matches
            .iter()
            .filter(|(w, _)| space.in_cluster_tree(w, category))
            .count();
        let rendered: Vec<String> = matches
            .iter()
            .map(|(w, s)| format!("{w} ({s:.2})"))
            .collect();
        println!(
            "{:<10} | {:<55} | {}/{}",
            category,
            rendered.join(", "),
            correct,
            matches.len()
        );
    }

    println!("\n(Compare with the paper's Table I: dog → canine, golden retriever,");
    println!("puppy; clothes → boots, parka, windbreaker, coat; etc.)");
}

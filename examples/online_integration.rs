//! Figure 3: automated, on-the-fly result consolidation. Dirty values
//! (synonyms, case variants, typos) stream in; the semantic group-by
//! consolidates them into concept clusters without any cleaning rules.
//!
//! Run with: `cargo run --release --example online_integration`

use cx_datagen::{generate_dirty, table1_clusters, DirtyConfig};
use cx_embed::{ClusteredTextModel, EmbeddingCache};
use cx_semantic::{consolidate, pairwise_metrics};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let specs = table1_clusters();
    let dirty = generate_dirty(
        &specs,
        DirtyConfig { size: 50_000, typo_rate: 0.2, case_rate: 0.2, seed: 3 },
    );
    // The space is built from typo-augmented specs: this models the
    // misspelling-oblivious embeddings the paper cites ([17]).
    let space = Arc::new(cx_datagen::build_space(&dirty.augmented_specs, 100, 42));
    let cache = Arc::new(EmbeddingCache::new(Arc::new(ClusteredTextModel::new(
        "consolidation-model",
        space,
        7,
    ))));

    let values: Vec<&str> = dirty.records.iter().map(|(v, _)| v.as_str()).collect();
    let truth: Vec<&str> = dirty.records.iter().map(|(_, t)| t.as_str()).collect();

    println!("consolidating {} dirty records...", values.len());
    let t = Instant::now();
    let result = consolidate(&values, &cache, 0.82);
    let elapsed = t.elapsed();

    let metrics = pairwise_metrics(&result.assignments, &truth);
    println!("\n== FIGURE 3 — on-the-fly result consolidation ==");
    println!("records in:        {}", values.len());
    println!("clusters out:      {}", result.num_clusters());
    println!("dedup ratio:       {:.1}x", result.dedup_ratio());
    println!("pairwise precision {:.3}", metrics.precision);
    println!("pairwise recall    {:.3}", metrics.recall);
    println!("pairwise F1        {:.3}", metrics.f1);
    println!(
        "throughput:        {:.0} records/s",
        values.len() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "model inferences:  {} (distinct values only, {} cache hits)",
        cache.model().stats().invocations(),
        cache.hits()
    );

    println!("\nlargest clusters:");
    let mut sizes: Vec<(usize, usize)> = result
        .members
        .iter()
        .enumerate()
        .map(|(id, m)| (id, m.len()))
        .collect();
    sizes.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (id, n) in sizes.iter().take(8) {
        println!("  '{}' <- {} records", result.representatives[*id], n);
    }
}

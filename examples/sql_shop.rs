//! SQL front-end tour: the shop, in text.
//!
//! Everything the builder API can express — semantic filters, semantic
//! joins, semantic group-by, prepared statements — has SQL surface
//! syntax, served through [`Session::sql`]. Ad-hoc statements are
//! **auto-parameterized**: literals are lifted into parameter slots, so
//! statements that differ only in literals collapse into one cached
//! plan shape and run at prepared-statement speed.
//!
//! Run with: `cargo run --release --example sql_shop`
//!
//! [`Session::sql`]: context_analytics::Session::sql

use context_analytics::{Engine, EngineConfig, ServeConfig, Server, SqlResponse};
use cx_embed::ClusteredTextModel;
use cx_storage::{Column, DataType, Field, Schema, Table};
use std::sync::Arc;

fn main() -> cx_storage::Result<()> {
    // 1. The shop engine: a products table and a small labels table,
    //    plus one representation model for the semantic operators.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 64, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("m", space, 7)));
    let names =
        ["boots", "parka", "kitten", "sneakers", "coat", "puppy", "oxfords", "windbreaker"];
    let products = Table::from_columns(
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]),
        vec![
            Column::from_i64((0..names.len() as i64).collect()),
            Column::from_strings(names),
            Column::from_f64((0..names.len()).map(|i| 25.0 + 15.0 * i as f64).collect()),
        ],
    )?;
    engine.register_table("products", products)?;
    let labels = Table::from_columns(
        Schema::new(vec![
            Field::new("label_id", DataType::Int64),
            Field::new("label", DataType::Utf8),
        ]),
        vec![
            Column::from_i64(vec![0, 1, 2]),
            Column::from_strings(["shoes", "jacket", "pets"]),
        ],
    )?;
    engine.register_table("labels", labels)?;

    let server = Server::new(engine, ServeConfig::default());
    let session = server.session();
    let rows = |response: SqlResponse| match response {
        SqlResponse::Rows(r) => r,
        other => panic!("expected rows, got {other:?}"),
    };

    // 2. Plain SQL, served through the same plan cache / admission
    //    machinery as builder queries.
    println!("== relational ==");
    let r = rows(session.sql(
        "SELECT name, price FROM products WHERE price > 60.0 ORDER BY price DESC LIMIT 3",
    )?);
    println!("{}", r.table);

    // 3. The semantic extensions: SEMANTIC LIKE (model-assisted filter),
    //    SEMANTIC JOIN (similarity join), GROUP BY SEMANTIC (clustered
    //    aggregation).
    println!("== SEMANTIC LIKE 'clothes' (threshold 0.75) ==");
    let r = rows(session.sql(
        "SELECT name, price FROM products \
         WHERE name SEMANTIC LIKE 'clothes' USING m (0.75) ORDER BY product_id",
    )?);
    println!("{}", r.table);

    println!("== SEMANTIC JOIN products x labels ==");
    let r = rows(session.sql(
        "SELECT name, label, similarity FROM products \
         SEMANTIC JOIN labels ON SIM(name, label) >= 0.8 ORDER BY name, label",
    )?);
    println!("{}", r.table);

    println!("== GROUP BY SEMANTIC name ==");
    let r = rows(session.sql(
        "SELECT name, COUNT(*), AVG(price) AS mean_price FROM products \
         GROUP BY SEMANTIC name USING m (0.4) ORDER BY name",
    )?);
    println!("{}", r.table);

    // 4. Auto-parameterization at work: five statements, one shape.
    //    Only the first optimizes; the rest bind their literal into the
    //    cached plan.
    for price in [40.0, 55.0, 70.0, 85.0, 100.0] {
        let r = rows(session.sql(&format!(
            "SELECT name FROM products WHERE price > {price:?} ORDER BY name"
        ))?);
        println!(
            "price > {price:>5}: {} rows (plan cache hit: {})",
            r.table.num_rows(),
            r.plan_cache_hit
        );
    }
    let stats = server.sql_stats();
    println!(
        "\nauto-parameterized {} of {} statements, shape hit rate {:.0}%",
        stats.auto_param,
        stats.statements,
        100.0 * stats.shape_hit_rate()
    );

    // 5. Explicit PREPARE / EXECUTE — the same machinery, named.
    session.sql("PREPARE probe AS SELECT name FROM products WHERE name SEMANTIC LIKE $0 USING m (0.7)")?;
    for probe in ["shoes", "jacket", "pets"] {
        let r = rows(session.sql(&format!("EXECUTE probe ('{probe}')"))?);
        println!("probe {probe:<7}: {} rows", r.table.num_rows());
    }

    // 6. EXPLAIN shows the optimized plan the cache stores.
    println!("\n== EXPLAIN ==");
    match session.sql(
        "EXPLAIN SELECT name FROM products WHERE name SEMANTIC LIKE 'shoes' USING m (0.7)",
    )? {
        SqlResponse::Explain(text) => println!("{text}"),
        other => panic!("expected explain, got {other:?}"),
    }

    println!("{}", server.report());
    Ok(())
}

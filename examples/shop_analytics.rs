//! The paper's motivating example (Section II / Figure 2): one declarative
//! query over three sources — RDBMS products, a knowledge base, and a
//! product-image store with object detection — glued by semantic joins.
//!
//! Run with: `cargo run --release --example shop_analytics`

use context_analytics::engine::{Engine, EngineConfig, Query};
use context_analytics::expr::{col, lit};
use cx_datagen::{ShopConfig, ShopDataset};
use cx_embed::ClusteredTextModel;
use cx_optimizer::OptimizerConfig;
use cx_storage::Scalar;
use cx_vision::{DetectorNoise, ObjectDetector, MICROS_PER_DAY};
use std::sync::Arc;
use std::time::Instant;

const AFTER_DAY: i64 = 19_050;

fn build_engine(data: &ShopDataset) -> Engine {
    let engine = Engine::new(EngineConfig::default());
    let space = Arc::new(cx_datagen::build_space(&data.clusters, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("shop-model", space, 7)));
    engine.register_table("products", data.products.clone()).unwrap();
    engine.register_table("transactions", data.transactions.clone()).unwrap();
    engine.register_kb("kb", data.kb.clone()).unwrap();
    let detector = ObjectDetector::with_noise(
        "detector",
        5,
        DetectorNoise { miss_rate: 0.02, spurious_rate: 0.05 },
    );
    engine.register_images("images", data.images.clone(), &detector).unwrap();
    engine
}

/// "Which clothing products with price > 20 appear in customer images taken
/// after a date, where the image contains more than two objects?"
fn figure2_query(engine: &Engine) -> Query {
    let kb = engine
        .table("kb")
        .unwrap()
        .filter(col("category").eq(lit("clothes")));
    let detections = engine.table("images.detections").unwrap().filter(
        col("date_taken")
            .gt(lit(Scalar::Timestamp(AFTER_DAY * MICROS_PER_DAY)))
            .and(col("object_count").gt(lit(2i64))),
    );
    engine
        .table("products")
        .unwrap()
        .filter(col("price").gt(lit(20.0)))
        .semantic_join_scored(kb, "name", "label", "shop-model", 0.9, "kb_sim")
        .semantic_join_scored(detections, "name", "label", "shop-model", 0.8, "img_sim")
        .select_columns(&["product_id", "name", "price"])
        .distinct()
        .sort(&[("price", false)])
}

fn main() {
    let data = ShopDataset::generate(ShopConfig {
        n_products: 2_000,
        n_users: 300,
        n_transactions: 10_000,
        n_images: 1_500,
        start_day: 19_000,
        days: 100,
        seed: 11,
    })
    .unwrap();

    println!("== shop polystore ==");
    println!(
        "products={} transactions={} kb_triples={} images={}",
        data.products.num_rows(),
        data.transactions.num_rows(),
        data.kb.num_triples(),
        data.images.len()
    );

    let mut engine = build_engine(&data);
    println!("\n== EXPLAIN (optimized) ==");
    println!("{}", engine.explain(&figure2_query(&engine)).unwrap());

    // Optimized run.
    let t = Instant::now();
    let optimized = engine.execute(&figure2_query(&engine)).unwrap();
    let optimized_time = t.elapsed();

    // Naive run: every optimization off — the "careless analyst" pipeline
    // the paper warns about.
    engine.set_optimizer_config(OptimizerConfig::none());
    let t = Instant::now();
    let naive = engine.execute(&figure2_query(&engine)).unwrap();
    let naive_time = t.elapsed();

    println!("== results ==");
    println!("qualifying products: {}", optimized.table.num_rows());
    for i in 0..optimized.table.num_rows().min(10) {
        let row = optimized.table.row(i).unwrap();
        println!("  #{} {} @ {}", row[0], row[1], row[2]);
    }
    assert_eq!(optimized.table.num_rows(), naive.table.num_rows());

    println!("\n== optimization effect ==");
    println!("optimized plan: {optimized_time:?} (rules: {:?})", optimized.rules_fired);
    println!("naive plan:     {naive_time:?}");
    println!(
        "speedup:        {:.1}x",
        naive_time.as_secs_f64() / optimized_time.as_secs_f64()
    );
}

//! Queryable introspection: the engine answering questions about
//! itself through the reserved `cx` schema.
//!
//! With tracing and profiling on, every served query leaves a trace
//! (spans, outcome, plan-cache verdict) and a resource profile (CPU
//! time, pairs scored, panel tiles, bytes charged). The `cx.*` system
//! tables snapshot that live state into ordinary relational tables at
//! scan time, so the same query API that serves product lookups also
//! serves `SELECT`s over the server's own internals. A watchdog thread
//! samples histograms in the background and files anything anomalous
//! into `cx.incidents`.
//!
//! Run with: `cargo run --release --example introspection`

use context_analytics::{
    Engine, EngineConfig, FaultPlan, ServeConfig, Server, WatchdogConfig,
};
use cx_embed::ClusteredTextModel;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() -> cx_storage::Result<()> {
    // 1. The serving quickstart engine.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    let specs = cx_datagen::table1_clusters();
    let space = Arc::new(cx_datagen::build_space(&specs, 100, 42));
    engine.register_model(Arc::new(ClusteredTextModel::new("fasttext-like", space, 7)));
    let names = ["boots", "parka", "kitten", "sneakers", "windbreaker", "puppy", "oxfords", "coat"];
    let products = cx_storage::Table::from_columns(
        cx_storage::Schema::new(vec![
            cx_storage::Field::new("product_id", cx_storage::DataType::Int64),
            cx_storage::Field::new("name", cx_storage::DataType::Utf8),
            cx_storage::Field::new("price", cx_storage::DataType::Float64),
        ]),
        vec![
            cx_storage::Column::from_i64((0..names.len() as i64).collect()),
            cx_storage::Column::from_strings(names),
            cx_storage::Column::from_f64((0..names.len()).map(|i| 30.0 + 20.0 * i as f64).collect()),
        ],
    )?;
    engine.register_table("products", products)?;

    // 2. Served with the full introspection surface on: traces,
    //    per-query resource profiles, and a fast-ticking watchdog.
    let server = Server::new(
        engine,
        ServeConfig {
            tracing: true,
            profiling: true,
            watchdog: Some(WatchdogConfig {
                interval: Duration::from_millis(5),
                fault_burst: 1,
                ..WatchdogConfig::default()
            }),
            scan_linger: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    );

    // 3. A small storm so the tables have something to say.
    let targets = ["boots", "parka", "kitten", "sneakers"];
    let barrier = Arc::new(Barrier::new(targets.len()));
    std::thread::scope(|s| {
        for target in targets {
            let server = server.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                let session = server.session();
                let q = server
                    .table("products")
                    .expect("products registered")
                    .semantic_filter("name", target, "fasttext-like", 0.75)
                    .sort(&[("product_id", true)]);
                barrier.wait();
                for _ in 0..3 {
                    session.execute(&q).expect("serve query");
                }
            });
        }
    });

    // 4. The server queries itself. `cx.queries` is one row per traced
    //    query: end-to-end and queue-wait time, plan-cache verdict, the
    //    sweep's quantization tier, and the resource profile.
    let cx_queries = server
        .table("cx.queries")?
        .select_columns(&["query", "outcome", "plan_cache", "total_ms", "cpu_ms", "pairs_scored"])
        .limit(6);
    println!("== cx.queries (latest traces) ==\n{}", server.execute(&cx_queries)?.table);

    // 5. `cx.metrics` is the Prometheus export as rows — every counter
    //    the server owns, queryable with the same filter/sort API.
    let cx_metrics = server
        .table("cx.metrics")?
        .filter(context_analytics::expr::col("kind").eq(context_analytics::expr::lit("counter")))
        .sort(&[("value", false)])
        .limit(8);
    println!("== cx.metrics (largest counters) ==\n{}", server.execute(&cx_metrics)?.table);

    // 6. An EXPLAIN ANALYZE without flipping the global tracing flag:
    //    one query is traced, rendered, and retained nowhere.
    let session = server.session();
    let probe = server
        .table("products")?
        .semantic_filter("name", "puppy", "fasttext-like", 0.75)
        .sort(&[("product_id", true)]);
    println!("== explain analyze ==\n{}", session.explain_analyze(&probe)?);

    // 7. A seeded fault storm trips the watchdog; the incident log is a
    //    table like any other.
    server.set_fault_plan(Some(Arc::new(FaultPlan::new(0xBAD, 1.0))));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut lap = 0usize;
    while server.incidents().total() == 0 && std::time::Instant::now() < deadline {
        // A distinct limit per lap defeats the result memo, so every lap
        // actually executes and consults the fault sites.
        let _ = server.execute(&probe.clone().limit(100 + lap));
        lap += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    server.set_fault_plan(None);
    let cx_incidents = server.table("cx.incidents")?.limit(4);
    println!("== cx.incidents ==\n{}", server.execute(&cx_incidents)?.table);

    // 8. The same numbers, aggregated, in the human report.
    println!("{}", server.report());
    Ok(())
}

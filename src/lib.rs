//! # context-analytics
//!
//! A reproduction of *"Analytical Engines With Context-Rich Processing:
//! Towards Efficient Next-Generation Analytics"* (Sanca & Ailamaki, ICDE
//! 2023): an analytical engine whose optimizer and executor treat
//! model-assisted **semantic operators** — semantic select, semantic join,
//! semantic group-by — as first-class relational citizens.
//!
//! This umbrella crate re-exports the whole workspace under stable paths:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`storage`] | `cx-storage` | columns, chunks, tables, statistics |
//! | [`expr`] | `cx-expr` | expressions, folding, selectivity |
//! | [`embed`] | `cx-embed` | representation models, caches, quantization |
//! | [`vector`] | `cx-vector` | similarity kernels, LSH/IVF indexes |
//! | [`exec`] | `cx-exec` | logical plans, relational operators |
//! | [`sql`] | `cx-sql` | SQL front-end: lexer, parser, binder, semantic grammar |
//! | [`semantic`] | `cx-semantic` | semantic operators, consolidation |
//! | [`optimizer`] | `cx-optimizer` | rules, cardinality, cost, planning |
//! | [`hardware`] | `cx-hardware` | device topologies, placement, simulation |
//! | [`kb`] | `cx-kb` | knowledge-base substrate |
//! | [`vision`] | `cx-vision` | image store + simulated detection |
//! | [`datagen`] | `cx-datagen` | deterministic workload generators |
//! | [`engine`] | `context-engine` | the end-to-end engine |
//! | [`mqo`] | `cx-mqo` | multi-query scan sharing: one panel sweep, many queries |
//! | [`obs`] | `cx-obs` | query traces, latency histograms, metrics export |
//! | [`serve`] | `cx-serve` | concurrent serving: plan cache, embed batching, admission |
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/serving.rs` for the concurrent serving layer, and
//! `examples/observability.rs` for traces, histograms, and Prometheus
//! export.

pub use context_engine as engine;
pub use cx_datagen as datagen;
pub use cx_embed as embed;
pub use cx_exec as exec;
pub use cx_expr as expr;
pub use cx_hardware as hardware;
pub use cx_kb as kb;
pub use cx_mqo as mqo;
pub use cx_obs as obs;
pub use cx_optimizer as optimizer;
pub use cx_semantic as semantic;
pub use cx_serve as serve;
pub use cx_sql as sql;
pub use cx_storage as storage;
pub use cx_vector as vector;
pub use cx_vision as vision;

pub use context_engine::{Engine, EngineConfig, PlannedQuery, Query, QueryResult};
pub use cx_obs::{Histogram, MetricsSnapshot, QueryTrace};
pub use cx_serve::{
    FaultKind, FaultPlan, FaultSite, FaultStats, LifecycleStats, Prepared, QueryOptions,
    ServeConfig, ServeResult, Server, Session, SqlResponse, SqlStats, WatchdogConfig,
};
